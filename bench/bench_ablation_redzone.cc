/**
 * @file
 * Ablation of the shadow-memory tool's inexactness knobs (paper P3):
 * redzone size vs the out-of-bounds distance it can catch, and
 * quarantine capacity vs how long a use-after-free stays detectable
 * under allocation churn.
 */

#include <cstdio>
#include <string>

#include "tools/driver.h"

namespace
{

using namespace sulong;

/** OOB read at a parameterized distance past a global array. */
std::string
oobProgram()
{
    return R"(
int table[8];
int pad[4096];
int main(int argc, char **argv) {
    int idx = atoi(argv[1]);
    return table[idx];
})";
}

/** UAF after n intervening live allocations of the same size class:
 *  once the freed block leaves the quarantine it is recycled into a live
 *  object and the dangling access becomes invisible. */
std::string
uafProgram()
{
    return R"(
int main(int argc, char **argv) {
    int churn = atoi(argv[1]);
    char *p = malloc(32);
    p[0] = 'x';
    free(p);
    for (int i = 0; i < churn; i++) {
        char *filler = malloc(40);  /* different class: fills quarantine */
        free(filler);
    }
    char *fresh = malloc(32); /* recycles p's block once unquarantined */
    fresh[0] = 'f';
    return p[0];
})";
}

} // namespace

int
main()
{
    std::printf("ASan inexactness ablation (paper P3)\n\n");

    std::printf("Redzone size vs detected OOB distance "
                "(global array of 8 ints):\n");
    std::printf("  %10s", "index");
    for (int idx : {8, 10, 12, 16, 24, 40, 72, 136})
        std::printf(" %6d", idx);
    std::printf("\n");
    for (uint64_t redzone : {8u, 16u, 32u, 64u, 128u}) {
        ToolConfig config = ToolConfig::make(ToolKind::asan, 0);
        config.asan.redzone = redzone;
        std::printf("  rz=%-7llu",
                    static_cast<unsigned long long>(redzone));
        for (int idx : {8, 10, 12, 16, 24, 40, 72, 136}) {
            ExecutionResult result = runUnderTool(
                oobProgram(), config, {std::to_string(idx)});
            std::printf(" %6s",
                        result.bug.kind == ErrorKind::outOfBounds
                            ? "FOUND" : ".");
        }
        std::printf("\n");
    }
    std::printf("  (Safe Sulong reference: detected at every distance)\n\n");

    std::printf("Quarantine capacity vs UAF detection under churn:\n");
    std::printf("  %14s", "churn");
    for (int churn : {0, 2, 6, 14, 30, 62, 126})
        std::printf(" %6d", churn);
    std::printf("\n");
    for (size_t quarantine : {1u, 4u, 16u, 64u, 256u}) {
        ToolConfig config = ToolConfig::make(ToolKind::asan, 0);
        config.asan.quarantineBlocks = quarantine;
        std::printf("  quarantine=%-3zu", quarantine);
        for (int churn : {0, 2, 6, 14, 30, 62, 126}) {
            ExecutionResult result = runUnderTool(
                uafProgram(), config, {std::to_string(churn)});
            std::printf(" %6s",
                        result.bug.kind == ErrorKind::useAfterFree
                            ? "FOUND" : ".");
        }
        std::printf("\n");
    }
    std::printf("  (Safe Sulong reference: detected at every churn "
                "level —\n   the managed free() is exact, paper Section "
                "3.3)\n");
    return 0;
}
