/**
 * @file
 * Reproduces the Section 4.2 start-up measurement: time to run a
 * "Hello, World!" program under each tool, split into preparation
 * (compile + instrument, the analogue of the paper's JVM init and libc
 * parsing) and execution.
 *
 * Note (see EXPERIMENTS.md): absolute values differ from the paper —
 * all our tools share the same front end, whereas the paper compares a
 * JVM against native process startup. The structural effect preserved
 * here is that Safe Sulong pays per-run setup (parsing + materializing
 * its interpreted libc and globals) while compile-time-instrumented
 * native execution starts almost instantly once built.
 */

#include <chrono>
#include <cstdio>

#include "support/stats.h"
#include "tools/driver.h"

int
main()
{
    using namespace sulong;
    using Clock = std::chrono::steady_clock;
    const char *hello = R"(
int main(void) {
    printf("Hello, World!\n");
    return 0;
})";
    constexpr int kRuns = 30;

    std::printf("Start-up cost on \"Hello, World!\" (%d runs each)\n\n",
                kRuns);
    std::printf("  %-13s %12s %12s %12s\n", "tool", "prepare(ms)",
                "run(ms)", "total(ms)");
    for (const ToolConfig &config : {
             ToolConfig::make(ToolKind::safeSulong),
             ToolConfig::make(ToolKind::clang, 0),
             ToolConfig::make(ToolKind::asan, 0),
             ToolConfig::make(ToolKind::memcheck, 0),
         }) {
        std::vector<double> prep_ms, run_ms;
        for (int i = 0; i < kRuns; i++) {
            auto t0 = Clock::now();
            PreparedProgram prepared = prepareProgram(hello, config);
            auto t1 = Clock::now();
            ExecutionResult result = prepared.run();
            auto t2 = Clock::now();
            if (!result.ok() || result.output != "Hello, World!\n") {
                std::printf("unexpected result under %s: %s\n",
                            config.toString().c_str(),
                            result.bug.toString().c_str());
                return 1;
            }
            prep_ms.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
            run_ms.push_back(
                std::chrono::duration<double, std::milli>(t2 - t1).count());
        }
        Summary prep = summarize(prep_ms);
        Summary run = summarize(run_ms);
        std::printf("  %-13s %12.2f %12.2f %12.2f\n",
                    config.toString().c_str(), prep.median, run.median,
                    prep.median + run.median);
    }
    std::printf("\nPaper reference (absolute, their testbed): ASan <10 ms,\n"
                "Valgrind ~500 ms, Safe Sulong ~600 ms.\n");
    return 0;
}
