/**
 * @file
 * Reproduces the Section 4.1 comparison: the full corpus under Safe
 * Sulong, ASan -O0/-O3, and Valgrind -O0/-O3, including the "found only
 * by Safe Sulong" list (the paper's 8 bugs) and a per-entry breakdown.
 *
 * The matrix runs twice: serially cell by cell (the reference), then
 * through the batch runner with a worker pool (--jobs N, default 8) and
 * the shared compile cache. The bench asserts that both runs produce an
 * identical matrix and reports the wall-clock speedup and cache-hit
 * counts; a deviation makes it exit non-zero so CI can gate on it.
 */

#include <chrono>
#include <cstdio>

#include "corpus/harness.h"

namespace
{

using namespace sulong;

bool
sameMatrix(const std::vector<MatrixRow> &a, const std::vector<MatrixRow> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t r = 0; r < a.size(); r++) {
        if (a[r].tool != b[r].tool || a[r].directCount != b[r].directCount ||
            a[r].indirectCount != b[r].indirectCount ||
            a[r].errorCount != b[r].errorCount ||
            a[r].outcomes.size() != b[r].outcomes.size())
            return false;
        for (size_t i = 0; i < a[r].outcomes.size(); i++) {
            const DetectionOutcome &x = a[r].outcomes[i];
            const DetectionOutcome &y = b[r].outcomes[i];
            if (x.detected != y.detected || x.indirect != y.indirect ||
                x.error != y.error || x.report.kind != y.report.kind ||
                x.report.access != y.report.access ||
                x.report.storage != y.report.storage ||
                x.report.direction != y.report.direction ||
                x.report.detail != y.report.detail)
                return false;
        }
    }
    return true;
}

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sulong;
    bool verbose = false;
    for (int i = 1; i < argc; i++)
        verbose = verbose || std::string(argv[i]) == "-v";
    unsigned jobs = parseJobsFlag(argc, argv, 8);
    ResourceLimits limits = parseLimitFlags(argc, argv, corpusRunLimits());
    const auto &corpus = bugCorpus();

    // Tier-2 ablation knobs (--no-tier2, --tier2-threshold,
    // --no-inlining, --no-check-elision, ...): the CI gate diffs the
    // matrix across these configurations — the optimizing tier must
    // never change what is detected or how it is reported.
    ToolConfig sulong_config = ToolConfig::make(ToolKind::safeSulong);
    sulong_config.managed = parseManagedFlags(argc, argv);

    std::vector<ToolConfig> tools = {
        sulong_config,
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
        ToolConfig::make(ToolKind::clang, 0),
    };

    auto serial_start = std::chrono::steady_clock::now();
    auto rows = runDetectionMatrix(corpus, tools);
    auto serial_end = std::chrono::steady_clock::now();

    BatchOptions options;
    options.jobs = jobs;
    options.useCompileCache = true;
    options.retries = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "retries", 0));
    CompileCacheStats cache;
    auto batch_start = std::chrono::steady_clock::now();
    auto batch_rows =
        runDetectionMatrix(corpus, tools, options, &cache, &limits);
    auto batch_end = std::chrono::steady_clock::now();

    std::printf("%s\n", formatMatrix(corpus, rows).c_str());
    std::printf("Paper reference: Safe Sulong 68; ASan -O0 60, -O3 56;\n"
                "Valgrind slightly more than half (direct + indirect);\n"
                "8 bugs found only by Safe Sulong.\n\n");

    auto exclusive = exclusiveDetections(corpus, rows);
    std::printf("Found only by Safe Sulong (%zu):\n", exclusive.size());
    for (const std::string &id : exclusive)
        std::printf("  %s\n", id.c_str());

    bool identical = sameMatrix(rows, batch_rows);
    double serial_s = seconds(serial_start, serial_end);
    double batch_s = seconds(batch_start, batch_end);
    std::printf("\nBatch evaluation (%u workers, shared compile cache)\n",
                jobs);
    std::printf("  serial          %8.3f s\n", serial_s);
    std::printf("  batch           %8.3f s  (%.2fx speedup)\n", batch_s,
                batch_s > 0 ? serial_s / batch_s : 0.0);
    std::printf("  compile cache   %llu hits, %llu misses\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    std::printf("  matrix identical to serial: %s\n",
                identical ? "yes" : "NO — DETERMINISM BUG");

    if (verbose) {
        std::printf("\nPer-entry breakdown (d=direct, i=indirect, .=miss)\n");
        std::printf("  %-34s", "entry");
        for (const auto &row : rows)
            std::printf(" %-13s", row.tool.c_str());
        std::printf("\n");
        for (size_t i = 0; i < corpus.size(); i++) {
            std::printf("  %-34s", corpus[i].id.c_str());
            for (const auto &row : rows) {
                const DetectionOutcome &cell = row.outcomes[i];
                std::printf(" %-13s",
                            cell.detected ? "d"
                                          : (cell.indirect ? "i" : "."));
            }
            std::printf("\n");
        }
    }
    return identical ? 0 : 1;
}
