/**
 * @file
 * Reproduces the Section 4.1 comparison: the full corpus under Safe
 * Sulong, ASan -O0/-O3, and Valgrind -O0/-O3, including the "found only
 * by Safe Sulong" list (the paper's 8 bugs) and a per-entry breakdown.
 */

#include <cstdio>

#include "corpus/harness.h"

int
main(int argc, char **argv)
{
    using namespace sulong;
    bool verbose = argc > 1 && std::string(argv[1]) == "-v";
    const auto &corpus = bugCorpus();

    std::vector<ToolConfig> tools = {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
        ToolConfig::make(ToolKind::clang, 0),
    };
    auto rows = runDetectionMatrix(corpus, tools);

    std::printf("%s\n", formatMatrix(corpus, rows).c_str());
    std::printf("Paper reference: Safe Sulong 68; ASan -O0 60, -O3 56;\n"
                "Valgrind slightly more than half (direct + indirect);\n"
                "8 bugs found only by Safe Sulong.\n\n");

    auto exclusive = exclusiveDetections(corpus, rows);
    std::printf("Found only by Safe Sulong (%zu):\n", exclusive.size());
    for (const std::string &id : exclusive)
        std::printf("  %s\n", id.c_str());

    if (verbose) {
        std::printf("\nPer-entry breakdown (d=direct, i=indirect, .=miss)\n");
        std::printf("  %-34s", "entry");
        for (const auto &row : rows)
            std::printf(" %-13s", row.tool.c_str());
        std::printf("\n");
        for (size_t i = 0; i < corpus.size(); i++) {
            std::printf("  %-34s", corpus[i].id.c_str());
            for (const auto &row : rows) {
                const DetectionOutcome &cell = row.outcomes[i];
                std::printf(" %-13s",
                            cell.detected ? "d"
                                          : (cell.indirect ? "i" : "."));
            }
            std::printf("\n");
        }
    }
    return 0;
}
