/**
 * @file
 * Chaos-load benchmark of the analysis daemon: boots an in-process
 * ServiceServer, hammers it from concurrent client threads with a mixed
 * clean/buggy job stream (optionally with injected daemon-side job and
 * write faults), then drains it and emits a BENCH_service.json/v1
 * document the CI gate checks: zero daemon deaths, every job answered
 * with exactly one structured frame, a clean drain, and throughput.
 *
 * Usage:
 *   bench_service [--clients N] [--jobs-per-client N] [--workers N]
 *                 [--queue-cap N] [--chaos-job P] [--chaos-write P]
 *                 [--chaos-seed N] [--socket PATH] [--json FILE]
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "support/fault.h"
#include "tools/driver.h"

using namespace sulong;
using namespace sulong::service;

namespace
{

const char *kCleanSource = R"(
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 1; i <= 100; i++) total += i;
    printf("total=%d\n", total);
    return 0;
}
)";

const char *kBugSource = R"(
int main(void) {
    int buf[8];
    buf[8] = 1;
    return 0;
}
)";

/** Per-client accounting; summed after the threads join. */
struct ClientStats
{
    uint64_t ok = 0;
    uint64_t bug = 0;
    uint64_t errorFrames = 0;
    uint64_t transportFailures = 0;
    std::vector<double> latenciesMs;
};

double
addChaos(FaultInjector &faults, int argc, char **argv, const char *flag,
         const char *prefix)
{
    std::string value = parseStringFlag(argc, argv, flag);
    if (value.empty())
        return 0;
    FaultInjector::Rule rule;
    rule.site = prefix;
    rule.sitePrefix = true;
    rule.action = FaultInjector::Action::hostException;
    rule.probability = std::atof(value.c_str());
    faults.addRule(rule);
    return rule.probability;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t index = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned clients = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "clients", 4));
    unsigned per_client = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "jobs-per-client", 50));
    // The bench gates on the live exposition, so collection is on
    // unconditionally (a real msulongd turns it on via its flags).
    obs::setMetricsEnabled(true);

    FaultInjector faults(parseUint64Flag(argc, argv, "chaos-seed", 0));
    double chaos_job =
        addChaos(faults, argc, argv, "chaos-job", "service.job/");
    double chaos_write =
        addChaos(faults, argc, argv, "chaos-write", "service.write/");

    ServiceConfig config;
    config.workers = parseJobsFlag(argc, argv, 4);
    config.queueCapacity = static_cast<size_t>(
        parseUint64Flag(argc, argv, "queue-cap", 256));
    config.tenantCapacity = config.queueCapacity;
    config.watchdogMs = 10000;
    if (chaos_job > 0 || chaos_write > 0)
        config.faults = &faults;

    ServerOptions options;
    options.socketPath = parseStringFlag(
        argc, argv, "socket",
        "/tmp/ms_bench_service_" + std::to_string(::getpid()) + ".sock");
    ServiceServer server(config, options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "bench_service: %s\n", error.c_str());
        return 1;
    }

    uint64_t jobs_total = static_cast<uint64_t>(clients) * per_client;
    std::vector<ClientStats> stats(clients);
    std::vector<std::thread> threads;
    auto start = std::chrono::steady_clock::now();

    // A live-exposition scraper runs WHILE the load is in flight: the
    // stats frame must answer under contention, in both formats, from
    // the same worker pool the jobs saturate.
    std::atomic<bool> stats_ok{false};
    std::thread scraper([&options, &stats_ok] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ServiceClient client;
        std::string err;
        if (!client.connect(options.socketPath, &err))
            return;
        StatsRequest request;
        obs::JsonValue doc;
        if (!client.stats(request, &doc, &err) ||
            doc.stringAt("schema") != "msulong.stats/v1" ||
            doc.find("window") == nullptr ||
            doc.find("metrics") == nullptr)
            return;
        request.format = "prometheus";
        obs::JsonValue expo;
        if (!client.stats(request, &expo, &err) ||
            expo.stringAt("expo").find("# TYPE") == std::string::npos)
            return;
        stats_ok.store(true);
    });
    for (unsigned c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            ClientStats &mine = stats[c];
            ServiceClient client;
            std::string err;
            if (!client.connect(options.socketPath, &err)) {
                mine.transportFailures += per_client;
                return;
            }
            for (unsigned i = 0; i < per_client; i++) {
                JobRequest request;
                request.tenant = "bench-" + std::to_string(c % 3);
                request.source = i % 3 == 0 ? kBugSource : kCleanSource;
                Frame reply;
                bool answered = false;
                auto job_start = std::chrono::steady_clock::now();
                // A write fault costs its connection after the error
                // frame; a lost *send* is retried on a fresh connection
                // (nothing was answered yet), a lost *reply* is what
                // the transport_failures gate counts.
                for (int attempt = 0; attempt < 3 && !answered;
                     attempt++) {
                    if (!client.connected() &&
                        !client.connect(options.socketPath, &err))
                        continue;
                    if (client.submitJob(request, &reply, &err)) {
                        answered = true;
                    } else {
                        client.close();
                    }
                }
                if (!answered) {
                    mine.transportFailures++;
                    continue;
                }
                mine.latenciesMs.push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - job_start)
                        .count());
                if (reply.type == FrameType::error) {
                    mine.errorFrames++;
                    // The stream stays aligned only while the
                    // connection lives; write faults close it for us.
                    continue;
                }
                obs::JsonValue doc;
                if (!obs::parseJson(reply.payload, &doc, &err)) {
                    mine.transportFailures++;
                    continue;
                }
                if (doc.find("bug") != nullptr)
                    mine.bug++;
                else
                    mine.ok++;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    scraper.join();
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // The daemon must still answer after the whole load, then drain
    // clean. In-process: reaching this line at all means zero deaths.
    bool healthy = false;
    uint64_t postmortems = 0;
    {
        ServiceClient client;
        obs::JsonValue health;
        healthy = client.connect(options.socketPath, &error) &&
            client.health(&health, &error);
        obs::JsonValue final_stats;
        if (healthy && client.stats({}, &final_stats, &error))
            postmortems = final_stats.uintAt("postmortems");
    }
    server.requestDrain();
    bool drained_clean = server.runUntilDrained() == 0;

    ClientStats total;
    for (const ClientStats &s : stats) {
        total.ok += s.ok;
        total.bug += s.bug;
        total.errorFrames += s.errorFrames;
        total.transportFailures += s.transportFailures;
        total.latenciesMs.insert(total.latenciesMs.end(),
                                 s.latenciesMs.begin(),
                                 s.latenciesMs.end());
    }
    std::sort(total.latenciesMs.begin(), total.latenciesMs.end());
    uint64_t structured = total.ok + total.bug + total.errorFrames;
    double jobs_per_sec =
        wall_ms > 0 ? 1000.0 * static_cast<double>(structured) / wall_ms
                    : 0;

    std::printf("bench_service: %llu jobs over %u client(s), %u worker(s)\n",
                static_cast<unsigned long long>(jobs_total), clients,
                server.service().workers());
    std::printf("  ok=%llu bug=%llu error_frames=%llu transport=%llu\n",
                static_cast<unsigned long long>(total.ok),
                static_cast<unsigned long long>(total.bug),
                static_cast<unsigned long long>(total.errorFrames),
                static_cast<unsigned long long>(total.transportFailures));
    std::printf("  wall=%.0fms throughput=%.1f jobs/s p50=%.1fms "
                "p90=%.1fms p99=%.1fms\n",
                wall_ms, jobs_per_sec,
                percentile(total.latenciesMs, 0.50),
                percentile(total.latenciesMs, 0.90),
                percentile(total.latenciesMs, 0.99));
    std::printf("  healthy_after_load=%s drained_clean=%s "
                "stats_ok=%s postmortems=%llu\n",
                healthy ? "true" : "false",
                drained_clean ? "true" : "false",
                stats_ok.load() ? "true" : "false",
                static_cast<unsigned long long>(postmortems));

    std::string json_path = parseStringFlag(argc, argv, "json");
    if (!json_path.empty()) {
        char buffer[512];
        std::string out = "{\n  \"schema\": \"BENCH_service.json/v1\",\n";
        std::snprintf(buffer, sizeof buffer,
                      "  \"clients\": %u,\n  \"workers\": %u,\n"
                      "  \"jobs_total\": %llu,\n",
                      clients, server.service().workers(),
                      static_cast<unsigned long long>(jobs_total));
        out += buffer;
        std::snprintf(buffer, sizeof buffer,
                      "  \"chaos\": {\"job\": %.3f, \"write\": %.3f},\n",
                      chaos_job, chaos_write);
        out += buffer;
        std::snprintf(
            buffer, sizeof buffer,
            "  \"ok\": %llu,\n  \"bug\": %llu,\n"
            "  \"error_frames\": %llu,\n  \"structured_replies\": %llu,\n"
            "  \"transport_failures\": %llu,\n  \"daemon_deaths\": 0,\n",
            static_cast<unsigned long long>(total.ok),
            static_cast<unsigned long long>(total.bug),
            static_cast<unsigned long long>(total.errorFrames),
            static_cast<unsigned long long>(structured),
            static_cast<unsigned long long>(total.transportFailures));
        out += buffer;
        std::snprintf(
            buffer, sizeof buffer,
            "  \"healthy_after_load\": %s,\n  \"drained_clean\": %s,\n"
            "  \"stats_ok\": %s,\n  \"postmortems\": %llu,\n"
            "  \"wall_ms\": %.1f,\n  \"jobs_per_sec\": %.2f,\n"
            "  \"latency_ms\": {\"p50\": %.2f, \"p90\": %.2f, "
            "\"p99\": %.2f}\n}\n",
            healthy ? "true" : "false", drained_clean ? "true" : "false",
            stats_ok.load() ? "true" : "false",
            static_cast<unsigned long long>(postmortems), wall_ms,
            jobs_per_sec, percentile(total.latenciesMs, 0.50),
            percentile(total.latenciesMs, 0.90),
            percentile(total.latenciesMs, 0.99));
        out += buffer;
        if (!obs::validateJson(out, &error)) {
            std::fprintf(stderr, "bench_service: emitted bad JSON: %s\n",
                         error.c_str());
            return 1;
        }
        std::ofstream file(json_path);
        file << out;
        if (!file) {
            std::fprintf(stderr, "bench_service: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
    }

    bool accounted = structured + total.transportFailures == jobs_total;
    if (!accounted)
        std::fprintf(stderr, "bench_service: accounting hole: "
                             "%llu structured + %llu transport != %llu\n",
                     static_cast<unsigned long long>(structured),
                     static_cast<unsigned long long>(
                         total.transportFailures),
                     static_cast<unsigned long long>(jobs_total));
    return accounted && total.transportFailures == 0 && healthy &&
                   drained_clean && stats_ok.load()
               ? 0
               : 1;
}
