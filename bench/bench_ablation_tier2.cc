/**
 * @file
 * Ablation of the execution tiers: peak performance of the pure
 * interpreter vs tier-2 at several compile thresholds, and the effect of
 * simulated compile latency — the design space behind Sections 4.2/4.3.
 */

#include <chrono>
#include <cstdio>

#include "support/stats.h"
#include "tools/benchmark_programs.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;
using Clock = std::chrono::steady_clock;

double
medianRunSeconds(const BenchmarkProgram &program, ManagedOptions options,
                 int warmup, int samples)
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    options.persistState = true;
    config.managed = options;
    PreparedProgram prepared = prepareProgram(program.source, config);
    for (int i = 0; i < warmup; i++) {
        ExecutionResult result = prepared.run(program.args);
        if (!result.ok()) {
            std::fprintf(stderr, "failed: %s\n",
                         result.bug.toString().c_str());
            std::exit(1);
        }
    }
    std::vector<double> times;
    for (int i = 0; i < samples; i++) {
        auto t0 = Clock::now();
        prepared.run(program.args);
        times.push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return summarize(times).median;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    int warmup = quick ? 1 : 5;
    int samples = quick ? 3 : 7;

    std::printf("Tier ablation (median seconds per run, warmed up)\n\n");
    std::printf("  %-15s %12s %12s %12s %12s %12s\n", "benchmark",
                "interp-only", "tier2@1", "tier2@50", "tier2@1000",
                "tier2+OSR");
    for (const char *name :
         {"fannkuchredux", "mandelbrot", "nbody", "spectralnorm",
          "meteor"}) {
        const BenchmarkProgram *program = findBenchmark(name);
        ManagedOptions interp;
        interp.enableTier2 = false;
        ManagedOptions eager;
        eager.compileThreshold = 1;
        ManagedOptions standard;
        standard.compileThreshold = 50;
        ManagedOptions lazy;
        lazy.compileThreshold = 1000;
        // The paper's prototype lacks on-stack replacement (Section 5);
        // this column shows what implementing it buys: functions whose
        // only invocation contains the hot loop (main!) still tier up.
        ManagedOptions osr = standard;
        osr.enableOsr = true;
        osr.osrThreshold = 5000;
        std::printf("  %-15s %12.4f %12.4f %12.4f %12.4f %12.4f\n", name,
                    medianRunSeconds(*program, interp, warmup, samples),
                    medianRunSeconds(*program, eager, warmup, samples),
                    medianRunSeconds(*program, standard, warmup, samples),
                    medianRunSeconds(*program, lazy, warmup, samples),
                    medianRunSeconds(*program, osr, warmup, samples));
    }
    std::printf("\nThe tier-2 'compiler' (pre-decoded direct execution "
                "with safe\nsemantics) is what closes the gap to native "
                "interpretation, like\nGraal does for the paper's "
                "system. The OSR column implements the\npaper's stated "
                "future work (Section 5).\n");
    return 0;
}
