/**
 * @file
 * google-benchmark micro comparisons of the execution engines on small
 * kernels: per-engine cost of arithmetic loops, memory traffic, calls,
 * and allocation — the building blocks behind the Fig. 16 numbers.
 */

#include <benchmark/benchmark.h>

#include "tools/driver.h"

namespace
{

using namespace sulong;

const char *ARITH_KERNEL = R"(
int main(void) {
    long acc = 1;
    for (int i = 0; i < 200000; i++)
        acc = acc * 31 + i;
    return (int)(acc & 0x7f);
})";

const char *MEMORY_KERNEL = R"(
int main(void) {
    int buf[256];
    for (int i = 0; i < 256; i++)
        buf[i] = i;
    int acc = 0;
    for (int round = 0; round < 800; round++)
        for (int i = 0; i < 256; i++)
            acc += buf[i];
    return acc & 0x7f;
})";

const char *CALL_KERNEL = R"(
static int add3(int a, int b, int c) { return a + b + c; }
int main(void) {
    int acc = 0;
    for (int i = 0; i < 100000; i++)
        acc = add3(acc, i, 1) & 0xffff;
    return acc & 0x7f;
})";

const char *ALLOC_KERNEL = R"(
int main(void) {
    int acc = 0;
    for (int i = 0; i < 4000; i++) {
        int *p = malloc(sizeof(int) * 8);
        p[0] = i;
        acc += p[0];
        free(p);
    }
    return acc & 0x7f;
})";

ToolConfig
configFor(int tool)
{
    switch (tool) {
      case 0: {
        ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
        config.managed.persistState = true;
        config.managed.compileThreshold = 2;
        return config;
      }
      case 1: return ToolConfig::make(ToolKind::clang, 0);
      case 2: return ToolConfig::make(ToolKind::clang, 3);
      case 3: return ToolConfig::make(ToolKind::asan, 0);
      default: return ToolConfig::make(ToolKind::memcheck, 0);
    }
}

const char *kToolNames[] = {"SafeSulong", "ClangO0", "ClangO3", "ASan",
                            "Valgrind"};

void
runKernel(benchmark::State &state, const char *kernel)
{
    ToolConfig config = configFor(static_cast<int>(state.range(0)));
    PreparedProgram prepared = prepareProgram(kernel, config);
    if (!prepared.ok()) {
        state.SkipWithError("compile failed");
        return;
    }
    // Warm the tiers.
    prepared.run();
    prepared.run();
    for (auto _ : state) {
        ExecutionResult result = prepared.run();
        benchmark::DoNotOptimize(result.exitCode);
        if (!result.ok()) {
            state.SkipWithError(result.bug.toString().c_str());
            return;
        }
    }
    state.SetLabel(kToolNames[state.range(0)]);
}

void BM_Arithmetic(benchmark::State &state) { runKernel(state, ARITH_KERNEL); }
void BM_Memory(benchmark::State &state) { runKernel(state, MEMORY_KERNEL); }
void BM_Calls(benchmark::State &state) { runKernel(state, CALL_KERNEL); }
void BM_Allocation(benchmark::State &state) { runKernel(state, ALLOC_KERNEL); }

} // namespace

BENCHMARK(BM_Arithmetic)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Memory)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Calls)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Allocation)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
