/**
 * @file
 * google-benchmark micro comparisons of the execution engines on small
 * kernels: per-engine cost of arithmetic loops, memory traffic, calls,
 * and allocation — the building blocks behind the Fig. 16 numbers.
 *
 * Custom flags (stripped before google-benchmark sees the command
 * line): `--json PATH` writes the results in the BENCH_tier2.json/v1
 * schema, and the tier-2 tuning flags of parseManagedFlags
 * (`--no-tier2`, `--tier2-threshold N`, `--no-inlining`,
 * `--inline-budget N`, `--inline-min N`, `--no-check-elision`)
 * reconfigure the Safe Sulong engine under test.
 */

#include <benchmark/benchmark.h>

#include "tools/bench_json.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;

/// Tier-2 knobs for the SafeSulong rows, set in main() from the
/// command line before the benchmarks run.
ManagedOptions g_managed;

const char *ARITH_KERNEL = R"(
int main(void) {
    long acc = 1;
    for (int i = 0; i < 200000; i++)
        acc = acc * 31 + i;
    return (int)(acc & 0x7f);
})";

const char *MEMORY_KERNEL = R"(
int main(void) {
    int buf[256];
    for (int i = 0; i < 256; i++)
        buf[i] = i;
    int acc = 0;
    for (int round = 0; round < 800; round++)
        for (int i = 0; i < 256; i++)
            acc += buf[i];
    return acc & 0x7f;
})";

const char *CALL_KERNEL = R"(
static int add3(int a, int b, int c) { return a + b + c; }
int main(void) {
    int acc = 0;
    for (int i = 0; i < 100000; i++)
        acc = add3(acc, i, 1) & 0xffff;
    return acc & 0x7f;
})";

const char *ALLOC_KERNEL = R"(
int main(void) {
    int acc = 0;
    for (int i = 0; i < 4000; i++) {
        int *p = malloc(sizeof(int) * 8);
        p[0] = i;
        acc += p[0];
        free(p);
    }
    return acc & 0x7f;
})";

ToolConfig
configFor(int tool)
{
    switch (tool) {
      case 0: {
        ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
        config.managed = g_managed;
        config.managed.persistState = true;
        return config;
      }
      case 1: return ToolConfig::make(ToolKind::clang, 0);
      case 2: return ToolConfig::make(ToolKind::clang, 3);
      case 3: return ToolConfig::make(ToolKind::asan, 0);
      default: return ToolConfig::make(ToolKind::memcheck, 0);
    }
}

const char *kToolNames[] = {"SafeSulong", "ClangO0", "ClangO3", "ASan",
                            "Valgrind"};

void
runKernel(benchmark::State &state, const char *kernel)
{
    ToolConfig config = configFor(static_cast<int>(state.range(0)));
    PreparedProgram prepared = prepareProgram(kernel, config);
    if (!prepared.ok()) {
        state.SkipWithError("compile failed");
        return;
    }
    // Warm the tiers.
    prepared.run();
    prepared.run();
    for (auto _ : state) {
        ExecutionResult result = prepared.run();
        benchmark::DoNotOptimize(result.exitCode);
        if (!result.ok()) {
            state.SkipWithError(result.bug.toString().c_str());
            return;
        }
    }
    state.SetLabel(kToolNames[state.range(0)]);
    if (auto *managed =
            dynamic_cast<ManagedEngine *>(prepared.engine.get())) {
        // IR instructions retired per iteration, for the JSON records.
        state.counters["steps_per_op"] = benchmark::Counter(
            static_cast<double>(managed->executedSteps()));
    }
}

void BM_Arithmetic(benchmark::State &state) { runKernel(state, ARITH_KERNEL); }
void BM_Memory(benchmark::State &state) { runKernel(state, MEMORY_KERNEL); }
void BM_Calls(benchmark::State &state) { runKernel(state, CALL_KERNEL); }
void BM_Allocation(benchmark::State &state) { runKernel(state, ALLOC_KERNEL); }

/** Console output as usual, plus a capture of every run for --json. */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<BenchRecord> records;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            BenchRecord record;
            record.bench = "micro." + run.benchmark_name();
            record.engine =
                run.report_label.empty() ? "unknown" : run.report_label;
            if (record.engine == "SafeSulong")
                record.config = managedConfigString(g_managed);
            record.nsPerOp =
                run.iterations > 0
                    ? run.real_accumulated_time * 1e9 /
                          static_cast<double>(run.iterations)
                    : 0;
            auto steps = run.counters.find("steps_per_op");
            if (steps != run.counters.end())
                record.stepsPerOp =
                    static_cast<uint64_t>(steps->second.value);
            records.push_back(std::move(record));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/** Drop the custom flags google-benchmark would reject. */
std::vector<char *>
stripCustomFlags(int argc, char **argv)
{
    auto takes_value = [](const std::string &arg, const char *name) {
        return arg == std::string("--") + name;
    };
    auto is_eq_form = [](const std::string &arg, const char *name) {
        std::string prefix = std::string("--") + name + "=";
        return arg.rfind(prefix, 0) == 0;
    };
    static const char *value_flags[] = {"json", "tier2-threshold",
                                        "inline-budget", "inline-min",
                                        "tier3-threshold",
                                        "tier3-osr-threshold"};
    static const char *switch_flags[] = {"no-tier2", "no-inlining",
                                         "no-check-elision", "no-tier3",
                                         "no-fusion", "no-tier3-osr"};
    std::vector<char *> out;
    out.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        bool custom = false;
        for (const char *name : value_flags) {
            if (takes_value(arg, name)) {
                i++; // skip the value too
                custom = true;
            } else if (is_eq_form(arg, name)) {
                custom = true;
            }
        }
        for (const char *name : switch_flags)
            custom = custom || arg == std::string("--") + name;
        if (!custom)
            out.push_back(argv[i]);
    }
    return out;
}

} // namespace

BENCHMARK(BM_Arithmetic)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Memory)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Calls)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Allocation)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::string json_path = parseStringFlag(argc, argv, "json");
    g_managed.compileThreshold = 2;
    g_managed = parseManagedFlags(argc, argv, g_managed);

    std::vector<char *> bench_args = stripCustomFlags(argc, argv);
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data()))
        return 1;

    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty() &&
        !writeBenchJson(json_path, reporter.records)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
