/**
 * @file
 * Reproduces the five Section 4.1 case studies (Figs. 10, 11, 12, 14 and
 * the missing-vararg case) in detail: for each program, the verdict of
 * every tool, plus the Fig. 14 redzone-distance sweep.
 */

#include <cstdio>

#include "corpus/harness.h"

namespace
{

using namespace sulong;

void
runCase(const char *title, const CorpusEntry &entry)
{
    std::printf("=== %s ===\n", title);
    std::printf("program: %s — %s\n", entry.id.c_str(),
                entry.description.c_str());
    for (const ToolConfig &config : {
             ToolConfig::make(ToolKind::safeSulong),
             ToolConfig::make(ToolKind::asan, 0),
             ToolConfig::make(ToolKind::asan, 3),
             ToolConfig::make(ToolKind::memcheck, 0),
             ToolConfig::make(ToolKind::clang, 0),
         }) {
        ExecutionResult result = runUnderTool(
            entry.source, config, entry.args, entry.stdinData);
        DetectionOutcome outcome = classifyOutcome(entry, result);
        std::printf("  %-13s %-9s %s\n", config.toString().c_str(),
                    outcome.detected ? "FOUND"
                                     : (outcome.indirect ? "indirect"
                                                         : "missed"),
                    result.bug.toString().c_str());
    }
    std::printf("\n");
}

const CorpusEntry *
find(const char *id)
{
    for (const CorpusEntry &entry : bugCorpus()) {
        if (entry.id == id)
            return &entry;
    }
    return nullptr;
}

} // namespace

int
main()
{
    runCase("Fig. 10: out-of-bounds access to main()'s arguments",
            *find("args-r-01-argv-fixed-index"));
    runCase("Fig. 11: unterminated strtok delimiter (missing interceptor)",
            *find("stack-r-03-strtok-delim"));
    runCase("Fig. 12: printf(\"%ld\") with an int argument",
            *find("stack-r-04-printf-ld-int"));
    runCase("Fig. 13: constant OOB index optimized away at -O0",
            *find("global-r-01-const-index"));
    runCase("Fig. 14: user input overflows past the redzone",
            *find("global-r-02-user-index"));
    runCase("Missing variadic argument",
            *find("varargs-01-missing-argument"));

    // Fig. 14 sweep: ASan catches near-object indices but not far ones.
    std::printf("=== Fig. 14 sweep: ASan detection vs index distance ===\n");
    const CorpusEntry &fig14 = *find("global-r-02-user-index");
    for (int index : {7, 8, 9, 10, 16, 64, 256, 1024}) {
        ExecutionResult result = runUnderTool(
            fig14.source, ToolConfig::make(ToolKind::asan, 0), {},
            std::to_string(index) + "\n");
        ExecutionResult managed = runUnderTool(
            fig14.source, ToolConfig::make(ToolKind::safeSulong), {},
            std::to_string(index) + "\n");
        std::printf("  strings[%5d]: ASan %-7s  Safe Sulong %s\n", index,
                    result.bug.kind == ErrorKind::outOfBounds ? "FOUND"
                                                              : "missed",
                    managed.bug.kind == ErrorKind::outOfBounds ? "FOUND"
                                                               : "missed");
    }
    return 0;
}
