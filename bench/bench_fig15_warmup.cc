/**
 * @file
 * Reproduces Fig. 15: warm-up behaviour on the meteor benchmark. Each
 * tool runs meteor iterations continuously for a fixed wall-clock
 * window; we report iterations completed per one-second bucket, plus the
 * number of functions Graal-analogue tier-2 compiled up to each point
 * for Safe Sulong.
 *
 * Expected shape: Safe Sulong starts slowest (interpreting, then paying
 * compile pauses), then overtakes Valgrind and approaches/states above
 * ASan once hot; ASan has essentially no warm-up.
 */

#include <chrono>
#include <cstdio>

#include "tools/benchmark_programs.h"
#include "tools/driver.h"

int
main(int argc, char **argv)
{
    using namespace sulong;
    using Clock = std::chrono::steady_clock;
    double window_seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
    const BenchmarkProgram *meteor = findBenchmark("meteor");

    std::printf("Warm-up on meteor (%.0f s window per tool)\n\n",
                window_seconds);

    for (ToolKind kind : {ToolKind::safeSulong, ToolKind::asan,
                          ToolKind::memcheck, ToolKind::clang}) {
        ToolConfig config = ToolConfig::make(kind, 0);
        if (kind == ToolKind::safeSulong) {
            // In-process re-execution with Graal-like compile latency so
            // the warm-up curve shows the paper's pauses (Section 4.2).
            config.managed.persistState = true;
            config.managed.compileThreshold = 40;
            config.managed.compileLatencyNsPerInst = 40000;
        }
        PreparedProgram prepared = prepareProgram(meteor->source, config);
        if (!prepared.ok()) {
            std::printf("compile failed: %s\n",
                        prepared.compileErrors.c_str());
            return 1;
        }
        auto *managed = dynamic_cast<ManagedEngine *>(
            prepared.engine.get());

        std::printf("%s\n", config.toString().c_str());
        auto start = Clock::now();
        int bucket = 0;
        unsigned in_bucket = 0;
        unsigned total = 0;
        while (true) {
            ExecutionResult result = prepared.run(meteor->args);
            if (!result.ok()) {
                std::printf("  run failed: %s\n",
                            result.bug.toString().c_str());
                return 1;
            }
            in_bucket++;
            total++;
            double elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            if (elapsed >= bucket + 1) {
                std::printf("  t=%2ds  iterations/s=%4u", bucket + 1,
                            in_bucket);
                if (managed != nullptr) {
                    std::printf("  (tier-2 functions so far: %u)",
                                managed->tier2Functions());
                }
                std::printf("\n");
                bucket = static_cast<int>(elapsed);
                in_bucket = 0;
            }
            if (elapsed >= window_seconds)
                break;
        }
        std::printf("  total iterations: %u\n\n", total);
    }
    return 0;
}
