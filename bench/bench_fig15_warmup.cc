/**
 * @file
 * Reproduces Fig. 15: warm-up behaviour on the meteor benchmark. Each
 * tool runs meteor iterations continuously for a fixed wall-clock
 * window; we report iterations completed per one-second bucket, plus the
 * number of functions Graal-analogue tier-2 compiled up to each point
 * for Safe Sulong.
 *
 * Expected shape: Safe Sulong starts slowest (interpreting, then paying
 * compile pauses), then overtakes Valgrind and approaches/states above
 * ASan once hot; ASan has essentially no warm-up.
 *
 * Usage: bench_fig15_warmup [WINDOW_SECONDS] [--json PATH] plus the
 * tier-2 tuning flags of parseManagedFlags. The JSON records carry each
 * tool's mean iteration time over the whole window (warm-up included).
 */

#include <chrono>
#include <cstdio>

#include "tools/bench_json.h"
#include "tools/benchmark_programs.h"
#include "tools/driver.h"

int
main(int argc, char **argv)
{
    using namespace sulong;
    using Clock = std::chrono::steady_clock;
    double window_seconds = 10.0;
    if (argc > 1 && argv[1][0] != '-')
        window_seconds = std::atof(argv[1]);
    std::string json_path = parseStringFlag(argc, argv, "json");
    const BenchmarkProgram *meteor = findBenchmark("meteor");

    std::printf("Warm-up on meteor (%.0f s window per tool)\n\n",
                window_seconds);

    std::vector<BenchRecord> records;
    for (ToolKind kind : {ToolKind::safeSulong, ToolKind::asan,
                          ToolKind::memcheck, ToolKind::clang}) {
        ToolConfig config = ToolConfig::make(kind, 0);
        if (kind == ToolKind::safeSulong) {
            // In-process re-execution with Graal-like compile latency so
            // the warm-up curve shows the paper's pauses (Section 4.2).
            config.managed.persistState = true;
            config.managed.compileThreshold = 40;
            config.managed.compileLatencyNsPerInst = 40000;
            config.managed = parseManagedFlags(argc, argv, config.managed);
        }
        PreparedProgram prepared = prepareProgram(meteor->source, config);
        if (!prepared.ok()) {
            std::printf("compile failed: %s\n",
                        prepared.compileErrors.c_str());
            return 1;
        }
        auto *managed = dynamic_cast<ManagedEngine *>(
            prepared.engine.get());

        std::printf("%s\n", config.toString().c_str());
        auto start = Clock::now();
        int bucket = 0;
        unsigned in_bucket = 0;
        unsigned total = 0;
        double elapsed = 0;
        while (true) {
            ExecutionResult result = prepared.run(meteor->args);
            if (!result.ok()) {
                std::printf("  run failed: %s\n",
                            result.bug.toString().c_str());
                return 1;
            }
            in_bucket++;
            total++;
            elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            if (elapsed >= bucket + 1) {
                std::printf("  t=%2ds  iterations/s=%4u", bucket + 1,
                            in_bucket);
                if (managed != nullptr) {
                    std::printf("  (tier-2 functions so far: %u)",
                                managed->tier2Functions());
                }
                std::printf("\n");
                bucket = static_cast<int>(elapsed);
                in_bucket = 0;
            }
            if (elapsed >= window_seconds)
                break;
        }
        std::printf("  total iterations: %u\n\n", total);

        BenchRecord record;
        record.bench = "fig15.meteor";
        record.engine = config.toString();
        if (kind == ToolKind::safeSulong)
            record.config = managedConfigString(config.managed);
        record.nsPerOp =
            total > 0 ? elapsed * 1e9 / static_cast<double>(total) : 0;
        record.stepsPerOp =
            managed != nullptr ? managed->executedSteps() : 0;
        records.push_back(std::move(record));
    }
    if (!json_path.empty()) {
        if (!writeBenchJson(json_path, records)) {
            std::printf("failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("Wrote %zu records to %s\n", records.size(),
                    json_path.c_str());
    }
    return 0;
}
