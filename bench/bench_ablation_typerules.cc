/**
 * @file
 * Ablation of the Section 3.2 type-rule relaxation: how many of the
 * benchmark programs and corpus programs still execute when the managed
 * engine enforces strict type rules — the trade-off between "executing
 * real-world programs and finding bugs" the paper discusses.
 */

#include <cstdio>

#include "corpus/harness.h"
#include "tools/benchmark_programs.h"

int
main()
{
    using namespace sulong;

    ToolConfig relaxed = ToolConfig::make(ToolKind::safeSulong);
    ToolConfig strict = ToolConfig::make(ToolKind::safeSulong);
    strict.managed.strictTypes = true;

    std::printf("Type-rule ablation: strict vs relaxed managed access "
                "rules\n\n");

    std::printf("Benchmarks (must run to completion):\n");
    unsigned relaxed_ok = 0, strict_ok = 0;
    for (const BenchmarkProgram &program : benchmarkPrograms()) {
        std::vector<std::string> args = {"5"};
        if (program.name == "nbody") args = {"100"};
        if (program.name == "meteor") args = {"1"};
        if (program.name == "binarytrees") args = {"5"};
        ExecutionResult r = runUnderTool(program.source, relaxed, args);
        ExecutionResult s = runUnderTool(program.source, strict, args);
        relaxed_ok += r.ok();
        strict_ok += s.ok();
        std::printf("  %-15s relaxed=%-4s strict=%s\n",
                    program.name.c_str(), r.ok() ? "ok" : "FAIL",
                    s.ok() ? "ok" : s.bug.toString().c_str());
    }
    std::printf("  -> %u/%zu run relaxed, %u/%zu run strict\n\n",
                relaxed_ok, benchmarkPrograms().size(), strict_ok,
                benchmarkPrograms().size());

    std::printf("Corpus (bug still found with matching kind):\n");
    unsigned relaxed_found = 0, strict_found = 0, strict_type_errors = 0;
    for (const CorpusEntry &entry : bugCorpus()) {
        ExecutionResult r = runUnderTool(entry.source, relaxed, entry.args,
                                         entry.stdinData);
        ExecutionResult s = runUnderTool(entry.source, strict, entry.args,
                                         entry.stdinData);
        relaxed_found += r.bug.kind == entry.kind;
        strict_found += s.bug.kind == entry.kind;
        strict_type_errors += s.bug.kind == ErrorKind::typeError;
    }
    std::printf("  relaxed: %u/68 found\n", relaxed_found);
    std::printf("  strict:  %u/68 found, %u aborted early with type "
                "errors\n", strict_found, strict_type_errors);
    std::printf("\nThe relaxation is what lets real-world patterns run "
                "while keeping\nevery bug detectable (paper Section "
                "3.2).\n");
    return 0;
}
