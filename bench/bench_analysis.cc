/**
 * @file
 * Static-analysis cross-validation bench: run the IR dataflow analyzer
 * (interprocedural summaries + constraint solver + concrete refutation)
 * over the 68-bug corpus, compare every finding against the dynamic
 * detector, and report the soundness contract (zero false `definite`
 * findings) plus static recall and wall time.
 *
 * Two interprocedural sections ride along:
 *  - a demo suite of cross-function programs showing summaries turning
 *    maybes into definites and the solver dropping infeasible findings
 *    with certificates, and
 *  - a program-size scaling curve (chains of N helper functions) that
 *    the CI gate checks for superlinear blowups.
 *
 * All compiles go through one shared CompileCache, like the batch
 * runner's, so ablation sweeps recompile nothing.
 *
 * Flags: `--json PATH` (machine-readable BENCH_analysis.json/v1 output
 * for the CI gate), `--no-refute` (raw abstract findings — the contract
 * no longer holds and the bench only reports, never gates),
 * `--no-solver` / `--no-summaries` (ablations; the JSON records which
 * arms were on so the gate can compare configurations).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/harness.h"
#include "tools/compile_cache.h"

namespace
{

using namespace sulong;

/** One cross-function demo program and what the analyzer should do. */
struct InterprocDemo
{
    const char *name;
    const char *source;
};

/// Cross-function demos: every bug (or refutable non-bug) needs
/// knowledge that crosses a call boundary.
const InterprocDemo kDemos[] = {
    // Summary narrows the helper's return to [3,3]: in-bounds store,
    // no finding at all (PR-4 havocked the call and reported a maybe).
    {"summary-clean",
     "static int three(void) { return 3; }\n"
     "int main(void) { int a[4]; a[three()] = 1; return 0; }\n"},
    // Summary proves the index is 6: must-OOB, replay confirms it.
    {"summary-oob",
     "static int idx(void) { return 6; }\n"
     "int main(void) { int a[4]; a[idx()] = 1; return 0; }\n"},
    // Helper returns fresh heap of 16 bytes; main overruns it.
    {"heap-oob",
     "#include <stdlib.h>\n"
     "static int *make(void) { return malloc(16); }\n"
     "int main(void) { int *p = make(); if (!p) return 0;\n"
     "  p[5] = 1; free(p); return 0; }\n"},
    // Helper frees; main uses after the helper's free.
    {"cross-uaf",
     "#include <stdlib.h>\n"
     "static void drop(int *p) { free(p); }\n"
     "int main(void) { int *p = malloc(8); if (!p) return 0;\n"
     "  drop(p); return p[0]; }\n"},
    // The branch conditions are mutually exclusive: the solver proves
    // the OOB path infeasible and drops the finding with a certificate.
    {"solver-refuted",
     "int main(int argc, char **argv) { int a[4]; int i;\n"
     "  (void)argv;\n"
     "  if (argc > 3) i = 10; else i = 2;\n"
     "  if (argc <= 3) a[i] = 1;\n"
     "  return 0; }\n"},
};

/** Chain of N helpers, each adding 1; main indexes in-bounds through
 *  the whole chain, so precision (and wall time) must scale with N. */
std::string
chainProgram(unsigned n)
{
    std::string src = "static int f1(int x) { return x + 1; }\n";
    for (unsigned i = 2; i <= n; i++) {
        src += "static int f";
        src += std::to_string(i);
        src += "(int x) { return f";
        src += std::to_string(i - 1);
        src += "(x) + 1; }\n";
    }
    src += "int main(void) { int a[";
    src += std::to_string(n + 2);
    src += "] = {0}; a[f";
    src += std::to_string(n);
    src += "(0)] = 1; return a[0]; }\n";
    return src;
}

struct ScalingPoint
{
    unsigned n = 0;
    unsigned functions = 0;
    unsigned sccs = 0;
    double wallMs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace sulong;

    AnalysisOptions options = parseAnalysisFlags(argc, argv);
    std::string json_path = parseStringFlag(argc, argv, "json");

    // One compile cache for everything this process compiles: the
    // corpus pass, the demo suite, and the scaling curve.
    CompileCache cache;
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);

    const std::vector<CorpusEntry> &entries = bugCorpus();
    CrossValidationReport report =
        crossValidateCorpus(entries, options, &cache);
    std::printf("%s", formatCrossValidation(report).c_str());
    std::printf("  wall time           %.1f ms\n", report.wallMs);

    unsigned definite_total = 0, maybe_total = 0, refuted_total = 0;
    unsigned summaries_total = 0;
    for (const CrossValidationRow &row : report.rows) {
        definite_total += row.definiteCount;
        maybe_total += row.maybeCount;
        refuted_total += row.refutedCount;
        summaries_total += row.summariesApplied;
    }
    std::printf("  solver refutations  %5u\n", refuted_total);
    std::printf("  summaries applied   %5u\n", summaries_total);

    // Interprocedural demo suite.
    unsigned ip_definite = 0, ip_maybe = 0, ip_refuted = 0;
    bool demo_compile_error = false;
    std::printf("\nInterprocedural demos\n");
    for (const InterprocDemo &demo : kDemos) {
        PreparedProgram prepared =
            prepareProgram(std::string(demo.source), config, &cache);
        if (!prepared.ok()) {
            std::printf("  %-16s COMPILE ERROR\n", demo.name);
            demo_compile_error = true;
            continue;
        }
        AnalysisReport analysis = analyzeModule(*prepared.module, options);
        unsigned definite = 0, maybe = 0;
        for (const StaticFinding &f : analysis.findings)
            (f.confidence == Confidence::definite ? definite : maybe)++;
        ip_definite += definite;
        ip_maybe += maybe;
        ip_refuted += static_cast<unsigned>(analysis.refutations.size());
        std::printf("  %-16s definite=%u maybe=%u refuted=%zu"
                    " summaries=%u\n",
                    demo.name, definite, maybe,
                    analysis.refutations.size(),
                    analysis.summariesApplied);
    }

    // Program-size scaling curve.
    std::vector<ScalingPoint> curve;
    bool curve_compile_error = false;
    std::printf("\nScaling (chain of N helpers)\n");
    for (unsigned n : {4u, 8u, 16u, 32u}) {
        PreparedProgram prepared =
            prepareProgram(chainProgram(n), config, &cache);
        if (!prepared.ok()) {
            std::printf("  N=%-3u COMPILE ERROR\n", n);
            curve_compile_error = true;
            continue;
        }
        auto start = std::chrono::steady_clock::now();
        AnalysisReport analysis = analyzeModule(*prepared.module, options);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        ScalingPoint point;
        point.n = n;
        point.functions = analysis.functionsAnalyzed;
        point.sccs = analysis.sccCount;
        point.wallMs = ms;
        curve.push_back(point);
        unsigned definite = 0;
        for (const StaticFinding &f : analysis.findings)
            definite += f.confidence == Confidence::definite ? 1 : 0;
        std::printf("  N=%-3u functions=%-3u sccs=%-3u definite=%u"
                    " %.2f ms\n",
                    n, point.functions, point.sccs, definite, ms);
    }

    CompileCacheStats cstats = cache.stats();
    std::printf("\ncompile cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(cstats.hits),
                static_cast<unsigned long long>(cstats.misses));

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"schema\": \"BENCH_analysis.json/v1\",\n"
                     "  \"corpus_size\": %zu,\n"
                     "  \"definite_findings\": %u,\n"
                     "  \"maybe_findings\": %u,\n"
                     "  \"false_definites\": %u,\n"
                     "  \"static_hits\": %u,\n"
                     "  \"definite_hits\": %u,\n"
                     "  \"recall\": %.4f,\n"
                     "  \"definite_recall\": %.4f,\n"
                     "  \"refuted\": %s,\n"
                     "  \"summaries\": %s,\n"
                     "  \"solver\": %s,\n"
                     "  \"solver_refutations\": %u,\n"
                     "  \"summaries_applied\": %u,\n"
                     "  \"interproc_definite\": %u,\n"
                     "  \"interproc_maybe\": %u,\n"
                     "  \"interproc_refuted\": %u,\n"
                     "  \"cache_hits\": %llu,\n"
                     "  \"cache_misses\": %llu,\n"
                     "  \"scaling\": [",
                     report.rows.size(), definite_total, maybe_total,
                     report.falseDefinites(), report.staticHits(),
                     report.definiteHits(), report.recall(),
                     report.definiteRecall(),
                     options.refute ? "true" : "false",
                     options.summaries ? "true" : "false",
                     options.solver ? "true" : "false",
                     refuted_total, summaries_total, ip_definite, ip_maybe,
                     ip_refuted,
                     static_cast<unsigned long long>(cstats.hits),
                     static_cast<unsigned long long>(cstats.misses));
        for (size_t i = 0; i < curve.size(); i++) {
            std::fprintf(f,
                         "%s\n    {\"n\": %u, \"functions\": %u,"
                         " \"sccs\": %u, \"wall_ms\": %.3f}",
                         i == 0 ? "" : ",", curve[i].n, curve[i].functions,
                         curve[i].sccs, curve[i].wallMs);
        }
        std::fprintf(f,
                     "\n  ],\n"
                     "  \"wall_ms\": %.1f\n"
                     "}\n",
                     report.wallMs);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    // Self-gating: with refutation on, a false definite is a soundness
    // bug, not a statistic.
    if (options.refute && report.falseDefinites() > 0) {
        std::fprintf(stderr, "FAIL: %u false definite finding(s)\n",
                     report.falseDefinites());
        return 1;
    }
    if (demo_compile_error || curve_compile_error) {
        std::fprintf(stderr, "FAIL: bench program failed to compile\n");
        return 1;
    }
    return 0;
}
