/**
 * @file
 * Static-analysis cross-validation bench: run the IR dataflow analyzer
 * (with concrete refutation) over the 68-bug corpus, compare every
 * finding against the dynamic detector, and report the soundness
 * contract (zero false `definite` findings) plus static recall and wall
 * time.
 *
 * Flags: `--json PATH` (machine-readable BENCH_analysis.json/v1 output
 * for the CI gate), `--no-refute` (raw abstract findings — the contract
 * no longer holds and the bench only reports, never gates).
 */

#include <cstdio>

#include "corpus/harness.h"

int
main(int argc, char **argv)
{
    using namespace sulong;

    AnalysisOptions options = parseAnalysisFlags(argc, argv);
    std::string json_path = parseStringFlag(argc, argv, "json");

    const std::vector<CorpusEntry> &entries = bugCorpus();
    CrossValidationReport report = crossValidateCorpus(entries, options);
    std::printf("%s", formatCrossValidation(report).c_str());
    std::printf("  wall time           %.1f ms\n", report.wallMs);

    unsigned definite_total = 0, maybe_total = 0;
    for (const CrossValidationRow &row : report.rows) {
        definite_total += row.definiteCount;
        maybe_total += row.maybeCount;
    }

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"schema\": \"BENCH_analysis.json/v1\",\n"
                     "  \"corpus_size\": %zu,\n"
                     "  \"definite_findings\": %u,\n"
                     "  \"maybe_findings\": %u,\n"
                     "  \"false_definites\": %u,\n"
                     "  \"static_hits\": %u,\n"
                     "  \"definite_hits\": %u,\n"
                     "  \"recall\": %.4f,\n"
                     "  \"definite_recall\": %.4f,\n"
                     "  \"refuted\": %s,\n"
                     "  \"wall_ms\": %.1f\n"
                     "}\n",
                     report.rows.size(), definite_total, maybe_total,
                     report.falseDefinites(), report.staticHits(),
                     report.definiteHits(), report.recall(),
                     report.definiteRecall(),
                     options.refute ? "true" : "false", report.wallMs);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    // Self-gating: with refutation on, a false definite is a soundness
    // bug, not a statistic.
    if (options.refute && report.falseDefinites() > 0) {
        std::fprintf(stderr, "FAIL: %u false definite finding(s)\n",
                     report.falseDefinites());
        return 1;
    }
    return 0;
}
