/**
 * @file
 * Reproduces the P2 demonstrations: Fig. 3 (an out-of-bounds store loop
 * deleted by -O3 dead-store elimination) and Fig. 13 (a constant-index
 * global OOB load folded away even at -O0). Shows the IR before/after
 * and each tool's verdict.
 */

#include <cstdio>

#include "ir/printer.h"
#include "libc/libc_sources.h"
#include "opt/passes.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;

const char *FIG3 = R"(
static int test(unsigned long length) {
    int arr[10] = {0};
    for (unsigned long i = 0; i < length; i++)
        arr[i] = (int)i;
    return 0;
}
int main(void) { return test(12); })";

const char *FIG13 = R"(
int count[7] = {0, 0, 0, 0, 0, 0, 0};
int main(int argc, char **argv) {
    return count[7];
})";

void
showVerdicts(const char *src)
{
    for (const ToolConfig &config : {
             ToolConfig::make(ToolKind::safeSulong),
             ToolConfig::make(ToolKind::asan, 0),
             ToolConfig::make(ToolKind::asan, 3),
             ToolConfig::make(ToolKind::memcheck, 0),
         }) {
        ExecutionResult result = runUnderTool(src, config);
        std::printf("  %-13s %s\n", config.toString().c_str(),
                    result.bug.kind == ErrorKind::none
                        ? "no error reported"
                        : result.bug.toString().c_str());
    }
}

unsigned
countStores(const Function &fn)
{
    unsigned n = 0;
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::store)
                n++;
        }
    }
    return n;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 3: -O3 deletes the out-of-bounds store loop ===\n");
    {
        CompileResult compiled = compileC(std::string(FIG3));
        unsigned before = countStores(*compiled.module->findFunction("test"));
        runO3Pipeline(*compiled.module);
        unsigned after = countStores(*compiled.module->findFunction("test"));
        std::printf("stores in test(): %u before -O3, %u after\n",
                    before, after);
        std::printf("test() after -O3:\n%s\n",
                    printFunction(*compiled.module->findFunction("test"))
                        .c_str());
    }
    showVerdicts(FIG3);

    std::printf("\n=== Fig. 13: backend folding removes the bug at -O0 "
                "===\n");
    {
        CompileResult compiled = compileC(std::string(FIG13));
        std::printf("main() as the front end emitted it:\n%s\n",
                    printFunction(*compiled.module->findFunction("main"))
                        .c_str());
        runO0Pipeline(*compiled.module);
        std::printf("main() after the residual -O0 folding:\n%s\n",
                    printFunction(*compiled.module->findFunction("main"))
                        .c_str());
    }
    showVerdicts(FIG13);
    std::printf("\nPaper reference: only Safe Sulong reports both bugs; \n"
                "ASan loses Fig. 3 at -O3 and Fig. 13 at every level.\n");
    return 0;
}
