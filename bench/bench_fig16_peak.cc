/**
 * @file
 * Reproduces Fig. 16: peak performance of every tool on the benchmark
 * suite, relative to Clang -O0, after in-process warm-up. binarytrees is
 * reported separately (the paper excludes it from the plot because ASan
 * and Valgrind blow up on allocation-intensive code).
 *
 * Expected shape: Valgrind is the slowest by a large factor; ASan is
 * slower than Clang -O0; warmed-up Safe Sulong sits around Clang -O0
 * (sometimes better) and approaches Clang -O3 on some benchmarks.
 *
 * Flags: `--quick` (fewer samples), `--json PATH` (machine-readable
 * BENCH_tier2.json/v1 output for the CI perf gate), `--bench A,B`
 * (restrict to the named benchmarks), plus the tier-2 tuning flags of
 * parseManagedFlags (`--no-tier2`, `--tier2-threshold N`,
 * `--no-inlining`, `--inline-budget N`, `--inline-min N`,
 * `--no-check-elision`).
 */

#include <chrono>
#include <cstdio>

#include "support/stats.h"
#include "tools/bench_json.h"
#include "tools/benchmark_programs.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;
using Clock = std::chrono::steady_clock;

/** Median wall time of one warmed-up run; also reports the IR steps one
 *  run retires under the managed engine (0 for the native tools). */
double
peakSeconds(const BenchmarkProgram &program, const ToolConfig &base_config,
            int warmup_iters, int samples, uint64_t *steps_out)
{
    ToolConfig config = base_config;
    if (config.kind == ToolKind::safeSulong)
        config.managed.persistState = true; // keep tier-2 code hot
    PreparedProgram prepared = prepareProgram(program.source, config);
    if (!prepared.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     prepared.compileErrors.c_str());
        std::exit(1);
    }
    for (int i = 0; i < warmup_iters; i++) {
        ExecutionResult result = prepared.run(program.args);
        if (!result.ok()) {
            std::fprintf(stderr, "%s under %s failed: %s\n",
                         program.name.c_str(),
                         config.toString().c_str(),
                         result.bug.toString().c_str());
            std::exit(1);
        }
    }
    std::vector<double> times;
    for (int i = 0; i < samples; i++) {
        auto t0 = Clock::now();
        prepared.run(program.args);
        times.push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
    }
    if (steps_out != nullptr) {
        auto *managed =
            dynamic_cast<ManagedEngine *>(prepared.engine.get());
        *steps_out = managed != nullptr ? managed->executedSteps() : 0;
    }
    return summarize(times).median;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = hasFlag(argc, argv, "quick");
    int warmup = quick ? 2 : 10;
    int samples = quick ? 3 : 7;
    std::string json_path = parseStringFlag(argc, argv, "json");
    std::string only = parseStringFlag(argc, argv, "bench");
    ManagedOptions managed = parseManagedFlags(argc, argv);
    auto selected = [&only](const std::string &name) {
        if (only.empty())
            return true;
        size_t pos = 0;
        while (pos <= only.size()) {
            size_t comma = only.find(',', pos);
            size_t end = comma == std::string::npos ? only.size() : comma;
            if (only.compare(pos, end - pos, name) == 0)
                return true;
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        return false;
    };

    ToolConfig sulong_config = ToolConfig::make(ToolKind::safeSulong);
    sulong_config.managed = managed;
    const ToolConfig tools[] = {
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        sulong_config,
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::memcheck, 0),
    };

    std::printf("Peak performance relative to Clang -O0 "
                "(median of %d samples after %d warm-up runs; lower is "
                "better)\n\n", samples, warmup);
    std::printf("  %-15s", "benchmark");
    for (const auto &tool : tools)
        std::printf(" %12s", tool.toString().c_str());
    std::printf("\n");

    std::vector<BenchRecord> records;
    std::vector<std::vector<double>> ratios(std::size(tools));
    for (const BenchmarkProgram &program : benchmarkPrograms()) {
        if (!selected(program.name))
            continue;
        double base =
            peakSeconds(program, tools[0], warmup, samples, nullptr);
        std::printf("  %-15s", program.name.c_str());
        for (size_t t = 0; t < std::size(tools); t++) {
            uint64_t steps = 0;
            double secs =
                peakSeconds(program, tools[t], warmup, samples, &steps);
            double rel = base > 0 ? secs / base : 0;
            std::printf(" %12.2f", rel);
            if (!program.allocationIntensive)
                ratios[t].push_back(rel);
            BenchRecord record;
            record.bench = "fig16." + program.name;
            record.engine = tools[t].toString();
            if (tools[t].kind == ToolKind::safeSulong)
                record.config = managedConfigString(tools[t].managed);
            record.nsPerOp = secs * 1e9;
            record.stepsPerOp = steps;
            records.push_back(std::move(record));
        }
        std::printf("%s\n",
                    program.allocationIntensive
                        ? "   (allocation-intensive; excluded from "
                          "geomean, like the paper's plot)"
                        : "");
    }
    std::printf("  %-15s", "geomean");
    for (size_t t = 0; t < std::size(tools); t++)
        std::printf(" %12.2f", geomean(ratios[t]));
    std::printf("\n\nPaper reference: Safe Sulong faster than ASan -O0 on\n"
                "almost all benchmarks, around Clang -O0 overall, on a par\n"
                "with -O3 on some; Valgrind 2.3x-58x slower; binarytrees:\n"
                "ASan 14x / Valgrind 58x vs Safe Sulong 1.7x.\n");
    if (!json_path.empty()) {
        if (!writeBenchJson(json_path, records)) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("\nWrote %zu records to %s\n", records.size(),
                    json_path.c_str());
    }
    return 0;
}
