/**
 * @file
 * Reproduces Fig. 16: peak performance of every tool on the benchmark
 * suite, relative to Clang -O0, after in-process warm-up. binarytrees is
 * reported separately (the paper excludes it from the plot because ASan
 * and Valgrind blow up on allocation-intensive code).
 *
 * Expected shape: Valgrind is the slowest by a large factor; ASan is
 * slower than Clang -O0; warmed-up Safe Sulong sits around Clang -O0
 * (sometimes better) and approaches Clang -O3 on some benchmarks.
 */

#include <chrono>
#include <cstdio>

#include "support/stats.h"
#include "tools/benchmark_programs.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;
using Clock = std::chrono::steady_clock;

/** Median wall time of one warmed-up run. */
double
peakSeconds(const BenchmarkProgram &program, const ToolConfig &base_config,
            int warmup_iters, int samples)
{
    ToolConfig config = base_config;
    if (config.kind == ToolKind::safeSulong)
        config.managed.persistState = true; // keep tier-2 code hot
    PreparedProgram prepared = prepareProgram(program.source, config);
    if (!prepared.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     prepared.compileErrors.c_str());
        std::exit(1);
    }
    for (int i = 0; i < warmup_iters; i++) {
        ExecutionResult result = prepared.run(program.args);
        if (!result.ok()) {
            std::fprintf(stderr, "%s under %s failed: %s\n",
                         program.name.c_str(),
                         config.toString().c_str(),
                         result.bug.toString().c_str());
            std::exit(1);
        }
    }
    std::vector<double> times;
    for (int i = 0; i < samples; i++) {
        auto t0 = Clock::now();
        prepared.run(program.args);
        times.push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return summarize(times).median;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    int warmup = quick ? 2 : 10;
    int samples = quick ? 3 : 7;

    const ToolConfig tools[] = {
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::memcheck, 0),
    };

    std::printf("Peak performance relative to Clang -O0 "
                "(median of %d samples after %d warm-up runs; lower is "
                "better)\n\n", samples, warmup);
    std::printf("  %-15s", "benchmark");
    for (const auto &tool : tools)
        std::printf(" %12s", tool.toString().c_str());
    std::printf("\n");

    std::vector<std::vector<double>> ratios(std::size(tools));
    for (const BenchmarkProgram &program : benchmarkPrograms()) {
        double base =
            peakSeconds(program, tools[0], warmup, samples);
        std::printf("  %-15s", program.name.c_str());
        for (size_t t = 0; t < std::size(tools); t++) {
            double secs =
                peakSeconds(program, tools[t], warmup, samples);
            double rel = base > 0 ? secs / base : 0;
            std::printf(" %12.2f", rel);
            if (!program.allocationIntensive)
                ratios[t].push_back(rel);
        }
        std::printf("%s\n",
                    program.allocationIntensive
                        ? "   (allocation-intensive; excluded from "
                          "geomean, like the paper's plot)"
                        : "");
    }
    std::printf("  %-15s", "geomean");
    for (size_t t = 0; t < std::size(tools); t++)
        std::printf(" %12.2f", geomean(ratios[t]));
    std::printf("\n\nPaper reference: Safe Sulong faster than ASan -O0 on\n"
                "almost all benchmarks, around Clang -O0 overall, on a par\n"
                "with -O3 on some; Valgrind 2.3x-58x slower; binarytrees:\n"
                "ASan 14x / Valgrind 58x vs Safe Sulong 1.7x.\n");
    return 0;
}
