/**
 * @file
 * Direct A/B measurement of tier-3 threaded execution against tier-2 on
 * the perf-gate workloads: the same program runs warmed up in the same
 * process under both modes, so the speedup ratio is immune to the
 * host-noise that makes relative-to-Clang numbers (bench_fig16_peak)
 * jitter run to run. Also cross-checks that both modes retire exactly
 * the same IR steps — tier-3 dispatches the same guest work faster, it
 * never skips any — and reports the tier-3 event counters (translations,
 * superblocks, OSR entries, deopts by reason).
 *
 * Flags: `--quick` (fewer samples), `--json PATH` (BENCH_tier3.json/v1
 * for the `bench_gate.py tier3` CI gate), `--bench A,B` (restrict to the
 * named benchmarks), plus the managed-engine tuning flags of
 * parseManagedFlags (applied to BOTH arms; the tier-3 arm forces tier-3
 * on, the baseline arm forces it off).
 */

#include <chrono>
#include <cstdio>

#include "support/stats.h"
#include "tools/bench_json.h"
#include "tools/benchmark_programs.h"
#include "tools/driver.h"

namespace
{

using namespace sulong;
using Clock = std::chrono::steady_clock;

struct Measurement
{
    double seconds = 0; ///< median warmed-up wall time of one run
    uint64_t steps = 0; ///< IR instructions retired by the last run
    /// Tier-3 event counters summed over every run of this arm (the
    /// engine resets its per-run telemetry, and translation happens
    /// once during warm-up, so only the sum sees it).
    uint64_t compiles = 0;
    uint64_t superblocks = 0;
    uint64_t osrEntries = 0;
    uint64_t deoptMega = 0;
    uint64_t deoptShape = 0;
    uint64_t deoptSteps = 0;
    uint64_t deoptBug = 0;
};

Measurement
measure(const BenchmarkProgram &program, ManagedOptions options,
        int warmup, int samples)
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    options.persistState = true; // keep tier-2/tier-3 code hot
    config.managed = options;
    PreparedProgram prepared = prepareProgram(program.source, config);
    if (!prepared.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     prepared.compileErrors.c_str());
        std::exit(1);
    }
    auto *managed = dynamic_cast<ManagedEngine *>(prepared.engine.get());
    Measurement m;
    auto accumulate = [&] {
        const ManagedTelemetry &t = managed->telemetry();
        m.compiles += t.t3Compiles;
        m.superblocks += t.t3Superblocks;
        m.osrEntries += t.t3OsrEntries;
        m.deoptMega += t.t3DeoptMega;
        m.deoptShape += t.t3DeoptShape;
        m.deoptSteps += t.t3DeoptSteps;
        m.deoptBug += t.t3DeoptBug;
    };
    std::vector<double> times;
    for (int i = 0; i < warmup + samples; i++) {
        auto t0 = Clock::now();
        ExecutionResult result = prepared.run(program.args);
        double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (!result.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", program.name.c_str(),
                         result.bug.toString().c_str());
            std::exit(1);
        }
        accumulate();
        if (i >= warmup)
            times.push_back(secs);
    }
    m.seconds = summarize(times).median;
    m.steps = managed->executedSteps();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = hasFlag(argc, argv, "quick");
    int warmup = quick ? 3 : 10;
    int samples = quick ? 3 : 7;
    std::string json_path = parseStringFlag(argc, argv, "json");
    std::string only = parseStringFlag(argc, argv, "bench");
    ManagedOptions base = parseManagedFlags(argc, argv);
    // Bench configuration (both arms): allow tier-1 -> tier-2 OSR so the
    // loop-in-main benchmarks reach the compiled tiers at all.  The engine
    // default stays off to match the paper's prototype; this is the peak
    // configuration the fig16 harness also uses.
    base.enableOsr = true;
    base.osrThreshold = 5000;
    auto selected = [&only](const std::string &name) {
        if (only.empty())
            return true;
        size_t pos = 0;
        while (pos <= only.size()) {
            size_t comma = only.find(',', pos);
            size_t end = comma == std::string::npos ? only.size() : comma;
            if (only.compare(pos, end - pos, name) == 0)
                return true;
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        return false;
    };

    ManagedOptions tier2_only = base;
    tier2_only.enableTier3 = false;
    ManagedOptions tier3 = base;
    tier3.enableTier3 = true;

    std::printf("Tier-3 vs tier-2, same process, warmed up "
                "(median of %d samples after %d warm-up runs)\n\n",
                samples, warmup);
    std::printf("  %-15s %12s %12s %9s %7s %6s %6s\n", "benchmark",
                "tier2 ms", "tier3 ms", "speedup", "sblocks", "osr",
                "deopts");

    std::vector<Tier3Record> records;
    for (const BenchmarkProgram &program : benchmarkPrograms()) {
        if (!selected(program.name))
            continue;
        Measurement off = measure(program, tier2_only, warmup, samples);
        Measurement on = measure(program, tier3, warmup, samples);
        if (on.steps != off.steps) {
            std::fprintf(stderr,
                         "%s: retired steps differ (tier2 %llu, tier3 "
                         "%llu) — tier-3 changed the guest work\n",
                         program.name.c_str(),
                         static_cast<unsigned long long>(off.steps),
                         static_cast<unsigned long long>(on.steps));
            return 1;
        }
        double speedup =
            on.seconds > 0 ? off.seconds / on.seconds : 0;
        std::printf("  %-15s %12.3f %12.3f %8.2fx %7llu %6llu %6llu\n",
                    program.name.c_str(), off.seconds * 1e3,
                    on.seconds * 1e3, speedup,
                    static_cast<unsigned long long>(on.superblocks),
                    static_cast<unsigned long long>(on.osrEntries),
                    static_cast<unsigned long long>(
                        on.deoptMega + on.deoptShape + on.deoptSteps +
                        on.deoptBug));
        Tier3Record record;
        record.bench = "fig16." + program.name;
        record.config = managedConfigString(tier3);
        record.tier2NsPerOp = off.seconds * 1e9;
        record.tier3NsPerOp = on.seconds * 1e9;
        record.tier2Steps = off.steps;
        record.tier3Steps = on.steps;
        record.compiles = on.compiles;
        record.superblocks = on.superblocks;
        record.osrEntries = on.osrEntries;
        record.deoptMega = on.deoptMega;
        record.deoptShape = on.deoptShape;
        record.deoptSteps = on.deoptSteps;
        record.deoptBug = on.deoptBug;
        records.push_back(std::move(record));
    }

    std::vector<double> speedups;
    for (const Tier3Record &r : records)
        speedups.push_back(r.tier2NsPerOp / r.tier3NsPerOp);
    std::printf("  %-15s %12s %12s %8.2fx\n", "geomean", "", "",
                geomean(speedups));
    if (!json_path.empty()) {
        if (!writeTier3BenchJson(json_path, records)) {
            std::fprintf(stderr, "failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("\nWrote %zu records to %s\n", records.size(),
                    json_path.c_str());
    }
    return 0;
}
