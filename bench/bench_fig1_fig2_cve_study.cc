/**
 * @file
 * Reproduces Figs. 1 and 2: vulnerability and exploit counts per memory-
 * error category over the 2012-03..2017-09 study window, via keyword
 * classification of the (synthetic, trend-shaped) database.
 */

#include <cstdio>

#include "study/classifier.h"

int
main()
{
    using namespace sulong;
    auto records = synthesizeVulnDatabase();
    std::printf("Database: %zu records (synthetic, seeded; see DESIGN.md)\n\n",
                records.size());
    std::printf("%s\n", formatCounts(
        countByYear(records, false),
        "Figure 1: reported vulnerabilities per category "
        "(CVE-style records)").c_str());
    std::printf("%s\n", formatCounts(
        countByYear(records, true),
        "Figure 2: available exploits per category "
        "(ExploitDB-style records)").c_str());
    std::printf("Expected shape (paper Section 2.1): spatial errors are the\n"
                "most common category, rising to an all-time high in 2017;\n"
                "temporal errors are second; categories with many\n"
                "vulnerabilities are also exploited more often.\n");
    return 0;
}
