/**
 * @file
 * Reproduces Tables 1 and 2: runs the whole corpus under Safe Sulong and
 * tabulates the *measured* reports (not just the ground-truth metadata),
 * so the managed engine's classification is what generates the tables.
 *
 * The corpus runs as one batch over the worker pool (`--jobs N`, default
 * 8) with the shared compile cache; results come back ordered by entry
 * index, so the tables are identical to a serial sweep.
 */

#include <chrono>
#include <cstdio>

#include "corpus/harness.h"
#include "tools/batch_runner.h"

int
main(int argc, char **argv)
{
    using namespace sulong;
    const auto &corpus = bugCorpus();

    std::vector<BatchJob> jobs;
    jobs.reserve(corpus.size());
    ToolConfig tool = ToolConfig::make(ToolKind::safeSulong);
    ResourceLimits limits = parseLimitFlags(argc, argv, corpusRunLimits());
    for (const CorpusEntry &entry : corpus) {
        jobs.push_back(
            BatchJob::make(entry.source, tool, entry.args, entry.stdinData));
        jobs.back().limits = limits;
    }

    BatchOptions options;
    options.jobs = parseJobsFlag(argc, argv, 8);
    options.retries = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "retries", 0));
    auto start = std::chrono::steady_clock::now();
    BatchReport report = runBatch(jobs, options);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    // Measured distribution from Safe Sulong's own reports.
    unsigned oob = 0, nulls = 0, uaf = 0, varargs = 0, missed = 0;
    unsigned reads = 0, writes = 0, under = 0, over = 0;
    unsigned stack = 0, heap = 0, global = 0, main_args = 0;
    for (size_t i = 0; i < corpus.size(); i++) {
        const CorpusEntry &entry = corpus[i];
        const ExecutionResult &result = report.results[i];
        switch (result.bug.kind) {
          case ErrorKind::outOfBounds:
            oob++;
            (result.bug.access == AccessKind::read ? reads : writes)++;
            (result.bug.direction == BoundsDirection::underflow
                 ? under : over)++;
            switch (result.bug.storage) {
              case StorageKind::stack: stack++; break;
              case StorageKind::heap: heap++; break;
              case StorageKind::global: global++; break;
              case StorageKind::mainArgs: main_args++; break;
              default: break;
            }
            break;
          case ErrorKind::nullDeref: nulls++; break;
          case ErrorKind::useAfterFree: uaf++; break;
          case ErrorKind::varargs: varargs++; break;
          default:
            missed++;
            std::printf("UNEXPECTED for %s: %s\n", entry.id.c_str(),
                        result.bug.toString().c_str());
            break;
        }
    }

    std::printf("Table 1 (measured by Safe Sulong; paper: 61/5/1/1)\n");
    std::printf("  Buffer overflows    %4u\n", oob);
    std::printf("  NULL dereferences   %4u\n", nulls);
    std::printf("  Use-after-free      %4u\n", uaf);
    std::printf("  Varargs             %4u\n", varargs);
    std::printf("  (undetected)        %4u\n\n", missed);

    std::printf("Table 2 (measured; paper: R32/W29, U8/O53, "
                "S32/H17/G9/M3)\n");
    std::printf("  Read  %3u   Underflow %3u   Stack     %3u\n",
                reads, under, stack);
    std::printf("  Write %3u   Overflow  %3u   Heap      %3u\n",
                writes, over, heap);
    std::printf("                            Global    %3u\n", global);
    std::printf("                            Main args %3u\n\n", main_args);

    std::printf("Idiom distribution (ground truth):\n");
    unsigned idioms[8] = {0};
    for (const CorpusEntry &entry : corpus) {
        if (entry.kind == ErrorKind::outOfBounds)
            idioms[static_cast<int>(entry.idiom)]++;
    }
    for (int i = 0; i < 8; i++) {
        std::printf("  %-22s %3u\n",
                    bugIdiomName(static_cast<BugIdiom>(i)), idioms[i]);
    }

    std::printf("\nBatch: %zu entries, %u workers, %.3f s "
                "(cache %llu hits, %llu misses)\n",
                corpus.size(), report.workersUsed, elapsed.count(),
                static_cast<unsigned long long>(report.cacheStats.hits),
                static_cast<unsigned long long>(report.cacheStats.misses));
    double slowest = 0;
    size_t slowest_idx = 0;
    for (size_t i = 0; i < report.jobStats.size(); i++) {
        if (report.jobStats[i].elapsedMs > slowest) {
            slowest = report.jobStats[i].elapsedMs;
            slowest_idx = i;
        }
    }
    std::printf("Governance: %u host faults, %u retries; slowest job %s "
                "(%.1f ms)\n",
                report.hostFaults, report.retriesUsed,
                corpus[slowest_idx].id.c_str(), slowest);
    return missed == 0 ? 0 : 1;
}
