/**
 * @file
 * fuzz_runner — generative differential-testing campaigns as one command.
 *
 *   fuzz_runner [--seed-start N] [--seeds N] [--jobs N] [--bug-ratio PCT]
 *               [--no-minimize] [--no-analysis] [--clean-only]
 *               [--report FILE] [--json FILE] [--emit-corpus FILE]
 *               [--print-seed N] [-v]
 *               [resource flags: --max-steps, --heap-limit, ...]
 *
 * Runs seeds [seed-start, seed-start + seeds) through the generative
 * scenario engine: grammar-generated mini-C programs (a seeded fraction
 * with one injected, ground-truth bug each) differentially executed
 * under every engine plus the static analyzer. Survivors are minimized
 * and deduplicated.
 *
 * Outputs:
 *   --report FILE       deterministic FUZZ_report.json/v1 (byte-identical
 *                       across --jobs levels; the CI determinism diff)
 *   --json FILE         BENCH_fuzz.json/v1 with wall-clock + throughput
 *                       (the scripts/bench_gate.py fuzz input)
 *   --emit-corpus FILE  survivors as candidate corpus entries
 *   --print-seed N      print seed N's generated program and exit (for
 *                       standalone repro: fuzz_runner --print-seed N >
 *                       bug.c && msulong run bug.c)
 *
 * Exit status: 0 on a clean campaign, 1 when any unexplained
 * disagreement (or compile error) survived — so CI shards fail loudly.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "fuzz/campaign.h"
#include "tools/driver.h"

using namespace sulong;

namespace
{

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content << "\n";
    if (!out.good()) {
        std::cerr << "fuzz_runner: cannot write " << path << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "help")) {
        std::cout <<
            "usage: fuzz_runner [--seed-start N] [--seeds N] [--jobs N]\n"
            "                   [--bug-ratio PCT] [--no-minimize]\n"
            "                   [--no-analysis] [--clean-only]\n"
            "                   [--report FILE] [--json FILE]\n"
            "                   [--emit-corpus FILE] [--print-seed N]\n"
            "                   [--max-steps N] [--heap-limit BYTES] [-v]\n";
        return 0;
    }

    CampaignOptions options;
    options.seedBegin = parseUint64Flag(argc, argv, "seed-start", 1);
    options.seedCount = parseUint64Flag(argc, argv, "seeds", 1000);
    options.jobs = parseJobsFlag(argc, argv, 1);
    options.bugRatioPct = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "bug-ratio", 50));
    if (options.bugRatioPct > 100)
        options.bugRatioPct = 100;
    if (hasFlag(argc, argv, "clean-only"))
        options.bugRatioPct = 0;
    options.minimize = !hasFlag(argc, argv, "no-minimize");
    options.oracle.runAnalysis = !hasFlag(argc, argv, "no-analysis");
    options.oracle.limits = parseLimitFlags(argc, argv,
                                            options.oracle.limits);
    options.oracle.analysis =
        parseAnalysisFlags(argc, argv, options.oracle.analysis);

    uint64_t print_seed = parseUint64Flag(argc, argv, "print-seed", 0);
    if (print_seed != 0) {
        FuzzProgram program = generateSeedProgram(print_seed, options);
        std::cout << program.render();
        if (program.bug.injected()) {
            std::cerr << "seed " << print_seed << ": injected "
                      << mutatorKindName(program.bug.mutator) << " ("
                      << program.bug.description << ")\n";
        } else {
            std::cerr << "seed " << print_seed << ": clean program\n";
        }
        return 0;
    }

    bool verbose = hasFlag(argc, argv, "verbose");
    for (int i = 1; i < argc && !verbose; i++)
        verbose = std::string(argv[i]) == "-v";

    CampaignReport report = runCampaign(options);
    std::cout << report.formatSummary(verbose);

    std::string report_path = parseStringFlag(argc, argv, "report");
    if (!report_path.empty() &&
        !writeFile(report_path, report.toJson()))
        return 2;
    std::string json_path = parseStringFlag(argc, argv, "json");
    if (!json_path.empty() &&
        !writeFile(json_path, report.toBenchJson()))
        return 2;
    std::string corpus_path = parseStringFlag(argc, argv,
                                              "emit-corpus");
    if (!corpus_path.empty() &&
        !writeFile(corpus_path, report.corpusCandidatesJson()))
        return 2;

    if (report.unexplained() != 0) {
        std::cerr << "fuzz_runner: " << report.unexplained()
                  << " unexplained disagreement(s) — see the survivor "
                     "list in the report\n";
        return 1;
    }
    return 0;
}
