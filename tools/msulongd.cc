/**
 * @file
 * msulongd — the fault-isolated multi-tenant analysis daemon.
 *
 * Listens on an AF_UNIX socket for framed compile+run+analyze jobs
 * (see src/service/protocol.h), executes them over a shared worker
 * pool with per-tenant admission control and per-job fault isolation,
 * and drains gracefully on SIGTERM/SIGINT or a client drain request:
 * stop accepting, answer every admitted job (finished or cancelled),
 * flush telemetry, exit 0.
 *
 * Chaos flags inject deterministic faults into the daemon's own
 * accept/read/write/job paths so CI can prove that every injected
 * fault degrades exactly one client, never the daemon.
 *
 * Usage:
 *   msulongd --socket=/tmp/msulong.sock [--jobs N] [--queue-cap N]
 *            [--tenant-cap N] [--watchdog-ms N] [--retries N]
 *            [--cache-cap N] [--drain-grace-ms N] [--max-frame-bytes N]
 *            [--max-steps N] [--heap-limit BYTES] [--output-limit BYTES]
 *            [--deadline-ms MS]
 *            [--chaos-seed N] [--chaos-accept P] [--chaos-read P]
 *            [--chaos-write P] [--chaos-job P]
 *            [--postmortem-dir DIR] [--postmortem-keep N]
 *            [--metrics-sock PATH] [--metrics-dump FILE]
 *            [--metrics-json FILE] [--metrics-expo FILE]
 *            [--trace-out FILE] [--stats]
 *
 * --metrics-sock serves the live Prometheus text exposition: every
 * connection to PATH receives one scrape and is closed, so
 * `curl --unix-socket PATH` (or nc -U) works as a poll target while
 * the daemon is under load. --metrics-dump writes the same text once
 * at exit; --postmortem-dir persists a msulong.postmortem/v1 JSON
 * document for every job that dies (bug, host fault, watchdog
 * cancellation, resource limit).
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/expo.h"
#include "service/server.h"
#include "support/fault.h"
#include "tools/driver.h"

using namespace sulong;
using namespace sulong::service;

namespace
{

/**
 * Install a prefix rule over one daemon fault-site family when the
 * flag is present (value = firing probability per visit, e.g.
 * --chaos-read=0.05). @return true when installed.
 */
bool
addChaosRule(FaultInjector &faults, int argc, char **argv,
             const char *flag, const char *site_prefix)
{
    std::string value = parseStringFlag(argc, argv, flag);
    if (value.empty())
        return false;
    char *end = nullptr;
    double probability = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || probability < 0 ||
        probability > 1) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for --%s: expected a "
                     "probability in [0,1]\n", value.c_str(), flag);
        std::exit(2);
    }
    FaultInjector::Rule rule;
    rule.site = site_prefix;
    rule.sitePrefix = true;
    rule.action = FaultInjector::Action::hostException;
    rule.probability = probability;
    faults.addRule(rule);
    return true;
}

/**
 * Bind an AF_UNIX listener at @p path for the live metrics exposition.
 * @return the listening fd, or -1 after printing a diagnostic.
 */
int
bindMetricsSocket(const std::string &path)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr,
                     "msulongd: --metrics-sock path must be 1..%zu "
                     "bytes\n", sizeof(addr.sun_path) - 1);
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "msulongd: metrics socket: %s\n",
                     std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 8) != 0) {
        std::fprintf(stderr, "msulongd: metrics socket %s: %s\n",
                     path.c_str(), std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Serve one Prometheus scrape per accepted connection until the
 * listener is closed. Runs detached; closing @p listen_fd at drain
 * time makes accept() fail and the loop return.
 */
void
serveMetricsSocket(int listen_fd)
{
    for (;;) {
        int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        std::string text = sulong::obs::prometheusTextFromGlobal();
        const char *p = text.data();
        size_t left = text.size();
        while (left > 0) {
            ssize_t n = ::send(conn, p, left, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            p += n;
            left -= static_cast<size_t>(n);
        }
        ::close(conn);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path =
        parseStringFlag(argc, argv, "socket", "/tmp/msulong.sock");

    // Block the shutdown signals in every thread the daemon will ever
    // spawn, then dedicate one thread to sigwait: signal handling
    // becomes ordinary synchronous code with no async-signal-safety
    // constraints on the drain path.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    ObsFlags obs_flags = parseObsFlags(argc, argv);
    // --metrics-dump is the daemon-flavored spelling of --metrics-expo;
    // --metrics-sock serves the same text live. Both imply collection.
    std::string metrics_dump = parseStringFlag(argc, argv, "metrics-dump");
    if (!metrics_dump.empty() && obs_flags.metricsExpo.empty())
        obs_flags.metricsExpo = metrics_dump;
    std::string metrics_sock = parseStringFlag(argc, argv, "metrics-sock");
    if (!metrics_dump.empty() || !metrics_sock.empty())
        obs::setMetricsEnabled(true);

    ServiceConfig config;
    config.workers = parseJobsFlag(argc, argv, 2);
    config.queueCapacity = static_cast<size_t>(
        parseUint64Flag(argc, argv, "queue-cap", 64));
    config.tenantCapacity = static_cast<size_t>(
        parseUint64Flag(argc, argv, "tenant-cap", 16));
    config.watchdogMs = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "watchdog-ms", 10000));
    config.retries =
        static_cast<unsigned>(parseUint64Flag(argc, argv, "retries", 0));
    config.cacheCapacity = static_cast<size_t>(
        parseUint64Flag(argc, argv, "cache-cap", 64));
    config.limitCeiling = parseLimitFlags(argc, argv);
    config.postmortemDir = parseStringFlag(argc, argv, "postmortem-dir");
    config.postmortemKeep = static_cast<size_t>(
        parseUint64Flag(argc, argv, "postmortem-keep", 16));

    FaultInjector faults(parseUint64Flag(argc, argv, "chaos-seed", 0));
    bool chaos = false;
    chaos |= addChaosRule(faults, argc, argv, "chaos-accept",
                          "service.accept/");
    chaos |= addChaosRule(faults, argc, argv, "chaos-read",
                          "service.read/");
    chaos |= addChaosRule(faults, argc, argv, "chaos-write",
                          "service.write/");
    chaos |= addChaosRule(faults, argc, argv, "chaos-job",
                          "service.job/");
    if (chaos)
        config.faults = &faults;

    ServerOptions server_options;
    server_options.socketPath = socket_path;
    server_options.maxFrameBytes = static_cast<uint32_t>(parseUint64Flag(
        argc, argv, "max-frame-bytes", kDefaultMaxFrameBytes));
    server_options.drainGraceMs = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "drain-grace-ms", 2000));

    ServiceServer server(config, server_options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "msulongd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "msulongd: listening on %s (%u workers)\n",
                 socket_path.c_str(), server.service().workers());

    int metrics_fd = -1;
    if (!metrics_sock.empty()) {
        metrics_fd = bindMetricsSocket(metrics_sock);
        if (metrics_fd < 0)
            return 1;
        std::thread([metrics_fd] { serveMetricsSocket(metrics_fd); })
            .detach();
        std::fprintf(stderr, "msulongd: metrics exposition on %s\n",
                     metrics_sock.c_str());
    }

    std::thread signal_thread([&server, &sigs] {
        int sig = 0;
        if (sigwait(&sigs, &sig) == 0) {
            std::fprintf(stderr,
                         "msulongd: received signal %d, draining\n", sig);
            server.requestDrain();
        }
    });
    signal_thread.detach();

    int rc = server.runUntilDrained();
    if (metrics_fd >= 0) {
        ::close(metrics_fd);
        ::unlink(metrics_sock.c_str());
    }
    // Telemetry flushes after the last job has answered, so the
    // document reflects the whole run.
    if (!writeObsOutputs(obs_flags))
        rc = rc == 0 ? 1 : rc;
    std::fprintf(stderr, "msulongd: drained, exiting %d\n", rc);
    return rc;
}
