/**
 * @file
 * msulong_client — command-line client for msulongd.
 *
 * Submits one source file (or the built-in demo programs) as analysis
 * jobs, prints the structured responses, and maps the outcome to an
 * exit code the CI chaos load can gate on:
 *
 *   0  every job answered with a clean result
 *   1  at least one job reported a bug or a non-normal termination
 *   3  at least one job earned a structured error frame (overloaded,
 *      draining, injected fault, bad request) — the daemon answered
 *   4  transport failure (connect/send/recv) — the daemon did NOT
 *      answer; the chaos gate treats only this as unaccounted
 *
 * Usage:
 *   msulong_client [--socket=PATH] FILE [--tool=safe|clang|asan|memcheck]
 *                  [--opt=N] [--tenant=NAME] [--analyze] [--count=N]
 *                  [--guest-stdin=TEXT] [--quiet] [--trace-out=FILE]
 *   msulong_client --demo=clean|bug [...]
 *   msulong_client --health [--json] | --stats [--expo] | --drain
 *
 * --trace-out submits the jobs with a trace context attached, fetches
 * the daemon-side spans that joined the trace, and writes BOTH halves
 * into one Chrome trace file (client = pid 1, daemon = pid 2).
 * --stats prints the daemon's live msulong.stats/v1 document; with
 * --expo it prints the Prometheus text exposition instead. --health
 * prints a human-readable table; --json restores the raw JSON document.
 */

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "service/client.h"
#include "tools/driver.h"

using namespace sulong;
using namespace sulong::service;

namespace
{

const char *kDemoClean = R"(
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 1; i <= 10; i++) total += i;
    printf("total=%d\n", total);
    return 0;
}
)";

const char *kDemoBug = R"(
int main(void) {
    int buf[4];
    buf[4] = 1; /* one past the end */
    return 0;
}
)";

int
worstExit(int current, int candidate)
{
    // 4 (transport) dominates, then 3 (error frame), then 1, then 0.
    return candidate > current ? candidate : current;
}

/**
 * Counters whose registry names carry a tenant label look like
 * `service.tenant.admitted{tenant="name"}`; pull the label value back
 * out (empty when @p name is not of that shape).
 */
std::string
tenantLabelOf(const std::string &name, const std::string &base)
{
    const std::string prefix = base + "{tenant=\"";
    if (name.rfind(prefix, 0) != 0 || name.size() < prefix.size() + 2 ||
        name.compare(name.size() - 2, 2, "\"}") != 0)
        return "";
    return name.substr(prefix.size(), name.size() - prefix.size() - 2);
}

/** The --health table: the fields an operator reaches for first. */
void
printHealthTable(const obs::JsonValue &health)
{
    uint64_t uptime_ms = health.uintAt("uptime_ms");
    std::printf("msulongd health\n");
    std::printf("  %-16s %s\n", "draining",
                health.boolAt("draining") ? "yes" : "no");
    std::printf("  %-16s %" PRIu64 "\n", "workers",
                health.uintAt("workers"));
    std::printf("  %-16s %" PRIu64 " of %" PRIu64 " queue slots\n",
                "in-flight", health.uintAt("pending"),
                health.uintAt("queue_capacity"));
    std::printf("  %-16s %" PRIu64 "\n", "active tenants",
                health.uintAt("active_tenants"));
    std::printf("  %-16s %" PRIu64 ".%03" PRIu64 " s\n", "uptime",
                uptime_ms / 1000, uptime_ms % 1000);

    const obs::JsonValue *cache = health.find("cache");
    if (cache != nullptr) {
        uint64_t hits = cache->uintAt("hits");
        uint64_t misses = cache->uintAt("misses");
        std::printf("  %-16s %" PRIu64 " hits, %" PRIu64
                    " misses, %" PRIu64 " evictions",
                    "compile cache", hits, misses,
                    cache->uintAt("evictions"));
        if (hits + misses > 0)
            std::printf(" (%.1f%% hit rate)",
                        100.0 * static_cast<double>(hits) /
                            static_cast<double>(hits + misses));
        std::printf("\n");
    }

    const obs::JsonValue *counters = health.find("counters");
    if (counters == nullptr)
        return;
    uint64_t rejected = 0;
    for (const char *kind : {"draining", "overloaded", "tenant", "invalid"})
        rejected += counters->uintAt(std::string("service.rejected.") + kind);
    std::printf("  %-16s %" PRIu64 "\n", "admitted",
                counters->uintAt("service.admitted"));
    std::printf("  %-16s %" PRIu64
                " (draining=%" PRIu64 " overloaded=%" PRIu64
                " tenant=%" PRIu64 " invalid=%" PRIu64 ")\n",
                "rejected", rejected,
                counters->uintAt("service.rejected.draining"),
                counters->uintAt("service.rejected.overloaded"),
                counters->uintAt("service.rejected.tenant"),
                counters->uintAt("service.rejected.invalid"));

    bool header = false;
    for (const auto &[name, value] : counters->members()) {
        std::string tenant =
            tenantLabelOf(name, "service.tenant.admitted");
        if (tenant.empty())
            continue;
        if (!header) {
            std::printf("  %-16s %10s %10s\n", "tenant", "admitted",
                        "rejected");
            header = true;
        }
        std::printf("  %-16s %10" PRIu64 " %10" PRIu64 "\n",
                    tenant.c_str(), value.asUint64(),
                    counters->uintAt("service.tenant.rejected{tenant=\"" +
                                     tenant + "\"}"));
    }
}

/**
 * Convert the stats document's trace_events (the daemon's half of the
 * trace) back into TraceEvents on pid 2 for the merged Chrome trace.
 */
std::vector<obs::TraceEvent>
daemonTraceEvents(const obs::JsonValue &stats, const std::string &trace_id)
{
    std::vector<obs::TraceEvent> events;
    const obs::JsonValue *list = stats.find("trace_events");
    if (list == nullptr || !list->isArray())
        return events;
    for (const obs::JsonValue &item : list->elements()) {
        obs::TraceEvent event;
        event.name = item.stringAt("name");
        event.detail = item.stringAt("detail");
        const std::string &ph = item.stringAt("ph");
        event.phase = ph.empty() ? 'X' : ph[0];
        event.tid = item.uintAt("tid");
        event.tsNs = item.uintAt("ts_ns");
        event.durNs = item.uintAt("dur_ns");
        event.pid = 2;
        event.traceId = trace_id;
        obs::parseSpanIdHex(item.stringAt("span_id"), &event.spanId);
        obs::parseSpanIdHex(item.stringAt("parent_span"),
                            &event.parentSpan);
        events.push_back(std::move(event));
    }
    return events;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path =
        parseStringFlag(argc, argv, "socket", "/tmp/msulong.sock");
    bool quiet = hasFlag(argc, argv, "quiet");
    ObsFlags obs_flags = parseObsFlags(argc, argv);
    bool traced = !obs_flags.traceOut.empty();

    ServiceClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
        return 4;
    }

    if (hasFlag(argc, argv, "health")) {
        if (hasFlag(argc, argv, "json")) {
            // The raw msulong.health/v1 document, for scripts.
            Frame reply;
            if (!client.sendFrame(FrameType::healthRequest, "", &error) ||
                !client.readFrame(&reply, &error) ||
                reply.type != FrameType::healthResponse) {
                std::fprintf(stderr, "msulong_client: %s\n",
                             error.empty() ? "unexpected reply"
                                           : error.c_str());
                return 4;
            }
            std::printf("%s\n", reply.payload.c_str());
            return 0;
        }
        obs::JsonValue health;
        if (!client.health(&health, &error)) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        printHealthTable(health);
        return 0;
    }
    if (hasFlag(argc, argv, "stats")) {
        StatsRequest stats_request;
        if (hasFlag(argc, argv, "expo")) {
            stats_request.format = "prometheus";
            obs::JsonValue doc;
            if (!client.stats(stats_request, &doc, &error)) {
                std::fprintf(stderr, "msulong_client: %s\n",
                             error.c_str());
                return 4;
            }
            std::fputs(doc.stringAt("expo").c_str(), stdout);
            return 0;
        }
        // The raw msulong.stats/v1 document, for scripts.
        Frame reply;
        if (!client.sendFrame(FrameType::statsRequest,
                              encodeStatsRequest(stats_request), &error) ||
            !client.readFrame(&reply, &error) ||
            reply.type != FrameType::statsResponse) {
            std::fprintf(stderr, "msulong_client: %s\n",
                         error.empty() ? "unexpected reply"
                                       : error.c_str());
            return 4;
        }
        std::printf("%s\n", reply.payload.c_str());
        return 0;
    }
    if (hasFlag(argc, argv, "drain")) {
        if (!client.requestDrain(&error)) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        if (!quiet)
            std::printf("drain acknowledged\n");
        return 0;
    }

    JobRequest request;
    request.tenant = parseStringFlag(argc, argv, "tenant", "default");
    request.tool = parseStringFlag(argc, argv, "tool", "safe");
    request.optLevel = static_cast<int>(
        parseUint64Flag(argc, argv, "opt", 0));
    request.analyze = hasFlag(argc, argv, "analyze");
    request.stdinData = parseStringFlag(argc, argv, "guest-stdin");
    request.maxSteps = parseUint64Flag(argc, argv, "max-steps", 0);
    request.maxHeapBytes = parseUint64Flag(argc, argv, "heap-limit", 0);
    request.maxOutputBytes =
        parseUint64Flag(argc, argv, "output-limit", 0);
    request.deadlineMs = parseUint64Flag(argc, argv, "deadline-ms", 0);

    std::string demo = parseStringFlag(argc, argv, "demo");
    if (demo == "clean") {
        request.source = kDemoClean;
    } else if (demo == "bug") {
        request.source = kDemoBug;
    } else if (!demo.empty()) {
        std::fprintf(stderr,
                     "msulong_client: unknown demo '%s' "
                     "(expected clean|bug)\n", demo.c_str());
        return 2;
    } else {
        // First non-flag argument is the source file.
        const char *path = nullptr;
        for (int i = 1; i < argc; i++) {
            if (argv[i][0] != '-') {
                // Skip values consumed by "--flag value" forms.
                if (i > 1 && argv[i - 1][0] == '-' &&
                    std::string(argv[i - 1]).find('=') == std::string::npos)
                    continue;
                path = argv[i];
                break;
            }
        }
        if (path == nullptr) {
            std::fprintf(stderr,
                         "usage: msulong_client [--socket=PATH] FILE "
                         "| --demo=clean|bug | --health | --drain\n");
            return 2;
        }
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "msulong_client: cannot read %s\n",
                         path);
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        request.source = text.str();
    }

    uint64_t count = parseUint64Flag(argc, argv, "count", 1);
    int exit_code = 0;
    for (uint64_t i = 0; i < count; i++) {
        Frame reply;
        // The daemon closes a connection after answering it with a
        // read/write-fault error; a send that then fails submitted
        // nothing, so retry it on a fresh connection. Only a job whose
        // *reply* never arrives is a transport failure (exit 4).
        bool answered = false;
        for (int attempt = 0; attempt < 3 && !answered; attempt++) {
            if (!client.connected() &&
                !client.connect(socket_path, &error))
                continue;
            bool sent = traced
                ? client.submitTracedJob(request, &reply, &error)
                : client.submitJob(request, &reply, &error);
            if (sent)
                answered = true;
            else
                client.close();
        }
        if (!answered) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        obs::JsonValue doc;
        if (!obs::parseJson(reply.payload, &doc, &error)) {
            std::fprintf(stderr,
                         "msulong_client: unparseable reply: %s\n",
                         error.c_str());
            return 4;
        }
        if (reply.type == FrameType::error) {
            if (!quiet)
                std::printf("error code=%s detail=\"%s\"\n",
                            doc.stringAt("code").c_str(),
                            doc.stringAt("detail").c_str());
            exit_code = worstExit(exit_code, 3);
            continue;
        }
        if (reply.type != FrameType::jobResponse) {
            std::fprintf(stderr,
                         "msulong_client: unexpected frame type %d\n",
                         static_cast<int>(reply.type));
            return 4;
        }
        const std::string &termination = doc.stringAt("termination");
        const obs::JsonValue *bug = doc.find("bug");
        if (!quiet) {
            std::printf("job id=%llu termination=%s",
                        static_cast<unsigned long long>(doc.uintAt("id")),
                        termination.c_str());
            if (bug != nullptr)
                std::printf(" bug=%s", bug->stringAt("kind").c_str());
            std::printf(" attempts=%llu\n",
                        static_cast<unsigned long long>(
                            doc.uintAt("attempts")));
            const std::string &output = doc.stringAt("output");
            if (!output.empty())
                std::fputs(output.c_str(), stdout);
        }
        if (termination != "normal" || bug != nullptr)
            exit_code = worstExit(exit_code, 1);
    }

    if (traced) {
        // Merge the two halves of the trace: our own spans (pid 1) and
        // the daemon spans that adopted our trace id (pid 2), fetched
        // out-of-band via a stats request so job responses stay
        // byte-identical with tracing off.
        std::vector<obs::TraceEvent> events =
            obs::TraceCollector::global().drain();
        StatsRequest stats_request;
        stats_request.traceId = client.traceId();
        obs::JsonValue stats;
        if ((client.connected() || client.connect(socket_path, &error)) &&
            client.stats(stats_request, &stats, &error)) {
            std::vector<obs::TraceEvent> daemon_half =
                daemonTraceEvents(stats, client.traceId());
            events.insert(events.end(),
                          std::make_move_iterator(daemon_half.begin()),
                          std::make_move_iterator(daemon_half.end()));
        } else {
            std::fprintf(stderr,
                         "msulong_client: daemon trace fetch failed "
                         "(%s); writing the client half only\n",
                         error.c_str());
        }
        if (!obs::writeChromeTraceFile(obs_flags.traceOut, events,
                                       &error)) {
            std::fprintf(stderr, "msulong_client: trace-out: %s\n",
                         error.c_str());
            exit_code = worstExit(exit_code, 1);
        } else if (!quiet) {
            std::printf("trace written to %s (%zu events)\n",
                        obs_flags.traceOut.c_str(), events.size());
        }
    }
    return exit_code;
}
