/**
 * @file
 * msulong_client — command-line client for msulongd.
 *
 * Submits one source file (or the built-in demo programs) as analysis
 * jobs, prints the structured responses, and maps the outcome to an
 * exit code the CI chaos load can gate on:
 *
 *   0  every job answered with a clean result
 *   1  at least one job reported a bug or a non-normal termination
 *   3  at least one job earned a structured error frame (overloaded,
 *      draining, injected fault, bad request) — the daemon answered
 *   4  transport failure (connect/send/recv) — the daemon did NOT
 *      answer; the chaos gate treats only this as unaccounted
 *
 * Usage:
 *   msulong_client [--socket=PATH] FILE [--tool=safe|clang|asan|memcheck]
 *                  [--opt=N] [--tenant=NAME] [--analyze] [--count=N]
 *                  [--guest-stdin=TEXT] [--quiet]
 *   msulong_client --demo=clean|bug [...]
 *   msulong_client --health | --drain
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "tools/driver.h"

using namespace sulong;
using namespace sulong::service;

namespace
{

const char *kDemoClean = R"(
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 1; i <= 10; i++) total += i;
    printf("total=%d\n", total);
    return 0;
}
)";

const char *kDemoBug = R"(
int main(void) {
    int buf[4];
    buf[4] = 1; /* one past the end */
    return 0;
}
)";

int
worstExit(int current, int candidate)
{
    // 4 (transport) dominates, then 3 (error frame), then 1, then 0.
    return candidate > current ? candidate : current;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path =
        parseStringFlag(argc, argv, "socket", "/tmp/msulong.sock");
    bool quiet = hasFlag(argc, argv, "quiet");

    ServiceClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
        return 4;
    }

    if (hasFlag(argc, argv, "health")) {
        obs::JsonValue health;
        if (!client.health(&health, &error)) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        std::printf("pending=%llu workers=%llu draining=%s\n",
                    static_cast<unsigned long long>(
                        health.uintAt("pending")),
                    static_cast<unsigned long long>(
                        health.uintAt("workers")),
                    health.boolAt("draining") ? "true" : "false");
        return 0;
    }
    if (hasFlag(argc, argv, "drain")) {
        if (!client.requestDrain(&error)) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        if (!quiet)
            std::printf("drain acknowledged\n");
        return 0;
    }

    JobRequest request;
    request.tenant = parseStringFlag(argc, argv, "tenant", "default");
    request.tool = parseStringFlag(argc, argv, "tool", "safe");
    request.optLevel = static_cast<int>(
        parseUint64Flag(argc, argv, "opt", 0));
    request.analyze = hasFlag(argc, argv, "analyze");
    request.stdinData = parseStringFlag(argc, argv, "guest-stdin");
    request.maxSteps = parseUint64Flag(argc, argv, "max-steps", 0);
    request.maxHeapBytes = parseUint64Flag(argc, argv, "heap-limit", 0);
    request.maxOutputBytes =
        parseUint64Flag(argc, argv, "output-limit", 0);
    request.deadlineMs = parseUint64Flag(argc, argv, "deadline-ms", 0);

    std::string demo = parseStringFlag(argc, argv, "demo");
    if (demo == "clean") {
        request.source = kDemoClean;
    } else if (demo == "bug") {
        request.source = kDemoBug;
    } else if (!demo.empty()) {
        std::fprintf(stderr,
                     "msulong_client: unknown demo '%s' "
                     "(expected clean|bug)\n", demo.c_str());
        return 2;
    } else {
        // First non-flag argument is the source file.
        const char *path = nullptr;
        for (int i = 1; i < argc; i++) {
            if (argv[i][0] != '-') {
                // Skip values consumed by "--flag value" forms.
                if (i > 1 && argv[i - 1][0] == '-' &&
                    std::string(argv[i - 1]).find('=') == std::string::npos)
                    continue;
                path = argv[i];
                break;
            }
        }
        if (path == nullptr) {
            std::fprintf(stderr,
                         "usage: msulong_client [--socket=PATH] FILE "
                         "| --demo=clean|bug | --health | --drain\n");
            return 2;
        }
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "msulong_client: cannot read %s\n",
                         path);
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        request.source = text.str();
    }

    uint64_t count = parseUint64Flag(argc, argv, "count", 1);
    int exit_code = 0;
    for (uint64_t i = 0; i < count; i++) {
        Frame reply;
        // The daemon closes a connection after answering it with a
        // read/write-fault error; a send that then fails submitted
        // nothing, so retry it on a fresh connection. Only a job whose
        // *reply* never arrives is a transport failure (exit 4).
        bool answered = false;
        for (int attempt = 0; attempt < 3 && !answered; attempt++) {
            if (!client.connected() &&
                !client.connect(socket_path, &error))
                continue;
            if (client.submitJob(request, &reply, &error))
                answered = true;
            else
                client.close();
        }
        if (!answered) {
            std::fprintf(stderr, "msulong_client: %s\n", error.c_str());
            return 4;
        }
        obs::JsonValue doc;
        if (!obs::parseJson(reply.payload, &doc, &error)) {
            std::fprintf(stderr,
                         "msulong_client: unparseable reply: %s\n",
                         error.c_str());
            return 4;
        }
        if (reply.type == FrameType::error) {
            if (!quiet)
                std::printf("error code=%s detail=\"%s\"\n",
                            doc.stringAt("code").c_str(),
                            doc.stringAt("detail").c_str());
            exit_code = worstExit(exit_code, 3);
            continue;
        }
        if (reply.type != FrameType::jobResponse) {
            std::fprintf(stderr,
                         "msulong_client: unexpected frame type %d\n",
                         static_cast<int>(reply.type));
            return 4;
        }
        const std::string &termination = doc.stringAt("termination");
        const obs::JsonValue *bug = doc.find("bug");
        if (!quiet) {
            std::printf("job id=%llu termination=%s",
                        static_cast<unsigned long long>(doc.uintAt("id")),
                        termination.c_str());
            if (bug != nullptr)
                std::printf(" bug=%s", bug->stringAt("kind").c_str());
            std::printf(" attempts=%llu\n",
                        static_cast<unsigned long long>(
                            doc.uintAt("attempts")));
            const std::string &output = doc.stringAt("output");
            if (!output.empty())
                std::fputs(output.c_str(), stdout);
        }
        if (termination != "normal" || bug != nullptr)
            exit_code = worstExit(exit_code, 1);
    }
    return exit_code;
}
