#!/usr/bin/env python3
"""CI gate over BENCH_tier2.json/v1 files.

Subcommands:
  validate FILE...   check each file against the BENCH_tier2.json/v1 schema
  gate ON OFF --benches A,B [--min-geomean X]
                     compare the Safe Sulong ns_per_op of two runs of the
                     same benchmarks (optimizations ON vs ablated OFF) and
                     fail unless geomean(OFF/ON) >= the threshold; also
                     fail if the retired-step counts differ, since the
                     optimizing tier must do the same guest work.
"""

import argparse
import json
import math
import sys

SCHEMA = "BENCH_tier2.json/v1"
ENGINE = "Safe Sulong"


def fail(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records missing or empty")
    for i, r in enumerate(records):
        where = f"{path}: records[{i}]"
        if not isinstance(r, dict):
            fail(f"{where}: not an object")
        for key in ("bench", "engine", "config"):
            if not isinstance(r.get(key), str):
                fail(f"{where}: {key} missing or not a string")
        if not r["bench"] or not r["engine"]:
            fail(f"{where}: bench/engine must be non-empty")
        ns = r.get("ns_per_op")
        if not isinstance(ns, (int, float)) or ns <= 0:
            fail(f"{where}: ns_per_op must be a positive number, got {ns!r}")
        steps = r.get("steps_per_op")
        if not isinstance(steps, int) or steps < 0:
            fail(f"{where}: steps_per_op must be a non-negative int,"
                 f" got {steps!r}")
    return records


def sulong_records(path):
    out = {}
    for r in load(path):
        if r["engine"] == ENGINE:
            if r["bench"] in out:
                fail(f"{path}: duplicate {ENGINE} record for {r['bench']}")
            out[r["bench"]] = r
    return out


def cmd_validate(args):
    for path in args.files:
        records = load(path)
        print(f"{path}: ok ({len(records)} records)")
    return 0


def cmd_gate(args):
    on = sulong_records(args.on)
    off = sulong_records(args.off)
    benches = [b for b in args.benches.split(",") if b]
    if not benches:
        fail("--benches is empty")
    ratios = []
    for bench in benches:
        if bench not in on:
            fail(f"{args.on}: no {ENGINE} record for {bench}")
        if bench not in off:
            fail(f"{args.off}: no {ENGINE} record for {bench}")
        if on[bench]["steps_per_op"] != off[bench]["steps_per_op"]:
            fail(f"{bench}: steps_per_op differs "
                 f"({on[bench]['steps_per_op']} vs "
                 f"{off[bench]['steps_per_op']}) — the optimizing tier "
                 "must retire the same guest work")
        ratio = off[bench]["ns_per_op"] / on[bench]["ns_per_op"]
        ratios.append(ratio)
        print(f"{bench}: on={on[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"off={off[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"speedup={ratio:.2f}x")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"geomean speedup: {geomean:.3f}x (threshold {args.min_geomean}x)")
    if geomean < args.min_geomean:
        fail(f"geomean {geomean:.3f}x below threshold {args.min_geomean}x")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate")
    p_validate.add_argument("files", nargs="+")
    p_validate.set_defaults(func=cmd_validate)
    p_gate = sub.add_parser("gate")
    p_gate.add_argument("on")
    p_gate.add_argument("off")
    p_gate.add_argument("--benches", required=True,
                        help="comma-separated bench names to compare")
    p_gate.add_argument("--min-geomean", type=float, default=1.2)
    p_gate.set_defaults(func=cmd_gate)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
