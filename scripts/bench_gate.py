#!/usr/bin/env python3
"""CI gate over BENCH_tier2.json/v1 and BENCH_analysis.json/v1 files.

Subcommands:
  validate FILE...   check each file against the BENCH_tier2.json/v1 schema
  gate ON OFF --benches A,B [--min-geomean X]
                     compare the Safe Sulong ns_per_op of two runs of the
                     same benchmarks (optimizations ON vs ablated OFF) and
                     fail unless geomean(OFF/ON) >= the threshold; also
                     fail if the retired-step counts differ, since the
                     optimizing tier must do the same guest work.
  analysis FILE [--min-recall X] [--min-definite-recall Y]
                     validate a BENCH_analysis.json/v1 cross-validation
                     report and fail on any false `definite` static
                     finding (the analyzer's soundness contract) or on
                     recall below the floors.
"""

import argparse
import json
import math
import sys

SCHEMA = "BENCH_tier2.json/v1"
ENGINE = "Safe Sulong"


def fail(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records missing or empty")
    for i, r in enumerate(records):
        where = f"{path}: records[{i}]"
        if not isinstance(r, dict):
            fail(f"{where}: not an object")
        for key in ("bench", "engine", "config"):
            if not isinstance(r.get(key), str):
                fail(f"{where}: {key} missing or not a string")
        if not r["bench"] or not r["engine"]:
            fail(f"{where}: bench/engine must be non-empty")
        ns = r.get("ns_per_op")
        if not isinstance(ns, (int, float)) or ns <= 0:
            fail(f"{where}: ns_per_op must be a positive number, got {ns!r}")
        steps = r.get("steps_per_op")
        if not isinstance(steps, int) or steps < 0:
            fail(f"{where}: steps_per_op must be a non-negative int,"
                 f" got {steps!r}")
    return records


def sulong_records(path):
    out = {}
    for r in load(path):
        if r["engine"] == ENGINE:
            if r["bench"] in out:
                fail(f"{path}: duplicate {ENGINE} record for {r['bench']}")
            out[r["bench"]] = r
    return out


def cmd_validate(args):
    for path in args.files:
        records = load(path)
        print(f"{path}: ok ({len(records)} records)")
    return 0


def cmd_gate(args):
    on = sulong_records(args.on)
    off = sulong_records(args.off)
    benches = [b for b in args.benches.split(",") if b]
    if not benches:
        fail("--benches is empty")
    ratios = []
    for bench in benches:
        if bench not in on:
            fail(f"{args.on}: no {ENGINE} record for {bench}")
        if bench not in off:
            fail(f"{args.off}: no {ENGINE} record for {bench}")
        if on[bench]["steps_per_op"] != off[bench]["steps_per_op"]:
            fail(f"{bench}: steps_per_op differs "
                 f"({on[bench]['steps_per_op']} vs "
                 f"{off[bench]['steps_per_op']}) — the optimizing tier "
                 "must retire the same guest work")
        ratio = off[bench]["ns_per_op"] / on[bench]["ns_per_op"]
        ratios.append(ratio)
        print(f"{bench}: on={on[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"off={off[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"speedup={ratio:.2f}x")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"geomean speedup: {geomean:.3f}x (threshold {args.min_geomean}x)")
    if geomean < args.min_geomean:
        fail(f"geomean {geomean:.3f}x below threshold {args.min_geomean}x")
    return 0


ANALYSIS_SCHEMA = "BENCH_analysis.json/v1"


def load_analysis(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != ANALYSIS_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r},"
             f" want {ANALYSIS_SCHEMA!r}")
    for key in ("corpus_size", "definite_findings", "maybe_findings",
                "false_definites", "static_hits", "definite_hits"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: {key} must be a non-negative int, got {v!r}")
    for key in ("recall", "definite_recall"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or not 0 <= v <= 1:
            fail(f"{path}: {key} must be in [0, 1], got {v!r}")
    wall = doc.get("wall_ms")
    if not isinstance(wall, (int, float)) or wall < 0:
        fail(f"{path}: wall_ms must be a non-negative number, got {wall!r}")
    if doc["corpus_size"] == 0:
        fail(f"{path}: corpus_size is 0 — nothing was cross-validated")
    if not isinstance(doc.get("refuted"), bool):
        fail(f"{path}: refuted must be a bool")
    return doc


def cmd_analysis(args):
    doc = load_analysis(args.file)
    print(f"{args.file}: ok (corpus {doc['corpus_size']},"
          f" recall {doc['recall']:.3f},"
          f" definite recall {doc['definite_recall']:.3f},"
          f" false definites {doc['false_definites']},"
          f" {doc['wall_ms']:.0f} ms)")
    if not doc["refuted"]:
        fail(f"{args.file}: report was produced with refutation off —"
             " the soundness contract was not checked")
    if doc["false_definites"] != 0:
        fail(f"{args.file}: {doc['false_definites']} false definite"
             " finding(s) — the analyzer reported a definite bug the"
             " dynamic detector does not reproduce")
    if doc["recall"] < args.min_recall:
        fail(f"{args.file}: recall {doc['recall']:.3f} below floor"
             f" {args.min_recall}")
    if doc["definite_recall"] < args.min_definite_recall:
        fail(f"{args.file}: definite recall {doc['definite_recall']:.3f}"
             f" below floor {args.min_definite_recall}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate")
    p_validate.add_argument("files", nargs="+")
    p_validate.set_defaults(func=cmd_validate)
    p_gate = sub.add_parser("gate")
    p_gate.add_argument("on")
    p_gate.add_argument("off")
    p_gate.add_argument("--benches", required=True,
                        help="comma-separated bench names to compare")
    p_gate.add_argument("--min-geomean", type=float, default=1.2)
    p_gate.set_defaults(func=cmd_gate)
    p_analysis = sub.add_parser("analysis")
    p_analysis.add_argument("file")
    p_analysis.add_argument("--min-recall", type=float, default=0.95)
    p_analysis.add_argument("--min-definite-recall", type=float,
                            default=0.90)
    p_analysis.set_defaults(func=cmd_analysis)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
