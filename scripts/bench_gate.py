#!/usr/bin/env python3
"""CI gate over BENCH_tier2.json/v1 and BENCH_analysis.json/v1 files.

Subcommands:
  validate FILE...   check each file against the BENCH_tier2.json/v1 schema
  gate ON OFF --benches A,B [--min-geomean X]
                     compare the Safe Sulong ns_per_op of two runs of the
                     same benchmarks (optimizations ON vs ablated OFF) and
                     fail unless geomean(OFF/ON) >= the threshold; also
                     fail if the retired-step counts differ, since the
                     optimizing tier must do the same guest work.
  tier3 FILE [--benches A,B] [--min-geomean X]
                     validate a BENCH_tier3.json/v1 report (bench_tier3
                     --json) and fail unless, over the named benchmarks
                     (default: the perf-gate set), tier-3 retired exactly
                     the same guest steps as tier-2, actually translated
                     code, and the geomean same-process speedup meets the
                     threshold.
  analysis FILE [--min-recall X] [--min-definite-recall Y]
                [--require-scaling] [--max-scaling-blowup X]
                [--fewer-maybes-than OTHER]
                     validate a BENCH_analysis.json/v1 cross-validation
                     report and fail on any false `definite` static
                     finding (the analyzer's soundness contract) or on
                     recall below the floors; optionally check the
                     program-size scaling curve for superlinear blowup
                     and compare maybe-finding counts against an
                     ablation run.
  obs [METRICS] [--trace FILE] [--expo FILE] [--require NAME...]
                     validate an obs/v1 metrics document (and optionally
                     a Chrome trace-event file) emitted by --metrics-json
                     / --trace-out; each --require'd counter must be
                     present and nonzero ("a|b" accepts either).
                     --expo validates a Prometheus text exposition
                     (--metrics-expo / msulong_client --stats --expo):
                     TYPE lines, sample syntax, cumulative histogram
                     buckets ending at +Inf == _count.
  overhead --base B... --with W... --benches A,B [--max-ratio X]
                     compare Safe Sulong ns_per_op of a telemetry-enabled
                     build (--with) against the MS_OBS=OFF baseline
                     (--base) over paired measurement rounds, and fail
                     if the geomean of per-bench median ratios exceeds
                     the ceiling — disabled hooks must be (near) free.
  fuzz FILE [--min-programs N] [--min-rate X]
                     validate a BENCH_fuzz.json/v1 campaign report
                     (fuzz_runner --json) and fail on any unexplained
                     disagreement, any compile error, any injected bug
                     the managed engine missed, a malformed shrink
                     ratio, or a campaign smaller/slower than the floors.
  service FILE [--min-jobs N] [--min-rate X] [--min-postmortems N]
                     validate a BENCH_service.json/v1 chaos-load report
                     (bench_service --json) and fail on any daemon
                     death, any job not answered with exactly one
                     structured frame, an unhealthy daemon after load,
                     a dirty drain, a failed mid-load stats scrape, or
                     a load smaller/slower than the floors.
"""

import argparse
import json
import math
import re
import sys

SCHEMA = "BENCH_tier2.json/v1"
ENGINE = "Safe Sulong"


def fail(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records missing or empty")
    for i, r in enumerate(records):
        where = f"{path}: records[{i}]"
        if not isinstance(r, dict):
            fail(f"{where}: not an object")
        for key in ("bench", "engine", "config"):
            if not isinstance(r.get(key), str):
                fail(f"{where}: {key} missing or not a string")
        if not r["bench"] or not r["engine"]:
            fail(f"{where}: bench/engine must be non-empty")
        ns = r.get("ns_per_op")
        if not isinstance(ns, (int, float)) or ns <= 0:
            fail(f"{where}: ns_per_op must be a positive number, got {ns!r}")
        steps = r.get("steps_per_op")
        if not isinstance(steps, int) or steps < 0:
            fail(f"{where}: steps_per_op must be a non-negative int,"
                 f" got {steps!r}")
    return records


def sulong_records(path):
    out = {}
    for r in load(path):
        if r["engine"] == ENGINE:
            if r["bench"] in out:
                fail(f"{path}: duplicate {ENGINE} record for {r['bench']}")
            out[r["bench"]] = r
    return out


def cmd_validate(args):
    for path in args.files:
        records = load(path)
        print(f"{path}: ok ({len(records)} records)")
    return 0


def cmd_gate(args):
    on = sulong_records(args.on)
    off = sulong_records(args.off)
    benches = [b for b in args.benches.split(",") if b]
    if not benches:
        fail("--benches is empty")
    ratios = []
    for bench in benches:
        if bench not in on:
            fail(f"{args.on}: no {ENGINE} record for {bench}")
        if bench not in off:
            fail(f"{args.off}: no {ENGINE} record for {bench}")
        if on[bench]["steps_per_op"] != off[bench]["steps_per_op"]:
            fail(f"{bench}: steps_per_op differs "
                 f"({on[bench]['steps_per_op']} vs "
                 f"{off[bench]['steps_per_op']}) — the optimizing tier "
                 "must retire the same guest work")
        ratio = off[bench]["ns_per_op"] / on[bench]["ns_per_op"]
        ratios.append(ratio)
        print(f"{bench}: on={on[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"off={off[bench]['ns_per_op'] / 1e6:.1f}ms "
              f"speedup={ratio:.2f}x")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"geomean speedup: {geomean:.3f}x (threshold {args.min_geomean}x)")
    if geomean < args.min_geomean:
        fail(f"geomean {geomean:.3f}x below threshold {args.min_geomean}x")
    return 0


TIER3_SCHEMA = "BENCH_tier3.json/v1"

# The benches the tier-3 PR is gated on: the call- and pointer-bound
# workloads threaded dispatch targets. The full suite's geomean includes
# float-heavy kernels tier-3 helps less, so gating on it would only
# measure host noise.
TIER3_DEFAULT_BENCHES = "fig16.calltower,fig16.pointerchase"


def load_tier3(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != TIER3_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r},"
             f" want {TIER3_SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records missing or empty")
    out = {}
    for i, r in enumerate(records):
        where = f"{path}: records[{i}]"
        if not isinstance(r, dict):
            fail(f"{where}: not an object")
        for key in ("bench", "config"):
            if not isinstance(r.get(key), str) or not r[key]:
                fail(f"{where}: {key} missing or empty")
        for key in ("tier2_ns_per_op", "tier3_ns_per_op", "speedup"):
            v = r.get(key)
            if not isinstance(v, (int, float)) or v <= 0:
                fail(f"{where}: {key} must be a positive number,"
                     f" got {v!r}")
        for key in ("tier2_steps", "tier3_steps", "t3_compiles",
                    "t3_superblocks", "t3_osr_entries", "t3_deopt_mega",
                    "t3_deopt_shape", "t3_deopt_steps", "t3_deopt_bug"):
            v = r.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{where}: {key} must be a non-negative int,"
                     f" got {v!r}")
        if r["bench"] in out:
            fail(f"{path}: duplicate record for {r['bench']}")
        out[r["bench"]] = r
    return out


def cmd_tier3(args):
    records = load_tier3(args.file)
    benches = [b for b in args.benches.split(",") if b]
    if not benches:
        fail("--benches is empty")
    ratios = []
    for bench in benches:
        r = records.get(bench)
        if r is None:
            fail(f"{args.file}: no record for {bench}")
        if r["tier2_steps"] != r["tier3_steps"]:
            fail(f"{bench}: retired steps differ (tier2"
                 f" {r['tier2_steps']}, tier3 {r['tier3_steps']}) —"
                 " tier-3 must do exactly the same guest work")
        if r["t3_compiles"] == 0:
            fail(f"{bench}: t3_compiles is 0 — the tier-3 arm never"
                 " translated anything, so the comparison is vacuous")
        ratio = r["tier2_ns_per_op"] / r["tier3_ns_per_op"]
        ratios.append(ratio)
        deopts = (r["t3_deopt_mega"] + r["t3_deopt_shape"] +
                  r["t3_deopt_steps"] + r["t3_deopt_bug"])
        print(f"{bench}: tier2={r['tier2_ns_per_op'] / 1e6:.1f}ms "
              f"tier3={r['tier3_ns_per_op'] / 1e6:.1f}ms "
              f"speedup={ratio:.2f}x sblocks={r['t3_superblocks']} "
              f"osr={r['t3_osr_entries']} deopts={deopts}")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"geomean tier-3 speedup: {geomean:.3f}x"
          f" (threshold {args.min_geomean}x)")
    if geomean < args.min_geomean:
        fail(f"geomean {geomean:.3f}x below threshold"
             f" {args.min_geomean}x")
    return 0


ANALYSIS_SCHEMA = "BENCH_analysis.json/v1"


def load_analysis(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != ANALYSIS_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r},"
             f" want {ANALYSIS_SCHEMA!r}")
    for key in ("corpus_size", "definite_findings", "maybe_findings",
                "false_definites", "static_hits", "definite_hits"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: {key} must be a non-negative int, got {v!r}")
    for key in ("recall", "definite_recall"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or not 0 <= v <= 1:
            fail(f"{path}: {key} must be in [0, 1], got {v!r}")
    wall = doc.get("wall_ms")
    if not isinstance(wall, (int, float)) or wall < 0:
        fail(f"{path}: wall_ms must be a non-negative number, got {wall!r}")
    if doc["corpus_size"] == 0:
        fail(f"{path}: corpus_size is 0 — nothing was cross-validated")
    if not isinstance(doc.get("refuted"), bool):
        fail(f"{path}: refuted must be a bool")
    # Interprocedural fields (absent in pre-interprocedural reports).
    for key in ("summaries", "solver"):
        if key in doc and not isinstance(doc[key], bool):
            fail(f"{path}: {key} must be a bool")
    for key in ("solver_refutations", "summaries_applied",
                "interproc_definite", "interproc_maybe",
                "interproc_refuted", "cache_hits", "cache_misses"):
        if key in doc:
            v = doc[key]
            if not isinstance(v, int) or v < 0:
                fail(f"{path}: {key} must be a non-negative int, got {v!r}")
    if "scaling" in doc:
        scaling = doc["scaling"]
        if not isinstance(scaling, list):
            fail(f"{path}: scaling must be a list")
        for i, p in enumerate(scaling):
            where = f"{path}: scaling[{i}]"
            if not isinstance(p, dict):
                fail(f"{where}: not an object")
            for key in ("n", "functions", "sccs"):
                v = p.get(key)
                if not isinstance(v, int) or v <= 0:
                    fail(f"{where}: {key} must be a positive int, got {v!r}")
            wall = p.get("wall_ms")
            if not isinstance(wall, (int, float)) or wall < 0:
                fail(f"{where}: wall_ms must be a non-negative number,"
                     f" got {wall!r}")
    return doc


def check_scaling(path, doc, max_blowup):
    """The bench analyzes call chains of N helpers for growing N; the
    analysis must stay roughly linear in program size. Wall clock on CI
    is noisy at sub-millisecond scale, so the gate checks structure
    strictly (monotone N, function counts tracking N, SCC condensation
    actually happening) and per-function time only against a generous
    blowup ceiling."""
    scaling = doc.get("scaling")
    if not scaling:
        fail(f"{path}: scaling curve missing or empty — the bench did"
             " not measure the program-size curve")
    prev_n = 0
    for p in scaling:
        if p["n"] <= prev_n:
            fail(f"{path}: scaling curve Ns are not strictly increasing")
        prev_n = p["n"]
        if p["functions"] < p["n"]:
            fail(f"{path}: scaling point N={p['n']} analyzed only"
                 f" {p['functions']} functions — the chain was not"
                 " analyzed whole-program")
        if p["sccs"] < p["functions"]:
            fail(f"{path}: scaling point N={p['n']} has fewer SCCs"
                 f" ({p['sccs']}) than functions ({p['functions']}) —"
                 " a non-recursive chain must condense to singleton SCCs")
    first, last = scaling[0], scaling[-1]
    per_fn_first = max(first["wall_ms"], 1e-3) / first["functions"]
    per_fn_last = max(last["wall_ms"], 1e-3) / last["functions"]
    blowup = per_fn_last / per_fn_first
    print(f"{path}: scaling N={first['n']}..{last['n']},"
          f" per-function time blowup {blowup:.2f}x"
          f" (ceiling {max_blowup}x)")
    if blowup > max_blowup:
        fail(f"{path}: per-function analysis time grew {blowup:.2f}x"
             f" from N={first['n']} to N={last['n']} (ceiling"
             f" {max_blowup}x) — superlinear blowup in the"
             " interprocedural analysis")


def cmd_analysis(args):
    doc = load_analysis(args.file)
    print(f"{args.file}: ok (corpus {doc['corpus_size']},"
          f" recall {doc['recall']:.3f},"
          f" definite recall {doc['definite_recall']:.3f},"
          f" false definites {doc['false_definites']},"
          f" {doc['wall_ms']:.0f} ms)")
    if not doc["refuted"]:
        fail(f"{args.file}: report was produced with refutation off —"
             " the soundness contract was not checked")
    if doc["false_definites"] != 0:
        fail(f"{args.file}: {doc['false_definites']} false definite"
             " finding(s) — the analyzer reported a definite bug the"
             " dynamic detector does not reproduce")
    if doc["recall"] < args.min_recall:
        fail(f"{args.file}: recall {doc['recall']:.3f} below floor"
             f" {args.min_recall}")
    if doc["definite_recall"] < args.min_definite_recall:
        fail(f"{args.file}: definite recall {doc['definite_recall']:.3f}"
             f" below floor {args.min_definite_recall}")
    if args.require_scaling or "scaling" in doc:
        check_scaling(args.file, doc, args.max_scaling_blowup)
    if args.fewer_maybes_than:
        other = load_analysis(args.fewer_maybes_than)
        print(f"{args.file}: maybe findings {doc['maybe_findings']} vs"
              f" {args.fewer_maybes_than}: {other['maybe_findings']}")
        if doc["maybe_findings"] >= other["maybe_findings"]:
            fail(f"{args.file}: {doc['maybe_findings']} maybe findings"
                 f" is not strictly fewer than"
                 f" {args.fewer_maybes_than}'s"
                 f" {other['maybe_findings']} — the ablated arm should"
                 " lose precision")
    return 0


OBS_SCHEMA = "obs/v1"


def load_obs_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != OBS_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {OBS_SCHEMA!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: counters missing or not an object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} must be a non-negative int,"
                 f" got {value!r}")
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        fail(f"{path}: gauges missing or not an object")
    for name, value in gauges.items():
        if not isinstance(value, int):
            fail(f"{path}: gauge {name!r} must be an int, got {value!r}")
    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        fail(f"{path}: histograms missing or not an object")
    for name, hist in histograms.items():
        where = f"{path}: histogram {name!r}"
        if not isinstance(hist, dict):
            fail(f"{where}: not an object")
        for key in ("count", "sum"):
            v = hist.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{where}: {key} must be a non-negative int, got {v!r}")
        buckets = hist.get("buckets")
        if not isinstance(buckets, list):
            fail(f"{where}: buckets missing or not a list")
        total = 0
        for b in buckets:
            if (not isinstance(b, list) or len(b) != 3 or
                    not all(isinstance(x, int) and x >= 0 for x in b)):
                fail(f"{where}: bucket {b!r} is not a [lo, hi, count]"
                     " triple of non-negative ints")
            lo, hi, count = b
            if lo > hi:
                fail(f"{where}: bucket [{lo}, {hi}] has lo > hi")
            total += count
        if total != hist["count"]:
            fail(f"{where}: bucket counts sum to {total},"
                 f" count says {hist['count']}")
        for key in ("p50", "p90", "p99"):
            v = hist.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{where}: {key} must be a non-negative int,"
                     f" got {v!r}")
        if not hist["p50"] <= hist["p90"] <= hist["p99"]:
            fail(f"{where}: percentiles are not monotonic:"
                 f" p50={hist['p50']} p90={hist['p90']} p99={hist['p99']}")
        if buckets and hist["p99"] > buckets[-1][1]:
            fail(f"{where}: p99 {hist['p99']} above the last bucket's"
                 f" upper bound {buckets[-1][1]}")
    return doc


def check_prometheus_expo(path):
    """Validate a Prometheus text-format (0.0.4) exposition: every
    sample belongs to a typed family, histogram buckets are cumulative
    and end at +Inf == _count, and values parse."""
    with open(path) as f:
        text = f.read()
    if not text.strip():
        fail(f"{path}: exposition is empty")
    typed = {}
    # family -> list of (labels, value) for its _bucket samples, plus
    # its _count samples keyed by the non-le labels.
    hist_buckets = {}
    hist_counts = {}
    samples = 0
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$')
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if name in typed:
                    fail(f"{where}: duplicate TYPE for {name}")
                if kind not in ("counter", "gauge", "histogram"):
                    fail(f"{where}: unknown metric type {kind!r}")
                typed[name] = kind
            elif parts[:2] == ["#", "HELP"]:
                pass
            else:
                fail(f"{where}: unrecognized comment {line!r}")
            continue
        m = sample_re.match(line)
        if m is None:
            fail(f"{where}: unparseable sample {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            number = float(value)
        except ValueError:
            fail(f"{where}: value {value!r} is not a number")
        samples += 1
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                family = base
                break
        if family not in typed:
            fail(f"{where}: sample {name!r} has no preceding TYPE line")
        if typed[family] == "histogram" and name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                fail(f"{where}: histogram bucket without an le label")
            # The emitter puts le last; strip it (and its comma) to
            # recover the labels the _count sample carries.
            rest = re.sub(r',?le="[^"]*"', "", labels)
            if rest == "{}":
                rest = ""
            hist_buckets.setdefault((family, rest), []).append(
                (le.group(1), number, lineno))
        if typed[family] == "histogram" and name.endswith("_count"):
            hist_counts[(family, labels)] = number
    for (family, rest), buckets in hist_buckets.items():
        prev = -1.0
        for le, number, lineno in buckets:
            if number < prev:
                fail(f"{path}:{lineno}: histogram {family} buckets are"
                     f" not cumulative ({number} after {prev})")
            prev = number
        last_le, last_value, lineno = buckets[-1]
        if last_le != "+Inf":
            fail(f"{path}:{lineno}: histogram {family} does not end at"
                 " le=\"+Inf\"")
        count = hist_counts.get((family, rest))
        if count is None:
            fail(f"{path}: histogram {family} has buckets but no _count")
        if last_value != count:
            fail(f"{path}: histogram {family}: +Inf bucket {last_value}"
                 f" != _count {count}")
    if samples == 0:
        fail(f"{path}: exposition has no samples")
    return samples, len(typed)


def check_obs_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents missing or not a list")
    if not events:
        fail(f"{path}: traceEvents is empty — tracing produced nothing")
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where}: name missing or empty")
        if e.get("ph") not in ("X", "i"):
            fail(f"{where}: ph is {e.get('ph')!r}, want 'X' or 'i'")
        for key in ("ts", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                fail(f"{where}: {key} missing or not a number")
        if e["ph"] == "X" and not isinstance(e.get("dur"), (int, float)):
            fail(f"{where}: complete span without a dur")
    return events


def cmd_obs(args):
    if args.metrics is None and not args.expo:
        fail("obs: need a METRICS file and/or --expo FILE")
    if args.metrics is not None:
        doc = load_obs_metrics(args.metrics)
        counters = doc["counters"]
        for requirement in args.require:
            # "a|b" means any one of the alternatives satisfies it.
            alternatives = [n for n in requirement.split("|") if n]
            if not any(counters.get(n, 0) > 0 for n in alternatives):
                fail(f"{args.metrics}: required counter {requirement!r}"
                     " is missing or zero")
        print(f"{args.metrics}: ok ({len(counters)} counters,"
              f" {len(doc['histograms'])} histograms,"
              f" {len(args.require)} requirement(s) met)")
    if args.trace:
        events = check_obs_trace(args.trace)
        spans = sum(1 for e in events if e["ph"] == "X")
        print(f"{args.trace}: ok ({len(events)} events, {spans} spans)")
    if args.expo:
        samples, families = check_prometheus_expo(args.expo)
        print(f"{args.expo}: ok ({samples} samples,"
              f" {families} typed families)")
    return 0


def cmd_overhead(args):
    """Wall-clock comparisons on shared CI hosts are noisy (frequency
    scaling, co-tenancy) at a scale far above the overhead ceiling, so
    the gate takes several PAIRED rounds — each round runs both builds
    back to back, ideally alternating which goes first — and judges the
    per-bench MEDIAN of the per-round ratios. Pairing cancels slow
    drift; the median discards rounds where a scheduler hiccup landed on
    one side; alternation cancels within-round warm-up bias."""
    if len(args.base) != len(args.with_obs):
        fail(f"--base has {len(args.base)} file(s) but --with has"
             f" {len(args.with_obs)} — rounds must be paired")
    base_rounds = [sulong_records(p) for p in args.base]
    with_rounds = [sulong_records(p) for p in args.with_obs]
    benches = [b for b in args.benches.split(",") if b]
    if not benches:
        fail("--benches is empty")
    medians = []
    for bench in benches:
        ratios = []
        for base, with_obs, bp, wp in zip(base_rounds, with_rounds,
                                          args.base, args.with_obs):
            if bench not in base:
                fail(f"{bp}: no {ENGINE} record for {bench}")
            if bench not in with_obs:
                fail(f"{wp}: no {ENGINE} record for {bench}")
            if base[bench]["steps_per_op"] != with_obs[bench]["steps_per_op"]:
                fail(f"{bench}: steps_per_op differs "
                     f"({base[bench]['steps_per_op']} vs "
                     f"{with_obs[bench]['steps_per_op']}) — telemetry hooks "
                     "must not change the guest work retired")
            ratios.append(with_obs[bench]["ns_per_op"] /
                          base[bench]["ns_per_op"])
        ratios.sort()
        mid = len(ratios) // 2
        if len(ratios) % 2:
            median = ratios[mid]
        else:
            median = math.sqrt(ratios[mid - 1] * ratios[mid])
        medians.append(median)
        rounds = ", ".join(f"{r:.3f}" for r in ratios)
        print(f"{bench}: per-round ratios [{rounds}] median={median:.3f}x")
    geomean = math.exp(sum(map(math.log, medians)) / len(medians))
    print(f"geomean overhead: {geomean:.3f}x (ceiling {args.max_ratio}x)")
    if geomean > args.max_ratio:
        fail(f"disabled-telemetry overhead {geomean:.3f}x exceeds"
             f" ceiling {args.max_ratio}x")
    return 0


FUZZ_SCHEMA = "BENCH_fuzz.json/v1"


def load_fuzz(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != FUZZ_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {FUZZ_SCHEMA!r}")
    for key in ("seed_begin", "seed_count", "bug_ratio_pct", "jobs",
                "programs", "clean", "injected", "compile_errors",
                "injected_detected_managed", "unexplained", "survivors",
                "duplicates_collapsed"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: {key} must be a non-negative int, got {v!r}")
    for key in ("wall_ms", "programs_per_sec"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{path}: {key} must be a non-negative number, got {v!r}")
    static = doc.get("static")
    if not isinstance(static, dict):
        fail(f"{path}: static missing or not an object")
    for key in ("hits", "definite", "maybe"):
        v = static.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: static.{key} must be a non-negative int,"
                 f" got {v!r}")
    disagreements = doc.get("disagreements")
    if not isinstance(disagreements, dict):
        fail(f"{path}: disagreements missing or not an object")
    for key in ("missed-bug", "false-positive", "output-divergence",
                "termination-divergence"):
        v = disagreements.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: disagreements[{key!r}] must be a non-negative"
                 f" int, got {v!r}")
    minimizer = doc.get("minimizer")
    if not isinstance(minimizer, dict):
        fail(f"{path}: minimizer missing or not an object")
    runs = minimizer.get("predicate_runs")
    if not isinstance(runs, int) or runs < 0:
        fail(f"{path}: minimizer.predicate_runs must be a non-negative"
             f" int, got {runs!r}")
    shrink = minimizer.get("shrink_ratio")
    if not isinstance(shrink, (int, float)) or not 0 <= shrink <= 1:
        fail(f"{path}: minimizer.shrink_ratio must be in [0, 1],"
             f" got {shrink!r}")
    if doc["clean"] + doc["injected"] != doc["programs"]:
        fail(f"{path}: clean ({doc['clean']}) + injected"
             f" ({doc['injected']}) != programs ({doc['programs']})")
    return doc


def cmd_fuzz(args):
    doc = load_fuzz(args.file)
    print(f"{args.file}: ok ({doc['programs']} programs from seed"
          f" {doc['seed_begin']}, {doc['injected']} injected,"
          f" {doc['unexplained']} unexplained,"
          f" {doc['survivors']} survivor(s),"
          f" {doc['programs_per_sec']:.1f} programs/s)")
    if doc["programs"] <= 0:
        fail(f"{args.file}: campaign ran zero programs")
    if doc["programs"] < args.min_programs:
        fail(f"{args.file}: only {doc['programs']} programs, floor is"
             f" {args.min_programs}")
    if doc["unexplained"] != 0:
        fail(f"{args.file}: {doc['unexplained']} unexplained"
             " disagreement(s) — an engine, the oracle, or the ground"
             " truth is wrong; triage the survivors")
    if doc["compile_errors"] != 0:
        fail(f"{args.file}: {doc['compile_errors']} generated program(s)"
             " failed to compile — the generator emitted invalid C")
    if doc["injected_detected_managed"] != doc["injected"]:
        fail(f"{args.file}: managed engine detected"
             f" {doc['injected_detected_managed']} of {doc['injected']}"
             " injected bugs — the managed model must catch every class")
    if doc["programs_per_sec"] < args.min_rate:
        fail(f"{args.file}: throughput {doc['programs_per_sec']:.1f}"
             f" programs/s below floor {args.min_rate}")
    return 0


SERVICE_SCHEMA = "BENCH_service.json/v1"


def load_service(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SERVICE_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r},"
             f" want {SERVICE_SCHEMA!r}")
    for key in ("clients", "workers", "jobs_total", "ok", "bug",
                "error_frames", "structured_replies",
                "transport_failures", "daemon_deaths"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: {key} must be a non-negative int, got {v!r}")
    for key in ("wall_ms", "jobs_per_sec"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{path}: {key} must be a non-negative number, got {v!r}")
    for key in ("healthy_after_load", "drained_clean", "stats_ok"):
        if not isinstance(doc.get(key), bool):
            fail(f"{path}: {key} must be a bool")
    v = doc.get("postmortems")
    if not isinstance(v, int) or v < 0:
        fail(f"{path}: postmortems must be a non-negative int, got {v!r}")
    latency = doc.get("latency_ms")
    if not isinstance(latency, dict):
        fail(f"{path}: latency_ms missing or not an object")
    for key in ("p50", "p90", "p99"):
        v = latency.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{path}: latency_ms.{key} must be a non-negative"
                 f" number, got {v!r}")
    if latency["p50"] > latency["p90"] or latency["p90"] > latency["p99"]:
        fail(f"{path}: latency percentiles are not monotonic")
    if doc["ok"] + doc["bug"] + doc["error_frames"] != \
            doc["structured_replies"]:
        fail(f"{path}: ok + bug + error_frames !="
             f" structured_replies ({doc['structured_replies']})")
    return doc


def cmd_service(args):
    doc = load_service(args.file)
    print(f"{args.file}: ok ({doc['jobs_total']} jobs,"
          f" {doc['clients']} clients, {doc['structured_replies']}"
          f" structured, {doc['error_frames']} error frames,"
          f" {doc['jobs_per_sec']:.1f} jobs/s,"
          f" p99 {doc['latency_ms']['p99']:.1f} ms)")
    if doc["daemon_deaths"] != 0:
        fail(f"{args.file}: {doc['daemon_deaths']} daemon death(s) —"
             " an injected fault escaped its job isolation")
    if doc["structured_replies"] + doc["transport_failures"] != \
            doc["jobs_total"]:
        fail(f"{args.file}: accounting hole —"
             f" {doc['structured_replies']} structured +"
             f" {doc['transport_failures']} transport !="
             f" {doc['jobs_total']} jobs")
    if doc["transport_failures"] != 0:
        fail(f"{args.file}: {doc['transport_failures']} job(s) never"
             " received a structured reply — every failure must degrade"
             " into an answered error, not silence")
    if not doc["healthy_after_load"]:
        fail(f"{args.file}: daemon did not answer a health probe after"
             " the load")
    if not doc["drained_clean"]:
        fail(f"{args.file}: drain did not complete cleanly")
    if not doc["stats_ok"]:
        fail(f"{args.file}: the mid-load stats scrape failed — the"
             " daemon must answer statsRequest frames under load")
    if doc["postmortems"] < args.min_postmortems:
        fail(f"{args.file}: only {doc['postmortems']} postmortem(s),"
             f" floor is {args.min_postmortems}")
    if doc["jobs_total"] < args.min_jobs:
        fail(f"{args.file}: only {doc['jobs_total']} jobs, floor is"
             f" {args.min_jobs}")
    if doc["jobs_per_sec"] < args.min_rate:
        fail(f"{args.file}: throughput {doc['jobs_per_sec']:.1f} jobs/s"
             f" below floor {args.min_rate}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate")
    p_validate.add_argument("files", nargs="+")
    p_validate.set_defaults(func=cmd_validate)
    p_gate = sub.add_parser("gate")
    p_gate.add_argument("on")
    p_gate.add_argument("off")
    p_gate.add_argument("--benches", required=True,
                        help="comma-separated bench names to compare")
    p_gate.add_argument("--min-geomean", type=float, default=1.2)
    p_gate.set_defaults(func=cmd_gate)
    p_tier3 = sub.add_parser("tier3")
    p_tier3.add_argument("file")
    p_tier3.add_argument("--benches", default=TIER3_DEFAULT_BENCHES,
                         help="comma-separated bench names to gate on")
    p_tier3.add_argument("--min-geomean", type=float, default=1.4)
    p_tier3.set_defaults(func=cmd_tier3)
    p_analysis = sub.add_parser("analysis")
    p_analysis.add_argument("file")
    p_analysis.add_argument("--min-recall", type=float, default=0.95)
    p_analysis.add_argument("--min-definite-recall", type=float,
                            default=0.90)
    p_analysis.add_argument("--require-scaling", action="store_true",
                            help="fail if the report has no program-size"
                                 " scaling curve")
    p_analysis.add_argument("--max-scaling-blowup", type=float,
                            default=25.0,
                            help="ceiling on per-function analysis-time"
                                 " growth across the scaling curve")
    p_analysis.add_argument("--fewer-maybes-than", metavar="OTHER",
                            help="fail unless this report has strictly"
                                 " fewer maybe findings than OTHER"
                                 " (ablation comparison)")
    p_analysis.set_defaults(func=cmd_analysis)
    p_obs = sub.add_parser("obs")
    p_obs.add_argument("metrics", nargs="?")
    p_obs.add_argument("--trace", help="Chrome trace-event file to check")
    p_obs.add_argument("--expo",
                       help="Prometheus text exposition to check")
    p_obs.add_argument("--require", nargs="*", default=[],
                       help="counters that must be nonzero;"
                            " 'a|b' accepts either")
    p_obs.set_defaults(func=cmd_obs)
    p_overhead = sub.add_parser("overhead")
    p_overhead.add_argument("--base", nargs="+", required=True,
                            help="MS_OBS=OFF baseline bench JSON,"
                                 " one file per round")
    p_overhead.add_argument("--with", dest="with_obs", nargs="+",
                            required=True,
                            help="default-build (hooks compiled in,"
                                 " disabled) bench JSON, paired by round")
    p_overhead.add_argument("--benches", required=True,
                            help="comma-separated bench names to compare")
    p_overhead.add_argument("--max-ratio", type=float, default=1.02)
    p_overhead.set_defaults(func=cmd_overhead)
    p_fuzz = sub.add_parser("fuzz")
    p_fuzz.add_argument("file")
    p_fuzz.add_argument("--min-programs", type=int, default=1,
                        help="fail if the campaign ran fewer programs")
    p_fuzz.add_argument("--min-rate", type=float, default=0.0,
                        help="fail below this programs/s throughput")
    p_fuzz.set_defaults(func=cmd_fuzz)
    p_service = sub.add_parser("service")
    p_service.add_argument("file")
    p_service.add_argument("--min-jobs", type=int, default=1,
                           help="fail if the load ran fewer jobs")
    p_service.add_argument("--min-rate", type=float, default=0.0,
                           help="fail below this jobs/s throughput")
    p_service.add_argument("--min-postmortems", type=int, default=0,
                           help="fail if fewer postmortem documents"
                                " were produced")
    p_service.set_defaults(func=cmd_service)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
