# Empty dependencies file for ms_study.
# This may be replaced when dependencies are built.
