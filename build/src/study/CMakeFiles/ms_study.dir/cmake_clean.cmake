file(REMOVE_RECURSE
  "CMakeFiles/ms_study.dir/classifier.cc.o"
  "CMakeFiles/ms_study.dir/classifier.cc.o.d"
  "CMakeFiles/ms_study.dir/records.cc.o"
  "CMakeFiles/ms_study.dir/records.cc.o.d"
  "libms_study.a"
  "libms_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
