
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/classifier.cc" "src/study/CMakeFiles/ms_study.dir/classifier.cc.o" "gcc" "src/study/CMakeFiles/ms_study.dir/classifier.cc.o.d"
  "/root/repo/src/study/records.cc" "src/study/CMakeFiles/ms_study.dir/records.cc.o" "gcc" "src/study/CMakeFiles/ms_study.dir/records.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
