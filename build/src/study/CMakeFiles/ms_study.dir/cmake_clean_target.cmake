file(REMOVE_RECURSE
  "libms_study.a"
)
