file(REMOVE_RECURSE
  "CMakeFiles/ms_managed.dir/globals.cc.o"
  "CMakeFiles/ms_managed.dir/globals.cc.o.d"
  "CMakeFiles/ms_managed.dir/heap.cc.o"
  "CMakeFiles/ms_managed.dir/heap.cc.o.d"
  "CMakeFiles/ms_managed.dir/object.cc.o"
  "CMakeFiles/ms_managed.dir/object.cc.o.d"
  "libms_managed.a"
  "libms_managed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_managed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
