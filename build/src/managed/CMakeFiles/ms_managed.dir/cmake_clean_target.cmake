file(REMOVE_RECURSE
  "libms_managed.a"
)
