# Empty compiler generated dependencies file for ms_managed.
# This may be replaced when dependencies are built.
