file(REMOVE_RECURSE
  "libms_interp.a"
)
