# Empty compiler generated dependencies file for ms_interp.
# This may be replaced when dependencies are built.
