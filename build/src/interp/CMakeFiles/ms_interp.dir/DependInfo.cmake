
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/managed_engine.cc" "src/interp/CMakeFiles/ms_interp.dir/managed_engine.cc.o" "gcc" "src/interp/CMakeFiles/ms_interp.dir/managed_engine.cc.o.d"
  "/root/repo/src/interp/tier2.cc" "src/interp/CMakeFiles/ms_interp.dir/tier2.cc.o" "gcc" "src/interp/CMakeFiles/ms_interp.dir/tier2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/managed/CMakeFiles/ms_managed.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
