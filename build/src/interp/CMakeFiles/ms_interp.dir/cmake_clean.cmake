file(REMOVE_RECURSE
  "CMakeFiles/ms_interp.dir/managed_engine.cc.o"
  "CMakeFiles/ms_interp.dir/managed_engine.cc.o.d"
  "CMakeFiles/ms_interp.dir/tier2.cc.o"
  "CMakeFiles/ms_interp.dir/tier2.cc.o.d"
  "libms_interp.a"
  "libms_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
