file(REMOVE_RECURSE
  "libms_native.a"
)
