
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/native/memory.cc" "src/native/CMakeFiles/ms_native.dir/memory.cc.o" "gcc" "src/native/CMakeFiles/ms_native.dir/memory.cc.o.d"
  "/root/repo/src/native/native_engine.cc" "src/native/CMakeFiles/ms_native.dir/native_engine.cc.o" "gcc" "src/native/CMakeFiles/ms_native.dir/native_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/managed/CMakeFiles/ms_managed.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
