# Empty dependencies file for ms_native.
# This may be replaced when dependencies are built.
