file(REMOVE_RECURSE
  "CMakeFiles/ms_native.dir/memory.cc.o"
  "CMakeFiles/ms_native.dir/memory.cc.o.d"
  "CMakeFiles/ms_native.dir/native_engine.cc.o"
  "CMakeFiles/ms_native.dir/native_engine.cc.o.d"
  "libms_native.a"
  "libms_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
