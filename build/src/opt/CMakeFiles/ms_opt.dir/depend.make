# Empty dependencies file for ms_opt.
# This may be replaced when dependencies are built.
