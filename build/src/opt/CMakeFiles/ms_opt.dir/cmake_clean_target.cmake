file(REMOVE_RECURSE
  "libms_opt.a"
)
