
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cleanup.cc" "src/opt/CMakeFiles/ms_opt.dir/cleanup.cc.o" "gcc" "src/opt/CMakeFiles/ms_opt.dir/cleanup.cc.o.d"
  "/root/repo/src/opt/fold.cc" "src/opt/CMakeFiles/ms_opt.dir/fold.cc.o" "gcc" "src/opt/CMakeFiles/ms_opt.dir/fold.cc.o.d"
  "/root/repo/src/opt/memory_opts.cc" "src/opt/CMakeFiles/ms_opt.dir/memory_opts.cc.o" "gcc" "src/opt/CMakeFiles/ms_opt.dir/memory_opts.cc.o.d"
  "/root/repo/src/opt/ub_opts.cc" "src/opt/CMakeFiles/ms_opt.dir/ub_opts.cc.o" "gcc" "src/opt/CMakeFiles/ms_opt.dir/ub_opts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
