file(REMOVE_RECURSE
  "CMakeFiles/ms_opt.dir/cleanup.cc.o"
  "CMakeFiles/ms_opt.dir/cleanup.cc.o.d"
  "CMakeFiles/ms_opt.dir/fold.cc.o"
  "CMakeFiles/ms_opt.dir/fold.cc.o.d"
  "CMakeFiles/ms_opt.dir/memory_opts.cc.o"
  "CMakeFiles/ms_opt.dir/memory_opts.cc.o.d"
  "CMakeFiles/ms_opt.dir/ub_opts.cc.o"
  "CMakeFiles/ms_opt.dir/ub_opts.cc.o.d"
  "libms_opt.a"
  "libms_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
