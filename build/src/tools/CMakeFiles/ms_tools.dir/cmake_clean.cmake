file(REMOVE_RECURSE
  "CMakeFiles/ms_tools.dir/benchmark_programs.cc.o"
  "CMakeFiles/ms_tools.dir/benchmark_programs.cc.o.d"
  "CMakeFiles/ms_tools.dir/driver.cc.o"
  "CMakeFiles/ms_tools.dir/driver.cc.o.d"
  "libms_tools.a"
  "libms_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
