# Empty compiler generated dependencies file for ms_tools.
# This may be replaced when dependencies are built.
