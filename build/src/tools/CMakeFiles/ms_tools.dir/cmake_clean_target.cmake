file(REMOVE_RECURSE
  "libms_tools.a"
)
