file(REMOVE_RECURSE
  "libms_ir.a"
)
