file(REMOVE_RECURSE
  "CMakeFiles/ms_ir.dir/builder.cc.o"
  "CMakeFiles/ms_ir.dir/builder.cc.o.d"
  "CMakeFiles/ms_ir.dir/module.cc.o"
  "CMakeFiles/ms_ir.dir/module.cc.o.d"
  "CMakeFiles/ms_ir.dir/parser.cc.o"
  "CMakeFiles/ms_ir.dir/parser.cc.o.d"
  "CMakeFiles/ms_ir.dir/printer.cc.o"
  "CMakeFiles/ms_ir.dir/printer.cc.o.d"
  "CMakeFiles/ms_ir.dir/type.cc.o"
  "CMakeFiles/ms_ir.dir/type.cc.o.d"
  "CMakeFiles/ms_ir.dir/verifier.cc.o"
  "CMakeFiles/ms_ir.dir/verifier.cc.o.d"
  "libms_ir.a"
  "libms_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
