# Empty compiler generated dependencies file for ms_ir.
# This may be replaced when dependencies are built.
