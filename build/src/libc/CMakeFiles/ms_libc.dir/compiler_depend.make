# Empty compiler generated dependencies file for ms_libc.
# This may be replaced when dependencies are built.
