file(REMOVE_RECURSE
  "CMakeFiles/ms_libc.dir/libc_sources.cc.o"
  "CMakeFiles/ms_libc.dir/libc_sources.cc.o.d"
  "libms_libc.a"
  "libms_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
