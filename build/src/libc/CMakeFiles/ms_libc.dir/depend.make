# Empty dependencies file for ms_libc.
# This may be replaced when dependencies are built.
