
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libc/libc_sources.cc" "src/libc/CMakeFiles/ms_libc.dir/libc_sources.cc.o" "gcc" "src/libc/CMakeFiles/ms_libc.dir/libc_sources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ms_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
