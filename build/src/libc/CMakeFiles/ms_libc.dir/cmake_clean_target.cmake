file(REMOVE_RECURSE
  "libms_libc.a"
)
