# Empty compiler generated dependencies file for ms_frontend.
# This may be replaced when dependencies are built.
