file(REMOVE_RECURSE
  "CMakeFiles/ms_frontend.dir/codegen.cc.o"
  "CMakeFiles/ms_frontend.dir/codegen.cc.o.d"
  "CMakeFiles/ms_frontend.dir/compiler.cc.o"
  "CMakeFiles/ms_frontend.dir/compiler.cc.o.d"
  "CMakeFiles/ms_frontend.dir/ctype.cc.o"
  "CMakeFiles/ms_frontend.dir/ctype.cc.o.d"
  "CMakeFiles/ms_frontend.dir/lexer.cc.o"
  "CMakeFiles/ms_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/ms_frontend.dir/parser.cc.o"
  "CMakeFiles/ms_frontend.dir/parser.cc.o.d"
  "libms_frontend.a"
  "libms_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
