file(REMOVE_RECURSE
  "libms_frontend.a"
)
