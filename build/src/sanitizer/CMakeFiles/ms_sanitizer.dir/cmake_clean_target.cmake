file(REMOVE_RECURSE
  "libms_sanitizer.a"
)
