file(REMOVE_RECURSE
  "CMakeFiles/ms_sanitizer.dir/asan_pass.cc.o"
  "CMakeFiles/ms_sanitizer.dir/asan_pass.cc.o.d"
  "CMakeFiles/ms_sanitizer.dir/asan_runtime.cc.o"
  "CMakeFiles/ms_sanitizer.dir/asan_runtime.cc.o.d"
  "libms_sanitizer.a"
  "libms_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
