
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitizer/asan_pass.cc" "src/sanitizer/CMakeFiles/ms_sanitizer.dir/asan_pass.cc.o" "gcc" "src/sanitizer/CMakeFiles/ms_sanitizer.dir/asan_pass.cc.o.d"
  "/root/repo/src/sanitizer/asan_runtime.cc" "src/sanitizer/CMakeFiles/ms_sanitizer.dir/asan_runtime.cc.o" "gcc" "src/sanitizer/CMakeFiles/ms_sanitizer.dir/asan_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/native/CMakeFiles/ms_native.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/managed/CMakeFiles/ms_managed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
