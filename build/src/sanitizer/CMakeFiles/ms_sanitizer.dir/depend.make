# Empty dependencies file for ms_sanitizer.
# This may be replaced when dependencies are built.
