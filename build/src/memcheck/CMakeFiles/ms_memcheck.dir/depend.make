# Empty dependencies file for ms_memcheck.
# This may be replaced when dependencies are built.
