file(REMOVE_RECURSE
  "CMakeFiles/ms_memcheck.dir/memcheck_runtime.cc.o"
  "CMakeFiles/ms_memcheck.dir/memcheck_runtime.cc.o.d"
  "libms_memcheck.a"
  "libms_memcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_memcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
