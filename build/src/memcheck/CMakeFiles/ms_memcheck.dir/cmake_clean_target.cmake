file(REMOVE_RECURSE
  "libms_memcheck.a"
)
