# Empty compiler generated dependencies file for ms_corpus.
# This may be replaced when dependencies are built.
