file(REMOVE_RECURSE
  "CMakeFiles/ms_corpus.dir/corpus_global.cc.o"
  "CMakeFiles/ms_corpus.dir/corpus_global.cc.o.d"
  "CMakeFiles/ms_corpus.dir/corpus_heap.cc.o"
  "CMakeFiles/ms_corpus.dir/corpus_heap.cc.o.d"
  "CMakeFiles/ms_corpus.dir/corpus_other.cc.o"
  "CMakeFiles/ms_corpus.dir/corpus_other.cc.o.d"
  "CMakeFiles/ms_corpus.dir/corpus_stack.cc.o"
  "CMakeFiles/ms_corpus.dir/corpus_stack.cc.o.d"
  "CMakeFiles/ms_corpus.dir/harness.cc.o"
  "CMakeFiles/ms_corpus.dir/harness.cc.o.d"
  "libms_corpus.a"
  "libms_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
