file(REMOVE_RECURSE
  "libms_corpus.a"
)
