file(REMOVE_RECURSE
  "libms_support.a"
)
