file(REMOVE_RECURSE
  "CMakeFiles/ms_support.dir/diagnostics.cc.o"
  "CMakeFiles/ms_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/ms_support.dir/error.cc.o"
  "CMakeFiles/ms_support.dir/error.cc.o.d"
  "CMakeFiles/ms_support.dir/stats.cc.o"
  "CMakeFiles/ms_support.dir/stats.cc.o.d"
  "CMakeFiles/ms_support.dir/string_utils.cc.o"
  "CMakeFiles/ms_support.dir/string_utils.cc.o.d"
  "libms_support.a"
  "libms_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
