# Empty dependencies file for ms_support.
# This may be replaced when dependencies are built.
