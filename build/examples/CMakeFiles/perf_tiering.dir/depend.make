# Empty dependencies file for perf_tiering.
# This may be replaced when dependencies are built.
