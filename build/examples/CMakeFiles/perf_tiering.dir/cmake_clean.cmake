file(REMOVE_RECURSE
  "CMakeFiles/perf_tiering.dir/perf_tiering.cpp.o"
  "CMakeFiles/perf_tiering.dir/perf_tiering.cpp.o.d"
  "perf_tiering"
  "perf_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
