# Empty compiler generated dependencies file for cve_trends.
# This may be replaced when dependencies are built.
