file(REMOVE_RECURSE
  "CMakeFiles/cve_trends.dir/cve_trends.cpp.o"
  "CMakeFiles/cve_trends.dir/cve_trends.cpp.o.d"
  "cve_trends"
  "cve_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
