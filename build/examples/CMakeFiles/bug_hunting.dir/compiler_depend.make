# Empty compiler generated dependencies file for bug_hunting.
# This may be replaced when dependencies are built.
