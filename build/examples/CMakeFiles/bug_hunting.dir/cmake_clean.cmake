file(REMOVE_RECURSE
  "CMakeFiles/bug_hunting.dir/bug_hunting.cpp.o"
  "CMakeFiles/bug_hunting.dir/bug_hunting.cpp.o.d"
  "bug_hunting"
  "bug_hunting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_hunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
