# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bug_hunting "/root/repo/build/examples/bug_hunting")
set_tests_properties(example_bug_hunting PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perf_tiering "/root/repo/build/examples/perf_tiering")
set_tests_properties(example_perf_tiering PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cve_trends "/root/repo/build/examples/cve_trends")
set_tests_properties(example_cve_trends PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
