# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/ir_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/managed_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/native_test[1]_include.cmake")
include("/root/repo/build/tests/sanitizer_test[1]_include.cmake")
include("/root/repo/build/tests/memcheck_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/libc_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
