# Empty dependencies file for bench_fig1_fig2_cve_study.
# This may be replaced when dependencies are built.
