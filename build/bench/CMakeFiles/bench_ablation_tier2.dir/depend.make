# Empty dependencies file for bench_ablation_tier2.
# This may be replaced when dependencies are built.
