file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fig13_optimized_away.dir/bench_fig3_fig13_optimized_away.cc.o"
  "CMakeFiles/bench_fig3_fig13_optimized_away.dir/bench_fig3_fig13_optimized_away.cc.o.d"
  "bench_fig3_fig13_optimized_away"
  "bench_fig3_fig13_optimized_away.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig13_optimized_away.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
