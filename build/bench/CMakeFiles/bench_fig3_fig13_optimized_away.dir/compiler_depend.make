# Empty compiler generated dependencies file for bench_fig3_fig13_optimized_away.
# This may be replaced when dependencies are built.
