# Empty dependencies file for bench_fig15_warmup.
# This may be replaced when dependencies are built.
