file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_warmup.dir/bench_fig15_warmup.cc.o"
  "CMakeFiles/bench_fig15_warmup.dir/bench_fig15_warmup.cc.o.d"
  "bench_fig15_warmup"
  "bench_fig15_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
