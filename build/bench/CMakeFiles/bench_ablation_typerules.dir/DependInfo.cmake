
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_typerules.cc" "bench/CMakeFiles/bench_ablation_typerules.dir/bench_ablation_typerules.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_typerules.dir/bench_ablation_typerules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/ms_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/ms_study.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/ms_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ms_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/libc/CMakeFiles/ms_libc.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ms_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/memcheck/CMakeFiles/ms_memcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ms_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitizer/CMakeFiles/ms_sanitizer.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/ms_native.dir/DependInfo.cmake"
  "/root/repo/build/src/managed/CMakeFiles/ms_managed.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
