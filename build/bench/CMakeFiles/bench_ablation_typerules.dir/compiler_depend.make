# Empty compiler generated dependencies file for bench_ablation_typerules.
# This may be replaced when dependencies are built.
