file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_typerules.dir/bench_ablation_typerules.cc.o"
  "CMakeFiles/bench_ablation_typerules.dir/bench_ablation_typerules.cc.o.d"
  "bench_ablation_typerules"
  "bench_ablation_typerules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_typerules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
