/**
 * @file
 * Per-job flight recorder: a fixed-size ring of the last N events a
 * job's execution emitted (attempts, compile, analysis, fault-site
 * firings, watchdog activity). The ring is cheap to keep for every job
 * and is simply dropped when the job succeeds; when a job dies — chaos
 * fault, watchdog cancellation, resource limit, detected bug — the ring
 * is serialized into a structured `msulong.postmortem/v1` document so
 * the job's last moments survive it.
 *
 * Recording is NOT gated on the global metrics switch: a recorder only
 * exists when the owner (the service) explicitly created one, and the
 * whole object is out-of-band with respect to `msulong.result/v1`.
 */

#ifndef MS_OBS_FLIGHTREC_H
#define MS_OBS_FLIGHTREC_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sulong::obs
{

class FlightRecorder
{
  public:
    struct Event
    {
        uint64_t seq = 0;  ///< Monotonic per-recorder sequence number.
        uint64_t tsNs = 0; ///< Trace-collector clock at note() time.
        std::string name;
        std::string detail;
    };

    static constexpr size_t kDefaultCapacity = 64;

    explicit FlightRecorder(size_t capacity = kDefaultCapacity);

    /** Append an event, evicting the oldest when the ring is full. */
    void note(std::string name, std::string detail = "");

    /** Surviving events, oldest first. */
    std::vector<Event> events() const;

    /** Total events ever noted (>= events().size() once wrapped). */
    uint64_t recorded() const;

    size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mutex_;
    std::vector<Event> ring_;
    size_t capacity_;
    size_t next_ = 0;    ///< Write cursor once the ring is full.
    uint64_t seq_ = 0;
};

/** Everything a postmortem says about the job beyond the event ring. */
struct PostmortemInfo
{
    uint64_t jobId = 0;
    std::string tenant;
    std::string tool;
    std::string traceId;     ///< "" when the job was untraced.
    std::string termination; ///< Why the job died (taxonomy string).
    std::string terminationDetail;
    std::string bugKind;     ///< "" unless a bug was detected.
    uint64_t attempts = 0;
    uint64_t faultFirings = 0; ///< Chaos fault sites that fired.
};

/**
 * Serialize @p info plus @p recorder's surviving events as a
 * `msulong.postmortem/v1` JSON document (single line, validated
 * structure — every string is escaped).
 */
std::string postmortemJson(const PostmortemInfo &info,
                           const FlightRecorder &recorder);

} // namespace sulong::obs

#endif // MS_OBS_FLIGHTREC_H
