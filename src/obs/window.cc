#include "obs/window.h"

namespace sulong::obs
{

SlidingWindow::SlidingWindow(size_t bucket_count, uint64_t bucket_width_ms)
    : buckets_(bucket_count == 0 ? 1 : bucket_count),
      width_(bucket_width_ms == 0 ? 1 : bucket_width_ms)
{
}

void
SlidingWindow::record(uint64_t now_ms, uint64_t n)
{
    uint64_t epoch = now_ms / width_;
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &bucket = buckets_[epoch % buckets_.size()];
    if (bucket.epoch != epoch) {
        bucket.epoch = epoch;
        bucket.count = 0;
    }
    bucket.count += n;
}

uint64_t
SlidingWindow::sumLocked(uint64_t now_ms) const
{
    uint64_t epoch = now_ms / width_;
    uint64_t oldest = epoch >= buckets_.size() - 1
        ? epoch - (buckets_.size() - 1)
        : 0;
    uint64_t total = 0;
    for (const Bucket &bucket : buckets_) {
        if (bucket.epoch >= oldest && bucket.epoch <= epoch)
            total += bucket.count;
    }
    return total;
}

uint64_t
SlidingWindow::totalInWindow(uint64_t now_ms) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sumLocked(now_ms);
}

double
SlidingWindow::ratePerSec(uint64_t now_ms) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = sumLocked(now_ms);
    double window_sec = static_cast<double>(windowMs()) / 1000.0;
    return window_sec > 0 ? static_cast<double>(total) / window_sec : 0;
}

} // namespace sulong::obs
