/**
 * @file
 * Lock-free metrics registry: named Counters, Gauges, and log-scale
 * Histograms usable from hot interpreter paths.
 *
 * Design:
 *  - Every metric is registered once by name in a global (or
 *    test-private) MetricsRegistry and lives at a stable address for the
 *    life of the registry, so hot code caches the handle and never
 *    touches the registry mutex again.
 *  - Counter increments are striped: each counter owns a small array of
 *    cache-line-sized cells and a thread picks its cell by a sticky
 *    thread index, so concurrent writers (batch workers) almost never
 *    share a cache line. Increments are relaxed atomic fetch_adds —
 *    no locks anywhere on the write path. Reads merge the stripes
 *    (merge-on-read), which makes totals exact and, because addition
 *    commutes, identical for any thread count or schedule.
 *  - Histograms use fixed log2 buckets (bucket k counts values in
 *    [2^(k-1), 2^k - 1], bucket 0 counts zeros), so bucket boundaries
 *    are schema constants, not per-run state.
 *  - Everything is gated on one relaxed-atomic enabled flag; with the
 *    MS_OBS_DISABLED compile definition the flag is constant-false and
 *    the hooks compile to nothing (the no-hooks baseline build the CI
 *    overhead gate compares against).
 */

#ifndef MS_OBS_METRICS_H
#define MS_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sulong::obs
{

/// Compile-time master switch (see MS_OBS in CMakeLists.txt).
#ifdef MS_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

namespace detail
{
inline std::atomic<bool> g_metricsEnabled{false};
inline std::atomic<bool> g_tracingEnabled{false};

/** Sticky per-thread stripe index (assigned on first use). */
unsigned threadStripe();
} // namespace detail

/** One relaxed-atomic load: the only cost of a disabled hook. */
inline bool
metricsEnabled()
{
    return kObsCompiledIn &&
        detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

inline bool
tracingEnabled()
{
    return kObsCompiledIn &&
        detail::g_tracingEnabled.load(std::memory_order_relaxed);
}

void setMetricsEnabled(bool enabled);
void setTracingEnabled(bool enabled);

/** Monotonic counter, striped across threads; see file comment. */
class Counter
{
  public:
    static constexpr unsigned kStripes = 16;

    explicit Counter(std::string name) : name_(std::move(name)) {}
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    inc(uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        cells_[detail::threadStripe() % kStripes].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merge-on-read: exact sum over the stripes. */
    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Cell &cell : cells_)
            total += cell.v.load(std::memory_order_relaxed);
        return total;
    }

    const std::string &name() const { return name_; }

    void
    reset()
    {
        for (Cell &cell : cells_)
            cell.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Cell
    {
        std::atomic<uint64_t> v{0};
    };

    std::string name_;
    std::array<Cell, kStripes> cells_;
};

/** Last-writer-wins signed value (set/add). */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(int64_t v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        if (metricsEnabled())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }
    const std::string &name() const { return name_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<int64_t> value_{0};
};

/** Snapshot of one histogram; only non-empty buckets are materialized. */
struct HistogramSnapshot
{
    struct Bucket
    {
        uint64_t lo = 0;
        uint64_t hi = 0;
        uint64_t count = 0;
    };

    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<Bucket> buckets;

    /**
     * Quantile estimate from the materialized buckets: find the bucket
     * where the cumulative count crosses q*count and interpolate
     * linearly inside its inclusive [lo, hi] value range. Exact when
     * the bucket is a single value (0 and 1 have their own buckets);
     * never off by more than one bucket width otherwise.
     * @param q in [0, 1]; returns 0 for an empty snapshot.
     */
    uint64_t percentile(double q) const;
};

/** Fixed log2-bucket histogram (65 buckets cover all of uint64). */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    explicit Histogram(std::string name) : name_(std::move(name)) {}
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Bucket index of @p v: 0 for 0, else 1 + floor(log2(v)). */
    static unsigned
    bucketIndex(uint64_t v)
    {
        return static_cast<unsigned>(std::bit_width(v));
    }

    /** Inclusive [lower, upper] value range of bucket @p index. */
    static uint64_t
    bucketLowerBound(unsigned index)
    {
        return index == 0 ? 0 : uint64_t{1} << (index - 1);
    }
    static uint64_t
    bucketUpperBound(unsigned index)
    {
        if (index == 0)
            return 0;
        if (index >= 64)
            return ~uint64_t{0};
        return (uint64_t{1} << index) - 1;
    }

    void
    record(uint64_t v)
    {
        if (!metricsEnabled())
            return;
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;
    const std::string &name() const { return name_; }
    void reset();

  private:
    std::string name_;
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time view of every non-zero metric, keyed by name. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/**
 * Name -> metric table. Registration (first lookup of a name) takes a
 * mutex; the returned references are stable for the registry's lifetime,
 * so hot paths resolve once and then run lock-free.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every subsystem reports into. */
    static MetricsRegistry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Zero-valued metrics are skipped (registration is not data). */
    MetricsSnapshot snapshot() const;

    /** Zero every metric; registered names and handles stay valid. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Counter *, std::less<>> counters_;
    std::map<std::string, Gauge *, std::less<>> gauges_;
    std::map<std::string, Histogram *, std::less<>> histograms_;
    // Deques never relocate elements: handles stay stable as the
    // registry grows.
    std::deque<Counter> counterStore_;
    std::deque<Gauge> gaugeStore_;
    std::deque<Histogram> histogramStore_;
};

} // namespace sulong::obs

#endif // MS_OBS_METRICS_H
