/**
 * @file
 * Per-thread ring-buffer span tracer with steady-clock timestamps.
 *
 * Spans are recorded with the MS_TRACE_SPAN macro (RAII: the guard's
 * destructor stamps the duration) and instants with traceInstant().
 * Each thread appends into its own fixed-capacity ring buffer behind a
 * per-thread mutex that only the drain ever contends on, so the hot
 * path is an uncontended lock plus a vector write. When a ring fills,
 * the oldest events are overwritten and counted as dropped — tracing
 * never allocates unboundedly or blocks the traced workload.
 *
 * The collector keeps a shared_ptr to every thread's buffer, so events
 * from threads that have already exited (batch workers) remain
 * drainable. drain() merges all buffers sorted by (start, -duration),
 * which puts parent spans before their children as Chrome's
 * trace-event viewers expect.
 */

#ifndef MS_OBS_TRACE_H
#define MS_OBS_TRACE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sulong::obs
{

struct TraceEvent
{
    std::string name;
    std::string detail;  ///< Optional free-form argument ("" = none).
    char phase = 'X';    ///< 'X' = complete span, 'i' = instant.
    uint64_t tid = 0;    ///< Dense per-thread id (same as stripe index).
    uint64_t tsNs = 0;   ///< Steady-clock start, ns since first use.
    uint64_t durNs = 0;  ///< Span duration (0 for instants).
    uint32_t pid = 1;    ///< Trace-viewer process lane (client merge).
    std::string traceId; ///< 32-hex distributed trace ("" = untraced).
    uint64_t spanId = 0; ///< This span's id (0 = untraced).
    uint64_t parentSpan = 0; ///< Enclosing span's id (0 = root).
};

/**
 * Cross-process trace identity carried by the thread that runs a traced
 * request. While a TraceContextScope is active on a thread, every span
 * that thread opens joins the trace: it mints its own span id, records
 * the enclosing span (initially the remote parent) as its parent, and
 * becomes the parent of spans nested inside it. Without a scope, spans
 * record no trace identity — tracing output is unchanged for local runs.
 */
struct TraceContext
{
    std::string traceId; ///< 32 lowercase hex chars.
    uint64_t spanId = 0; ///< Current (parent-to-be) span id.

    bool active() const { return !traceId.empty(); }
};

/** The calling thread's current context (inactive when none set). */
const TraceContext &currentTraceContext();

/** Mint a fresh 128-bit trace id as 32 lowercase hex chars. */
std::string mintTraceId();

/** Mint a process-unique nonzero span id. */
uint64_t mintSpanId();

/** Span id as 16 lowercase hex chars (the wire form). */
std::string spanIdToHex(uint64_t id);

/** Parse a 1..16-char hex span id; false on bad input. */
bool parseSpanIdHex(std::string_view hex, uint64_t *out);

/** @return true when @p s is entirely [0-9a-f] (and non-empty). */
bool isLowerHex(std::string_view s);

/** RAII: install @p context on this thread, restore on destruction. */
class TraceContextScope
{
  public:
    explicit TraceContextScope(TraceContext context);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext saved_;
};

namespace detail
{
/** Mutable access for SpanGuard's push/pop (internal). */
TraceContext &mutableTraceContext();
} // namespace detail

class TraceCollector
{
  public:
    static constexpr size_t kDefaultCapacityPerThread = 65536;

    static TraceCollector &global();

    /** Record a finished span or instant into this thread's ring. */
    void record(TraceEvent event);

    /**
     * Merge every thread's ring, sorted by (tsNs, -durNs).
     * @param clear also empty the rings and zero the dropped count.
     */
    std::vector<TraceEvent> drain(bool clear = true);

    /** Events overwritten because a ring was full. */
    uint64_t dropped() const;

    /** Applies to rings created after the call (test hook). */
    void setCapacityPerThread(size_t capacity);

    /** Nanoseconds since the collector's steady-clock epoch. */
    uint64_t nowNs() const;

  private:
    TraceCollector();

    struct ThreadBuf
    {
        std::mutex mutex;
        std::vector<TraceEvent> ring;
        size_t capacity = kDefaultCapacityPerThread;
        size_t next = 0;  ///< Ring write cursor once full.
        uint64_t dropped = 0;
    };

    ThreadBuf &localBuf();

    mutable std::mutex mutex_; ///< Guards buffers_ and capacity_.
    std::vector<std::shared_ptr<ThreadBuf>> buffers_;
    size_t capacity_ = kDefaultCapacityPerThread;
    uint64_t epoch_ = 0; ///< steady_clock time at construction.
};

/** Record a phase='i' instant event (if tracing is on). */
void traceInstant(std::string name, std::string detail = "");

/**
 * RAII span: construction stamps the start, destruction records.
 * When the thread carries an active TraceContext, the span joins the
 * distributed trace (mints a span id, parents under the current span,
 * and is the parent of spans opened inside it).
 */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name, std::string detail = "")
    {
        // An active remote trace context opts this thread in even when
        // local tracing is off: the daemon records spans for traced
        // requests without having to trace every job it runs.
        if (!tracingEnabled() &&
            !(kObsCompiledIn && currentTraceContext().active()))
            return;
        active_ = true;
        name_ = name;
        detail_ = std::move(detail);
        TraceContext &context = detail::mutableTraceContext();
        if (context.active()) {
            traceId_ = context.traceId;
            parentSpan_ = context.spanId;
            spanId_ = mintSpanId();
            context.spanId = spanId_;
        }
        startNs_ = TraceCollector::global().nowNs();
    }

    ~SpanGuard()
    {
        if (!active_)
            return;
        TraceEvent event;
        event.name = name_;
        event.detail = std::move(detail_);
        event.phase = 'X';
        event.tsNs = startNs_;
        event.durNs = TraceCollector::global().nowNs() - startNs_;
        if (spanId_ != 0) {
            event.traceId = std::move(traceId_);
            event.spanId = spanId_;
            event.parentSpan = parentSpan_;
            // Pop: nested spans are closed, the parent is current again.
            detail::mutableTraceContext().spanId = parentSpan_;
        }
        TraceCollector::global().record(std::move(event));
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    bool active_ = false;
    const char *name_ = "";
    std::string detail_;
    std::string traceId_;
    uint64_t spanId_ = 0;
    uint64_t parentSpan_ = 0;
    uint64_t startNs_ = 0;
};

#define MS_OBS_CAT2(a, b) a##b
#define MS_OBS_CAT(a, b) MS_OBS_CAT2(a, b)

/**
 * Open a span covering the rest of the enclosing scope:
 *   MS_TRACE_SPAN("tier2.compile");
 *   MS_TRACE_SPAN("tier2.compile", fn->name());
 */
#define MS_TRACE_SPAN(...) \
    ::sulong::obs::SpanGuard MS_OBS_CAT(msTraceSpan_, __LINE__){__VA_ARGS__}

} // namespace sulong::obs

#endif // MS_OBS_TRACE_H
