/**
 * @file
 * Per-thread ring-buffer span tracer with steady-clock timestamps.
 *
 * Spans are recorded with the MS_TRACE_SPAN macro (RAII: the guard's
 * destructor stamps the duration) and instants with traceInstant().
 * Each thread appends into its own fixed-capacity ring buffer behind a
 * per-thread mutex that only the drain ever contends on, so the hot
 * path is an uncontended lock plus a vector write. When a ring fills,
 * the oldest events are overwritten and counted as dropped — tracing
 * never allocates unboundedly or blocks the traced workload.
 *
 * The collector keeps a shared_ptr to every thread's buffer, so events
 * from threads that have already exited (batch workers) remain
 * drainable. drain() merges all buffers sorted by (start, -duration),
 * which puts parent spans before their children as Chrome's
 * trace-event viewers expect.
 */

#ifndef MS_OBS_TRACE_H
#define MS_OBS_TRACE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sulong::obs
{

struct TraceEvent
{
    std::string name;
    std::string detail; ///< Optional free-form argument ("" = none).
    char phase = 'X';   ///< 'X' = complete span, 'i' = instant.
    uint64_t tid = 0;   ///< Dense per-thread id (same as stripe index).
    uint64_t tsNs = 0;  ///< Steady-clock start, ns since first use.
    uint64_t durNs = 0; ///< Span duration (0 for instants).
};

class TraceCollector
{
  public:
    static constexpr size_t kDefaultCapacityPerThread = 65536;

    static TraceCollector &global();

    /** Record a finished span or instant into this thread's ring. */
    void record(TraceEvent event);

    /**
     * Merge every thread's ring, sorted by (tsNs, -durNs).
     * @param clear also empty the rings and zero the dropped count.
     */
    std::vector<TraceEvent> drain(bool clear = true);

    /** Events overwritten because a ring was full. */
    uint64_t dropped() const;

    /** Applies to rings created after the call (test hook). */
    void setCapacityPerThread(size_t capacity);

    /** Nanoseconds since the collector's steady-clock epoch. */
    uint64_t nowNs() const;

  private:
    TraceCollector();

    struct ThreadBuf
    {
        std::mutex mutex;
        std::vector<TraceEvent> ring;
        size_t capacity = kDefaultCapacityPerThread;
        size_t next = 0;  ///< Ring write cursor once full.
        uint64_t dropped = 0;
    };

    ThreadBuf &localBuf();

    mutable std::mutex mutex_; ///< Guards buffers_ and capacity_.
    std::vector<std::shared_ptr<ThreadBuf>> buffers_;
    size_t capacity_ = kDefaultCapacityPerThread;
    uint64_t epoch_ = 0; ///< steady_clock time at construction.
};

/** Record a phase='i' instant event (if tracing is on). */
void traceInstant(std::string name, std::string detail = "");

/** RAII span: construction stamps the start, destruction records. */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name, std::string detail = "")
    {
        if (!tracingEnabled())
            return;
        active_ = true;
        name_ = name;
        detail_ = std::move(detail);
        startNs_ = TraceCollector::global().nowNs();
    }

    ~SpanGuard()
    {
        if (!active_)
            return;
        TraceEvent event;
        event.name = name_;
        event.detail = std::move(detail_);
        event.phase = 'X';
        event.tsNs = startNs_;
        event.durNs = TraceCollector::global().nowNs() - startNs_;
        TraceCollector::global().record(std::move(event));
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    bool active_ = false;
    const char *name_ = "";
    std::string detail_;
    uint64_t startNs_ = 0;
};

#define MS_OBS_CAT2(a, b) a##b
#define MS_OBS_CAT(a, b) MS_OBS_CAT2(a, b)

/**
 * Open a span covering the rest of the enclosing scope:
 *   MS_TRACE_SPAN("tier2.compile");
 *   MS_TRACE_SPAN("tier2.compile", fn->name());
 */
#define MS_TRACE_SPAN(...) \
    ::sulong::obs::SpanGuard MS_OBS_CAT(msTraceSpan_, __LINE__){__VA_ARGS__}

} // namespace sulong::obs

#endif // MS_OBS_TRACE_H
