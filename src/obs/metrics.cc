#include "obs/metrics.h"

namespace sulong::obs
{

namespace detail
{

unsigned
threadStripe()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::g_metricsEnabled.store(kObsCompiledIn && enabled,
                                   std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    detail::g_tracingEnabled.store(kObsCompiledIn && enabled,
                                   std::memory_order_relaxed);
}

uint64_t
HistogramSnapshot::percentile(double q) const
{
    if (count == 0 || buckets.empty())
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Rank of the target observation, 1-based; q=0 means the minimum.
    double targetRank = q * static_cast<double>(count);
    if (targetRank < 1)
        targetRank = 1;
    uint64_t seen = 0;
    for (const Bucket &bucket : buckets) {
        uint64_t before = seen;
        seen += bucket.count;
        if (static_cast<double>(seen) < targetRank)
            continue;
        // Interpolate by the target's position among this bucket's
        // observations, assuming they spread evenly over [lo, hi].
        double within = (targetRank - static_cast<double>(before)) /
            static_cast<double>(bucket.count);
        double width = static_cast<double>(bucket.hi - bucket.lo);
        return bucket.lo + static_cast<uint64_t>(width * within);
    }
    return buckets.back().hi;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < kBuckets; i++) {
        uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        snap.buckets.push_back(
            {bucketLowerBound(i), bucketUpperBound(i), n});
    }
    return snap;
}

void
Histogram::reset()
{
    for (std::atomic<uint64_t> &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    Counter &c = counterStore_.emplace_back(std::string(name));
    counters_.emplace(c.name(), &c);
    return c;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    Gauge &g = gaugeStore_.emplace_back(std::string(name));
    gauges_.emplace(g.name(), &g);
    return g;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end())
        return *it->second;
    Histogram &h = histogramStore_.emplace_back(std::string(name));
    histograms_.emplace(h.name(), &h);
    return h;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_) {
        uint64_t v = counter->value();
        if (v != 0)
            snap.counters.emplace(name, v);
    }
    for (const auto &[name, gauge] : gauges_) {
        int64_t v = gauge->value();
        if (v != 0)
            snap.gauges.emplace(name, v);
    }
    for (const auto &[name, histogram] : histograms_) {
        HistogramSnapshot h = histogram->snapshot();
        if (h.count != 0)
            snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

} // namespace sulong::obs
