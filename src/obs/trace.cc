#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace sulong::obs
{

namespace
{

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TraceCollector::TraceCollector() : epoch_(steadyNowNs()) {}

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

uint64_t
TraceCollector::nowNs() const
{
    return steadyNowNs() - epoch_;
}

TraceCollector::ThreadBuf &
TraceCollector::localBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [this] {
        auto fresh = std::make_shared<ThreadBuf>();
        std::lock_guard<std::mutex> lock(mutex_);
        fresh->capacity = capacity_;
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buf;
}

void
TraceCollector::record(TraceEvent event)
{
    event.tid = detail::threadStripe();
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.ring.size() < buf.capacity) {
        buf.ring.push_back(std::move(event));
        return;
    }
    // Full: overwrite the oldest entry instead of growing.
    buf.ring[buf.next] = std::move(event);
    buf.next = (buf.next + 1) % buf.capacity;
    buf.dropped++;
}

std::vector<TraceEvent>
TraceCollector::drain(bool clear)
{
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::vector<TraceEvent> events;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        events.insert(events.end(), buf->ring.begin(), buf->ring.end());
        if (clear) {
            buf->ring.clear();
            buf->next = 0;
            buf->dropped = 0;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         return a.durNs > b.durNs;
                     });
    return events;
}

uint64_t
TraceCollector::dropped() const
{
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    uint64_t total = 0;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        total += buf->dropped;
    }
    return total;
}

void
TraceCollector::setCapacityPerThread(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
}

void
traceInstant(std::string name, std::string detail)
{
    if (!tracingEnabled())
        return;
    TraceEvent event;
    event.name = std::move(name);
    event.detail = std::move(detail);
    event.phase = 'i';
    event.tsNs = TraceCollector::global().nowNs();
    TraceCollector::global().record(std::move(event));
}

} // namespace sulong::obs
