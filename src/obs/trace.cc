#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>

namespace sulong::obs
{

namespace
{

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
randomBits()
{
    static std::mutex mutex;
    static std::mt19937_64 rng = [] {
        std::random_device device;
        return std::mt19937_64{(uint64_t{device()} << 32) ^ device()};
    }();
    std::lock_guard<std::mutex> lock(mutex);
    return rng();
}

} // namespace

namespace detail
{

TraceContext &
mutableTraceContext()
{
    thread_local TraceContext context;
    return context;
}

} // namespace detail

const TraceContext &
currentTraceContext()
{
    return detail::mutableTraceContext();
}

std::string
mintTraceId()
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(randomBits()),
                  static_cast<unsigned long long>(randomBits()));
    return buf;
}

uint64_t
mintSpanId()
{
    // Random per-process base so client- and daemon-minted ids almost
    // surely differ; the counter keeps ids unique within the process.
    static const uint64_t base = randomBits();
    static std::atomic<uint64_t> next{1};
    uint64_t id = base + next.fetch_add(1, std::memory_order_relaxed);
    return id == 0 ? 1 : id;
}

std::string
spanIdToHex(uint64_t id)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

bool
isLowerHex(std::string_view s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool digit = c >= '0' && c <= '9';
        bool alpha = c >= 'a' && c <= 'f';
        if (!digit && !alpha)
            return false;
    }
    return true;
}

bool
parseSpanIdHex(std::string_view hex, uint64_t *out)
{
    if (hex.empty() || hex.size() > 16 || !isLowerHex(hex))
        return false;
    uint64_t v = 0;
    for (char c : hex)
        v = (v << 4) | static_cast<uint64_t>(
                           c <= '9' ? c - '0' : c - 'a' + 10);
    *out = v;
    return true;
}

TraceContextScope::TraceContextScope(TraceContext context)
    : saved_(detail::mutableTraceContext())
{
    detail::mutableTraceContext() = std::move(context);
}

TraceContextScope::~TraceContextScope()
{
    detail::mutableTraceContext() = std::move(saved_);
}

TraceCollector::TraceCollector() : epoch_(steadyNowNs()) {}

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

uint64_t
TraceCollector::nowNs() const
{
    return steadyNowNs() - epoch_;
}

TraceCollector::ThreadBuf &
TraceCollector::localBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [this] {
        auto fresh = std::make_shared<ThreadBuf>();
        std::lock_guard<std::mutex> lock(mutex_);
        fresh->capacity = capacity_;
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buf;
}

void
TraceCollector::record(TraceEvent event)
{
    event.tid = detail::threadStripe();
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.ring.size() < buf.capacity) {
        buf.ring.push_back(std::move(event));
        return;
    }
    // Full: overwrite the oldest entry instead of growing.
    buf.ring[buf.next] = std::move(event);
    buf.next = (buf.next + 1) % buf.capacity;
    buf.dropped++;
}

std::vector<TraceEvent>
TraceCollector::drain(bool clear)
{
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::vector<TraceEvent> events;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        events.insert(events.end(), buf->ring.begin(), buf->ring.end());
        if (clear) {
            buf->ring.clear();
            buf->next = 0;
            buf->dropped = 0;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         return a.durNs > b.durNs;
                     });
    return events;
}

uint64_t
TraceCollector::dropped() const
{
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    uint64_t total = 0;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        total += buf->dropped;
    }
    return total;
}

void
TraceCollector::setCapacityPerThread(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
}

void
traceInstant(std::string name, std::string detail)
{
    if (!tracingEnabled() &&
        !(kObsCompiledIn && currentTraceContext().active()))
        return;
    TraceEvent event;
    event.name = std::move(name);
    event.detail = std::move(detail);
    event.phase = 'i';
    event.tsNs = TraceCollector::global().nowNs();
    const TraceContext &context = currentTraceContext();
    if (context.active()) {
        event.traceId = context.traceId;
        event.spanId = mintSpanId();
        event.parentSpan = context.spanId;
    }
    TraceCollector::global().record(std::move(event));
}

} // namespace sulong::obs
