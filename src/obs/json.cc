#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sulong::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char raw : s) {
        // Unsigned, or high bytes sign-extend and mis-format as \uffXX.
        unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        default:
            if (c < 0x20 || c >= 0x7F) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

/**
 * Recursive-descent parser; one grammar serves both the validator
 * (null sink — nothing is built) and parseJson (values built as the
 * productions succeed).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool
    check(std::string *error, JsonValue *sink = nullptr)
    {
        bool ok = value(sink) && (skipWs(), pos_ == text_.size());
        if (!ok && error != nullptr) {
            *error = "invalid JSON at byte " + std::to_string(pos_) +
                (message_.empty() ? "" : ": " + message_);
        }
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    fail(const char *why)
    {
        if (message_.empty())
            message_ = why;
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    /** Append @p code point as UTF-8 (inputs below 0x100 that came in
     *  as \u00XX round-trip to the raw byte jsonEscape encoded). */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool
    string(std::string *decoded = nullptr)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        while (pos_ < text_.size()) {
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                pos_++;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                char e = text_[pos_];
                if (e == 'u') {
                    unsigned code = 0;
                    for (int i = 1; i <= 4; i++) {
                        if (pos_ + i >= text_.size() ||
                            std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])) == 0)
                            return fail("bad \\u escape");
                        char h = text_[pos_ + i];
                        code = code * 16 +
                            static_cast<unsigned>(
                                   h <= '9' ? h - '0'
                                            : (h | 0x20) - 'a' + 10);
                    }
                    pos_ += 4;
                    if (decoded != nullptr) {
                        if (code < 0x100)
                            *decoded += static_cast<char>(code);
                        else
                            appendUtf8(*decoded, code);
                    }
                } else if (e == '"' || e == '\\' || e == '/') {
                    if (decoded != nullptr)
                        *decoded += e;
                } else if (e == 'b' || e == 'f' || e == 'n' || e == 'r' ||
                           e == 't') {
                    if (decoded != nullptr) {
                        const char *from = "bfnrt";
                        const char *to = "\b\f\n\r\t";
                        *decoded += to[std::strchr(from, e) - from];
                    }
                } else {
                    return fail("bad escape");
                }
            } else if (decoded != nullptr) {
                *decoded += static_cast<char>(c);
            }
            pos_++;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *sink)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
            pos_++;
        if (pos_ == start ||
            (pos_ == start + 1 && text_[start] == '-'))
            return fail("expected number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            pos_++;
            size_t frac = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0)
                pos_++;
            if (pos_ == frac)
                return fail("expected fraction digits");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            pos_++;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                pos_++;
            size_t exp = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0)
                pos_++;
            if (pos_ == exp)
                return fail("expected exponent digits");
        }
        if (sink != nullptr) {
            *sink = JsonValue::makeNumber(
                std::strtod(std::string(text_.substr(start, pos_ - start))
                                .c_str(),
                            nullptr));
        }
        return true;
    }

    bool
    value(JsonValue *sink)
    {
        if (depth_ > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(sink);
        if (c == '[')
            return array(sink);
        if (c == '"') {
            std::string decoded;
            if (!string(sink != nullptr ? &decoded : nullptr))
                return false;
            if (sink != nullptr)
                *sink = JsonValue::makeString(std::move(decoded));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            if (sink != nullptr)
                *sink = JsonValue::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            if (sink != nullptr)
                *sink = JsonValue::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            if (sink != nullptr)
                *sink = JsonValue::makeNull();
            return true;
        }
        return number(sink);
    }

    bool
    object(JsonValue *sink)
    {
        depth_++;
        pos_++; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            depth_--;
            if (sink != nullptr)
                *sink = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(sink != nullptr ? &key : nullptr))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            pos_++;
            JsonValue member;
            if (!value(sink != nullptr ? &member : nullptr))
                return false;
            if (sink != nullptr)
                members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                pos_++;
                depth_--;
                if (sink != nullptr)
                    *sink = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue *sink)
    {
        depth_++;
        pos_++; // '['
        std::vector<JsonValue> elements;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            depth_--;
            if (sink != nullptr)
                *sink = JsonValue::makeArray(std::move(elements));
            return true;
        }
        while (true) {
            JsonValue element;
            if (!value(sink != nullptr ? &element : nullptr))
                return false;
            if (sink != nullptr)
                elements.push_back(std::move(element));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                pos_++;
                depth_--;
                if (sink != nullptr)
                    *sink = JsonValue::makeArray(std::move(elements));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string message_;
};

} // namespace

bool
validateJson(std::string_view text, std::string *error)
{
    return JsonChecker(text).check(error);
}

const std::string &
JsonValue::emptyString()
{
    static const std::string empty;
    return empty;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::object)
        return nullptr;
    for (const auto &[name, member] : members_) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::boolean ? bool_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    return kind_ == Kind::number ? number_ : fallback;
}

uint64_t
JsonValue::asUint64(uint64_t fallback) const
{
    if (kind_ != Kind::number || number_ < 0)
        return fallback;
    uint64_t truncated = static_cast<uint64_t>(number_);
    if (static_cast<double>(truncated) != number_)
        return fallback;
    return truncated;
}

const std::string &
JsonValue::asString(const std::string &fallback) const
{
    return kind_ == Kind::string ? string_ : fallback;
}

bool
JsonValue::boolAt(std::string_view key, bool fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr ? member->asBool(fallback) : fallback;
}

uint64_t
JsonValue::uintAt(std::string_view key, uint64_t fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr ? member->asUint64(fallback) : fallback;
}

const std::string &
JsonValue::stringAt(std::string_view key, const std::string &fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr ? member->asString(fallback) : fallback;
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::boolean;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.kind_ = Kind::number;
    out.number_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::string;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue out;
    out.kind_ = Kind::array;
    out.elements_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> v)
{
    JsonValue out;
    out.kind_ = Kind::object;
    out.members_ = std::move(v);
    return out;
}

bool
parseJson(std::string_view text, JsonValue *out, std::string *error)
{
    JsonValue parsed;
    if (!JsonChecker(text).check(error, &parsed))
        return false;
    *out = std::move(parsed);
    return true;
}

namespace
{

/** Nanoseconds rendered as fractional microseconds ("12.345"). */
std::string
microseconds(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &event : events) {
        if (!first)
            out << ",";
        first = false;
        // Chrome trace timestamps are microseconds; keep sub-us
        // precision with fractional values.
        out << "{\"name\":\"" << jsonEscape(event.name) << "\""
            << ",\"ph\":\"" << event.phase << "\""
            << ",\"ts\":" << microseconds(event.tsNs);
        if (event.phase == 'X')
            out << ",\"dur\":" << microseconds(event.durNs);
        out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
        if (event.phase == 'i')
            out << ",\"s\":\"t\"";
        bool hasTrace = event.spanId != 0;
        if (!event.detail.empty() || hasTrace) {
            out << ",\"args\":{";
            bool firstArg = true;
            if (!event.detail.empty()) {
                out << "\"detail\":\"" << jsonEscape(event.detail) << "\"";
                firstArg = false;
            }
            if (hasTrace) {
                if (!firstArg)
                    out << ",";
                out << "\"trace_id\":\"" << jsonEscape(event.traceId)
                    << "\",\"span_id\":\"" << spanIdToHex(event.spanId)
                    << "\"";
                if (event.parentSpan != 0)
                    out << ",\"parent_span\":\""
                        << spanIdToHex(event.parentSpan) << "\"";
            }
            out << "}";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

std::string
metricsJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\"schema\":\"obs/v1\",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":" << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":" << value;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : snapshot.histograms) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":{\"count\":" << hist.count
            << ",\"sum\":" << hist.sum
            << ",\"p50\":" << hist.percentile(0.50)
            << ",\"p90\":" << hist.percentile(0.90)
            << ",\"p99\":" << hist.percentile(0.99) << ",\"buckets\":[";
        bool firstBucket = true;
        for (const HistogramSnapshot::Bucket &bucket : hist.buckets) {
            if (!firstBucket)
                out << ",";
            firstBucket = false;
            out << "[" << bucket.lo << "," << bucket.hi << ","
                << bucket.count << "]";
        }
        out << "]}";
    }
    out << "}}";
    return out.str();
}

namespace
{

bool
writeValidated(const std::string &path, const std::string &text,
               std::string *error)
{
    std::string parseError;
    if (!validateJson(text, &parseError)) {
        if (error != nullptr)
            *error = path + ": refusing to write: " + parseError;
        return false;
    }
    std::ofstream file(path, std::ios::binary);
    if (!file) {
        if (error != nullptr)
            *error = path + ": cannot open for writing";
        return false;
    }
    file << text << "\n";
    file.close();
    if (!file) {
        if (error != nullptr)
            *error = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace

bool
writeChromeTrace(const std::string &path, std::string *error)
{
    std::vector<TraceEvent> events = TraceCollector::global().drain();
    return writeValidated(path, chromeTraceJson(events), error);
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceEvent> &events,
                     std::string *error)
{
    return writeValidated(path, chromeTraceJson(events), error);
}

bool
writeMetricsJson(const std::string &path, std::string *error)
{
    MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    return writeValidated(path, metricsJson(snap), error);
}

} // namespace sulong::obs
