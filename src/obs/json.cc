#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sulong::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char raw : s) {
        // Unsigned, or high bytes sign-extend and mis-format as \uffXX.
        unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        default:
            if (c < 0x20 || c >= 0x7F) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

/** Recursive-descent validator; enough JSON to check our own output. */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool
    check(std::string *error)
    {
        bool ok = value() && (skipWs(), pos_ == text_.size());
        if (!ok && error != nullptr) {
            *error = "invalid JSON at byte " + std::to_string(pos_) +
                (message_.empty() ? "" : ": " + message_);
        }
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    fail(const char *why)
    {
        if (message_.empty())
            message_ = why;
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    string()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        while (pos_ < text_.size()) {
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                pos_++;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; i++) {
                        if (pos_ + i >= text_.size() ||
                            std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])) == 0)
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            pos_++;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
            pos_++;
        if (pos_ == start ||
            (pos_ == start + 1 && text_[start] == '-'))
            return fail("expected number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            pos_++;
            size_t frac = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0)
                pos_++;
            if (pos_ == frac)
                return fail("expected fraction digits");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            pos_++;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                pos_++;
            size_t exp = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0)
                pos_++;
            if (pos_ == exp)
                return fail("expected exponent digits");
        }
        return true;
    }

    bool
    value()
    {
        if (depth_ > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        depth_++;
        pos_++; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            depth_--;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            pos_++;
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                pos_++;
                depth_--;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        depth_++;
        pos_++; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            depth_--;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                pos_++;
                depth_--;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string message_;
};

} // namespace

bool
validateJson(std::string_view text, std::string *error)
{
    return JsonChecker(text).check(error);
}

namespace
{

/** Nanoseconds rendered as fractional microseconds ("12.345"). */
std::string
microseconds(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &event : events) {
        if (!first)
            out << ",";
        first = false;
        // Chrome trace timestamps are microseconds; keep sub-us
        // precision with fractional values.
        out << "{\"name\":\"" << jsonEscape(event.name) << "\""
            << ",\"ph\":\"" << event.phase << "\""
            << ",\"ts\":" << microseconds(event.tsNs);
        if (event.phase == 'X')
            out << ",\"dur\":" << microseconds(event.durNs);
        out << ",\"pid\":1,\"tid\":" << event.tid;
        if (event.phase == 'i')
            out << ",\"s\":\"t\"";
        if (!event.detail.empty())
            out << ",\"args\":{\"detail\":\"" << jsonEscape(event.detail)
                << "\"}";
        out << "}";
    }
    out << "]}";
    return out.str();
}

std::string
metricsJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\"schema\":\"obs/v1\",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":" << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":" << value;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : snapshot.histograms) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":{\"count\":" << hist.count
            << ",\"sum\":" << hist.sum << ",\"buckets\":[";
        bool firstBucket = true;
        for (const HistogramSnapshot::Bucket &bucket : hist.buckets) {
            if (!firstBucket)
                out << ",";
            firstBucket = false;
            out << "[" << bucket.lo << "," << bucket.hi << ","
                << bucket.count << "]";
        }
        out << "]}";
    }
    out << "}}";
    return out.str();
}

namespace
{

bool
writeValidated(const std::string &path, const std::string &text,
               std::string *error)
{
    std::string parseError;
    if (!validateJson(text, &parseError)) {
        if (error != nullptr)
            *error = path + ": refusing to write: " + parseError;
        return false;
    }
    std::ofstream file(path, std::ios::binary);
    if (!file) {
        if (error != nullptr)
            *error = path + ": cannot open for writing";
        return false;
    }
    file << text << "\n";
    file.close();
    if (!file) {
        if (error != nullptr)
            *error = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace

bool
writeChromeTrace(const std::string &path, std::string *error)
{
    std::vector<TraceEvent> events = TraceCollector::global().drain();
    return writeValidated(path, chromeTraceJson(events), error);
}

bool
writeMetricsJson(const std::string &path, std::string *error)
{
    MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    return writeValidated(path, metricsJson(snap), error);
}

} // namespace sulong::obs
