/**
 * @file
 * JSON emission shared by every exporter in the repo: a strict string
 * escaper, the Chrome trace-event writer (--trace-out), the obs/v1
 * metrics writer (--metrics-json), and a small validating parser used
 * by tests and by the writers themselves (each writer re-parses its own
 * output before returning, so a malformed document is a hard error at
 * the source rather than a downstream tooling failure).
 */

#ifndef MS_OBS_JSON_H
#define MS_OBS_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sulong::obs
{

/**
 * Escape @p s for inclusion in a JSON string literal. Escapes quote,
 * backslash, all control characters below 0x20, and every byte >= 0x7F
 * as \u00XX — so the output is plain-ASCII valid JSON even when the
 * input is arbitrary bytes (guest program output, fuzzer sources).
 */
std::string jsonEscape(std::string_view s);

/**
 * Validate that @p text is a well-formed JSON document.
 * @param error if non-null, receives a position-tagged message.
 */
bool validateJson(std::string_view text, std::string *error = nullptr);

/**
 * Parsed JSON document. Object member order is preserved (so documents
 * round-trip deterministically), and lookups are linear — the service
 * protocol's requests are small, flat objects, never big tables.
 *
 * Accessors are total: asking an object for a missing key or a value
 * for the wrong type returns the fallback instead of throwing, which
 * keeps "garbage request" handling in the daemon a straight-line check
 * rather than exception control flow.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isObject() const { return kind_ == Kind::object; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isString() const { return kind_ == Kind::string; }
    bool isNumber() const { return kind_ == Kind::number; }
    bool isBool() const { return kind_ == Kind::boolean; }

    /** Member of an object (null when absent or not an object). */
    const JsonValue *find(std::string_view key) const;

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0) const;
    /// Negative and fractional numbers return the fallback: every
    /// numeric protocol field is a count, a byte size, or a
    /// milliseconds value.
    uint64_t asUint64(uint64_t fallback = 0) const;
    const std::string &asString(const std::string &fallback = emptyString()) const;
    const std::vector<JsonValue> &elements() const { return elements_; }
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return members_;
    }

    /** Convenience over find(): object member or typed fallback. */
    bool boolAt(std::string_view key, bool fallback = false) const;
    uint64_t uintAt(std::string_view key, uint64_t fallback = 0) const;
    const std::string &stringAt(std::string_view key,
                                const std::string &fallback =
                                    emptyString()) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> v);

  private:
    static const std::string &emptyString();

    Kind kind_ = Kind::null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text into a JsonValue. Same grammar the validator accepts
 * (strict JSON, 64-deep nesting cap); \uXXXX escapes below U+0100
 * decode to the raw byte (matching jsonEscape's output), higher ones
 * to UTF-8.
 * @return false (with *error position-tagged) on malformed input;
 *         @p out is untouched.
 */
bool parseJson(std::string_view text, JsonValue *out,
               std::string *error = nullptr);

/** Chrome trace-event document ({"traceEvents": [...]}) for @p events. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/** obs/v1 metrics document for @p snapshot. */
std::string metricsJson(const MetricsSnapshot &snapshot);

/**
 * Drain the global collector and write the Chrome trace to @p path.
 * @return false (with *error set) on I/O failure or invalid output.
 */
bool writeChromeTrace(const std::string &path, std::string *error = nullptr);

/**
 * Write an explicit event list (e.g. the client's local spans merged
 * with daemon-side spans fetched over the wire) as a Chrome trace.
 */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceEvent> &events,
                          std::string *error = nullptr);

/** Snapshot the global registry and write obs/v1 metrics to @p path. */
bool writeMetricsJson(const std::string &path, std::string *error = nullptr);

} // namespace sulong::obs

#endif // MS_OBS_JSON_H
