/**
 * @file
 * JSON emission shared by every exporter in the repo: a strict string
 * escaper, the Chrome trace-event writer (--trace-out), the obs/v1
 * metrics writer (--metrics-json), and a small validating parser used
 * by tests and by the writers themselves (each writer re-parses its own
 * output before returning, so a malformed document is a hard error at
 * the source rather than a downstream tooling failure).
 */

#ifndef MS_OBS_JSON_H
#define MS_OBS_JSON_H

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sulong::obs
{

/**
 * Escape @p s for inclusion in a JSON string literal. Escapes quote,
 * backslash, all control characters below 0x20, and every byte >= 0x7F
 * as \u00XX — so the output is plain-ASCII valid JSON even when the
 * input is arbitrary bytes (guest program output, fuzzer sources).
 */
std::string jsonEscape(std::string_view s);

/**
 * Validate that @p text is a well-formed JSON document.
 * @param error if non-null, receives a position-tagged message.
 */
bool validateJson(std::string_view text, std::string *error = nullptr);

/** Chrome trace-event document ({"traceEvents": [...]}) for @p events. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/** obs/v1 metrics document for @p snapshot. */
std::string metricsJson(const MetricsSnapshot &snapshot);

/**
 * Drain the global collector and write the Chrome trace to @p path.
 * @return false (with *error set) on I/O failure or invalid output.
 */
bool writeChromeTrace(const std::string &path, std::string *error = nullptr);

/** Snapshot the global registry and write obs/v1 metrics to @p path. */
bool writeMetricsJson(const std::string &path, std::string *error = nullptr);

} // namespace sulong::obs

#endif // MS_OBS_JSON_H
