/**
 * @file
 * Prometheus text exposition (version 0.0.4) for a MetricsSnapshot.
 *
 * The registry is flat name -> value; labels are encoded into metric
 * names by the emitter (`service.tenant.admitted{tenant="acme"}`) and
 * split back out here, so the hot path never carries a label map.
 * Dots become underscores (Prometheus names admit [a-zA-Z0-9_:] only),
 * label values are escaped per the exposition format, and histograms
 * come out as the conventional `_bucket{le=...}` cumulative series plus
 * `_sum`/`_count` and interpolated `_p50`/`_p90`/`_p99` gauges.
 */

#ifndef MS_OBS_EXPO_H
#define MS_OBS_EXPO_H

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace sulong::obs
{

/**
 * Split a registry name into its metric part and its label part:
 * "a.b{tenant=\"x\"}" -> ("a.b", "{tenant=\"x\"}"); names without
 * a '{' come back with an empty label part.
 */
std::pair<std::string, std::string> splitLabeledName(std::string_view name);

/** Registry name to a valid Prometheus metric name (dots -> '_'). */
std::string prometheusName(std::string_view name);

/** Escape a label VALUE: backslash, double-quote, and newline. */
std::string prometheusLabelEscape(std::string_view value);

/** Render @p snapshot as Prometheus text exposition format. */
std::string prometheusText(const MetricsSnapshot &snapshot);

/** Snapshot the global registry and render it (convenience). */
std::string prometheusTextFromGlobal();

/**
 * Write the global registry's Prometheus exposition to @p path.
 * @return false (with *error set) on I/O failure.
 */
bool writePrometheusText(const std::string &path,
                         std::string *error = nullptr);

} // namespace sulong::obs

#endif // MS_OBS_EXPO_H
