#include "obs/flightrec.h"

#include <sstream>

#include "obs/json.h"
#include "obs/trace.h"

namespace sulong::obs
{

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

void
FlightRecorder::note(std::string name, std::string detail)
{
    Event event;
    event.name = std::move(name);
    event.detail = std::move(detail);
    event.tsNs = TraceCollector::global().nowNs();
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = seq_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Event>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    // next_ is the oldest entry once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); i++)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

uint64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

std::string
postmortemJson(const PostmortemInfo &info, const FlightRecorder &recorder)
{
    std::vector<FlightRecorder::Event> events = recorder.events();
    std::ostringstream out;
    out << "{\"schema\":\"msulong.postmortem/v1\""
        << ",\"job\":" << info.jobId
        << ",\"tenant\":\"" << jsonEscape(info.tenant) << "\""
        << ",\"tool\":\"" << jsonEscape(info.tool) << "\"";
    if (!info.traceId.empty())
        out << ",\"trace_id\":\"" << jsonEscape(info.traceId) << "\"";
    out << ",\"termination\":\"" << jsonEscape(info.termination) << "\"";
    if (!info.terminationDetail.empty())
        out << ",\"termination_detail\":\""
            << jsonEscape(info.terminationDetail) << "\"";
    if (!info.bugKind.empty())
        out << ",\"bug_kind\":\"" << jsonEscape(info.bugKind) << "\"";
    out << ",\"attempts\":" << info.attempts
        << ",\"fault_firings\":" << info.faultFirings
        << ",\"events_recorded\":" << recorder.recorded()
        << ",\"events\":[";
    bool first = true;
    for (const FlightRecorder::Event &event : events) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.tsNs
            << ",\"name\":\"" << jsonEscape(event.name) << "\"";
        if (!event.detail.empty())
            out << ",\"detail\":\"" << jsonEscape(event.detail) << "\"";
        out << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace sulong::obs
