/**
 * @file
 * Sliding-window rate aggregator: a ring of time buckets over which
 * recent event counts are summed, giving the live exposition its
 * "requests in the last minute" rates without unbounded history.
 *
 * Time is an explicit parameter (milliseconds on any monotonic clock)
 * rather than read inside the class, so rotation is deterministic and
 * unit-testable: tests drive a fake clock, production callers pass a
 * steady-clock reading. Buckets rotate lazily — recording or reading
 * at time T retires every bucket older than the window; there is no
 * background thread.
 */

#ifndef MS_OBS_WINDOW_H
#define MS_OBS_WINDOW_H

#include <cstdint>
#include <mutex>
#include <vector>

namespace sulong::obs
{

class SlidingWindow
{
  public:
    /**
     * @param bucket_count ring size (>= 1; clamped).
     * @param bucket_width_ms time span of one bucket (>= 1; clamped).
     * The covered window is bucket_count * bucket_width_ms.
     */
    explicit SlidingWindow(size_t bucket_count = 60,
                           uint64_t bucket_width_ms = 1000);

    /** Count @p n events at time @p now_ms. */
    void record(uint64_t now_ms, uint64_t n = 1);

    /** Sum of events inside the window ending at @p now_ms. */
    uint64_t totalInWindow(uint64_t now_ms) const;

    /** totalInWindow scaled to events per second. */
    double ratePerSec(uint64_t now_ms) const;

    uint64_t windowMs() const { return width_ * buckets_.size(); }

  private:
    struct Bucket
    {
        uint64_t epoch = 0; ///< now_ms / width_ when last written.
        uint64_t count = 0;
    };

    /** Buckets live in slot epoch % size; stale slots read as empty. */
    uint64_t sumLocked(uint64_t now_ms) const;

    mutable std::mutex mutex_;
    std::vector<Bucket> buckets_;
    uint64_t width_;
};

} // namespace sulong::obs

#endif // MS_OBS_WINDOW_H
