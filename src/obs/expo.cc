#include "obs/expo.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace sulong::obs
{

std::pair<std::string, std::string>
splitLabeledName(std::string_view name)
{
    size_t brace = name.find('{');
    if (brace == std::string_view::npos)
        return {std::string(name), std::string()};
    return {std::string(name.substr(0, brace)),
            std::string(name.substr(brace))};
}

std::string
prometheusName(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
            c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])) != 0)
        out.insert(out.begin(), '_');
    return out;
}

std::string
prometheusLabelEscape(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

namespace
{

/**
 * Merge a pre-encoded label part ("{a=\"x\"}" or "") with one extra
 * label rendered as `key="value"`; either side may be empty.
 */
std::string
mergeLabels(const std::string &label_part, const std::string &extra)
{
    std::string inner = label_part.size() >= 2
        ? label_part.substr(1, label_part.size() - 2)
        : std::string();
    if (extra.empty() && inner.empty())
        return "";
    if (inner.empty())
        return "{" + extra + "}";
    if (extra.empty())
        return "{" + inner + "}";
    return "{" + inner + "," + extra + "}";
}

/** One sample line: name, optional labels, integer value. */
template <typename V>
void
sample(std::ostringstream &out, const std::string &name,
       const std::string &labels, V value)
{
    out << name << labels << " " << value << "\n";
}

void
typeLine(std::ostringstream &out, std::string &last_typed,
         const std::string &name, const char *type)
{
    if (name == last_typed)
        return;
    out << "# TYPE " << name << " " << type << "\n";
    last_typed = name;
}

} // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    std::string lastTyped;
    for (const auto &[raw, value] : snapshot.counters) {
        auto [base, labels] = splitLabeledName(raw);
        std::string name = prometheusName(base);
        typeLine(out, lastTyped, name, "counter");
        sample(out, name, labels, value);
    }
    lastTyped.clear();
    for (const auto &[raw, value] : snapshot.gauges) {
        auto [base, labels] = splitLabeledName(raw);
        std::string name = prometheusName(base);
        typeLine(out, lastTyped, name, "gauge");
        sample(out, name, labels, value);
    }
    for (const auto &[raw, hist] : snapshot.histograms) {
        auto [base, labels] = splitLabeledName(raw);
        std::string name = prometheusName(base);
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (const HistogramSnapshot::Bucket &bucket : hist.buckets) {
            cumulative += bucket.count;
            std::ostringstream le;
            le << "le=\"" << bucket.hi << "\"";
            sample(out, name + "_bucket", mergeLabels(labels, le.str()),
                   cumulative);
        }
        sample(out, name + "_bucket",
               mergeLabels(labels, "le=\"+Inf\""), hist.count);
        sample(out, name + "_sum", labels, hist.sum);
        sample(out, name + "_count", labels, hist.count);
        // Interpolated quantiles as companion gauges: scrapers that
        // cannot aggregate buckets still get latency percentiles.
        for (auto [suffix, q] :
             {std::pair<const char *, double>{"_p50", 0.50},
              {"_p90", 0.90},
              {"_p99", 0.99}}) {
            out << "# TYPE " << name << suffix << " gauge\n";
            sample(out, name + suffix, labels, hist.percentile(q));
        }
    }
    return out.str();
}

std::string
prometheusTextFromGlobal()
{
    return prometheusText(MetricsRegistry::global().snapshot());
}

bool
writePrometheusText(const std::string &path, std::string *error)
{
    std::ofstream file(path, std::ios::binary);
    if (!file) {
        if (error != nullptr)
            *error = path + ": cannot open for writing";
        return false;
    }
    file << prometheusTextFromGlobal();
    file.close();
    if (!file) {
        if (error != nullptr)
            *error = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace sulong::obs
