/**
 * @file
 * Harness that runs the corpus under the tool matrix and regenerates
 * Table 1, Table 2, and the Section 4.1 detection comparison.
 */

#ifndef MS_CORPUS_HARNESS_H
#define MS_CORPUS_HARNESS_H

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "study/classifier.h"
#include "tools/batch_runner.h"
#include "tools/driver.h"

namespace sulong
{

/** Result of one (tool, program) cell. */
struct DetectionOutcome
{
    /// The tool reported the planted bug (kind matches ground truth).
    bool detected = false;
    /// Memcheck-style indirect hint: an uninitialised-value report for a
    /// planted out-of-bounds read (the paper's "arguably could be used
    /// to indirectly identify" case).
    bool indirect = false;
    /// The program failed to compile or the engine gave up.
    bool error = false;
    BugReport report;
};

/** One tool's row over the whole corpus. */
struct MatrixRow
{
    std::string tool;
    std::vector<DetectionOutcome> outcomes;
    unsigned directCount = 0;
    unsigned indirectCount = 0;
    unsigned errorCount = 0;
};

/** Classify a run against the entry's ground truth. */
DetectionOutcome classifyOutcome(const CorpusEntry &entry,
                                 const ExecutionResult &result);

/**
 * Default per-job resource budget for corpus evaluation: generous for
 * every correct corpus program, tight enough that loops, recursion
 * bombs, allocation bombs, and printf bombs all terminate structurally.
 * Deliberately leaves the wall-clock deadline off so corpus outcomes
 * never depend on host timing.
 */
ResourceLimits corpusRunLimits();

/** Run @p entries under @p tools (rows are tool-major), serially and
 *  without a compile cache. */
std::vector<MatrixRow>
runDetectionMatrix(const std::vector<CorpusEntry> &entries,
                   const std::vector<ToolConfig> &tools);

/**
 * Batch-evaluated detection matrix: every (tool, entry) cell becomes one
 * BatchJob, executed over @p options' worker pool and compile cache.
 * Rows and cells come back in the same deterministic order as the serial
 * overload and hold identical outcomes. Jobs run under @p job_limits
 * (corpusRunLimits() when null).
 */
std::vector<MatrixRow>
runDetectionMatrix(const std::vector<CorpusEntry> &entries,
                   const std::vector<ToolConfig> &tools,
                   const BatchOptions &options,
                   CompileCacheStats *cache_stats = nullptr,
                   const ResourceLimits *job_limits = nullptr);

/** Table 1: error distribution of the corpus (ground truth). */
std::string formatTable1(const std::vector<CorpusEntry> &entries);

/** Table 2: read/write, under/overflow, and storage splits of the
 *  out-of-bounds entries (ground truth). */
std::string formatTable2(const std::vector<CorpusEntry> &entries);

/** The detection-matrix summary (per tool: found / indirect / missed). */
std::string formatMatrix(const std::vector<CorpusEntry> &entries,
                         const std::vector<MatrixRow> &rows);

/** Ids of entries only the first row's tool detected (Section 4.1's
 *  "8 bugs found only by Safe Sulong"). */
std::vector<std::string>
exclusiveDetections(const std::vector<CorpusEntry> &entries,
                    const std::vector<MatrixRow> &rows,
                    bool count_indirect_as_found = false);

/** Static-vs-dynamic comparison for one corpus entry. */
struct CrossValidationRow
{
    std::string id;
    /// Ground-truth kind and shared-taxonomy class of the planted bug.
    ErrorKind expectedKind = ErrorKind::outOfBounds;
    BugClass expected = BugClass::spatial;
    /// The dynamic oracle's verdict (Safe Sulong, uninitialized-read
    /// detection on, corpusRunLimits()).
    BugReport dynamicReport;
    /// The oracle gave up (compile failure / resource termination /
    /// engine error) — nothing can be confirmed against it.
    bool dynamicError = false;
    unsigned definiteCount = 0;
    unsigned maybeCount = 0;
    /// Findings the constraint solver proved infeasible (dropped with a
    /// refutation certificate before replay).
    unsigned refutedCount = 0;
    /// Call sites where a callee summary was applied instead of havocking.
    unsigned summariesApplied = 0;
    /// A `definite` static finding whose kind the oracle did not
    /// reproduce. The soundness contract is that this never happens.
    bool falseDefinite = false;
    /// A `definite` finding has the planted bug's kind.
    bool definiteHit = false;
    /// Any finding (definite or maybe) has the planted bug's kind.
    bool staticHit = false;
    std::string replayOutcome;
};

/** Corpus-wide static/dynamic agreement summary. */
struct CrossValidationReport
{
    std::vector<CrossValidationRow> rows;
    double wallMs = 0;

    unsigned falseDefinites() const;
    unsigned definiteHits() const;
    unsigned staticHits() const;
    /// Fraction of planted bugs the analyzer reported at any confidence.
    double recall() const;
    /// Fraction the analyzer reported as replay-confirmed `definite`.
    double definiteRecall() const;
};

/**
 * Run the static analyzer over every corpus entry — replaying the
 * entry's triggering inputs in the refutation stage — then run the
 * dynamic detector on the same module, and compare. Every `definite`
 * static finding must agree in kind with the dynamic report; any
 * disagreement is recorded as a false definite.
 *
 * When @p cache is non-null, per-entry compiles go through it (the same
 * shared CompileCache the batch runner uses), so repeated
 * cross-validation passes — e.g. ablation sweeps over AnalysisOptions —
 * recompile nothing.
 */
CrossValidationReport
crossValidateCorpus(const std::vector<CorpusEntry> &entries,
                    const AnalysisOptions &base = {},
                    CompileCache *cache = nullptr);

/** Render the cross-validation summary (and any disagreeing rows). */
std::string formatCrossValidation(const CrossValidationReport &report);

} // namespace sulong

#endif // MS_CORPUS_HARNESS_H
