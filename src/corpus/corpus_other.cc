/**
 * @file
 * Non-spatial corpus entries: 5 NULL dereferences, 1 use-after-free,
 * and 1 variadic-argument error — completing the Table 1 distribution.
 */

#include "corpus/corpus.h"

namespace sulong
{

namespace
{

CorpusEntry
make(const char *id, const char *desc, ErrorKind kind, AccessKind access,
     StorageKind storage, const char *source)
{
    CorpusEntry e;
    e.id = id;
    e.description = desc;
    e.idiom = BugIdiom::missingCheck;
    e.kind = kind;
    e.access = access;
    e.storage = storage;
    e.direction = BoundsDirection::unknown;
    e.source = source;
    return e;
}

} // namespace

std::vector<CorpusEntry>
corpusOtherBugs()
{
    std::vector<CorpusEntry> entries;

    // ----- NULL dereferences (5) -------------------------------------------

    entries.push_back(make("null-01-unchecked-malloc",
        "malloc result used without a NULL check after exhaustion",
        ErrorKind::nullDeref, AccessKind::write, StorageKind::heap, R"(
int main(void) {
    /* Simulate allocation failure by asking for the NULL-returning
     * convention directly: a missing-check pattern. */
    char *p = 0;
    p[0] = 'x';
    return 0;
})"));

    entries.push_back(make("null-02-strchr-miss",
        "strchr result dereferenced although the character is absent",
        ErrorKind::nullDeref, AccessKind::read, StorageKind::heap, R"(
int main(void) {
    char host[16];
    strcpy(host, "localhost");
    char *colon = strchr(host, ':');
    printf("port=%s\n", colon + 1); /* colon is NULL */
    return 0;
})"));

    entries.push_back(make("null-03-empty-list-head",
        "head pointer of an empty list dereferenced",
        ErrorKind::nullDeref, AccessKind::read, StorageKind::heap, R"(
struct item { int value; struct item *next; };
struct item *head = 0;
int main(void) {
    printf("%d\n", head->value);
    return 0;
})"));

    entries.push_back(make("null-04-optional-arg",
        "optional output parameter written unconditionally",
        ErrorKind::nullDeref, AccessKind::write, StorageKind::heap, R"(
static int parse(const char *s, int *err) {
    int v = atoi(s);
    *err = 0; /* caller passed NULL for "don't care" */
    return v;
}
int main(void) {
    printf("%d\n", parse("42", 0));
    return 0;
})"));

    entries.push_back(make("null-05-check-after-deref",
        "pointer checked for NULL only after it was dereferenced",
        ErrorKind::nullDeref, AccessKind::read, StorageKind::heap, R"(
static int first(const int *v) {
    int head = v[0];     /* deref... */
    if (v == 0)          /* ...then check (optimizers drop this) */
        return -1;
    return head;
}
int main(void) {
    printf("%d\n", first(0));
    return 0;
})"));

    // ----- use-after-free (1) -------------------------------------------------

    entries.push_back(make("uaf-01-iterate-after-free",
        "buffer freed inside the loop that still reads it",
        ErrorKind::useAfterFree, AccessKind::read, StorageKind::heap, R"(
int main(void) {
    char *msg = malloc(12);
    strcpy(msg, "disconnect");
    int closed = 0;
    for (int i = 0; msg[i] != 0; i++) {
        if (msg[i] == 'c' && !closed) {
            free(msg); /* freed, but the loop continues */
            closed = 1;
        }
    }
    printf("%d\n", closed);
    return 0;
})"));

    // ----- variadic arguments (1) -----------------------------------------------

    {
        CorpusEntry e = make("varargs-01-missing-argument",
            "format string names two conversions, caller passes one",
            ErrorKind::varargs, AccessKind::read, StorageKind::stack, R"(
static void report(const char *user, const char *action) {
    printf("user %s performed %s at %d\n", user, action);
}
int main(void) {
    report("admin", "login");
    return 0;
})");
        e.caseStudy = true;
        entries.push_back(e);
    }

    return entries;
}

const char *
bugIdiomName(BugIdiom idiom)
{
    switch (idiom) {
      case BugIdiom::unterminatedString: return "unterminated string";
      case BugIdiom::missingNulSpace: return "missing NUL space";
      case BugIdiom::missingCheck: return "missing check";
      case BugIdiom::integerOverflow: return "integer overflow";
      case BugIdiom::hardCodedSize: return "hard-coded size";
      case BugIdiom::checkAfterAccess: return "check after access";
      case BugIdiom::offByOne: return "off-by-one";
      case BugIdiom::other: return "other";
    }
    return "invalid";
}

const std::vector<CorpusEntry> &
bugCorpus()
{
    static const std::vector<CorpusEntry> corpus = [] {
        std::vector<CorpusEntry> all;
        for (auto &e : corpusStackOob())
            all.push_back(std::move(e));
        for (auto &e : corpusHeapOob())
            all.push_back(std::move(e));
        for (auto &e : corpusGlobalAndArgsOob())
            all.push_back(std::move(e));
        for (auto &e : corpusOtherBugs())
            all.push_back(std::move(e));
        return all;
    }();
    return corpus;
}

} // namespace sulong
