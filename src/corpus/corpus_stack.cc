/**
 * @file
 * Stack out-of-bounds corpus: 32 entries (16 reads / 16 writes,
 * 5 underflows / 27 overflows), including the strtok (Fig. 11) and
 * printf-%ld (Fig. 12) case studies and four Fig.-3-style bugs that an
 * aggressive optimizer deletes.
 */

#include "corpus/corpus.h"

namespace sulong
{

namespace
{

CorpusEntry
make(const char *id, const char *desc, BugIdiom idiom, AccessKind access,
     BoundsDirection dir, const char *source)
{
    CorpusEntry e;
    e.id = id;
    e.description = desc;
    e.idiom = idiom;
    e.kind = ErrorKind::outOfBounds;
    e.access = access;
    e.storage = StorageKind::stack;
    e.direction = dir;
    e.source = source;
    return e;
}

} // namespace

std::vector<CorpusEntry>
corpusStackOob()
{
    std::vector<CorpusEntry> entries;
    const auto R = AccessKind::read;
    const auto W = AccessKind::write;
    const auto O = BoundsDirection::overflow;
    const auto U = BoundsDirection::underflow;

    // ----- reads (16: 3 underflows, 13 overflows) ------------------------

    entries.push_back(make("stack-r-01-offbyone-loop",
        "<= instead of < when summing a fixed-size array", BugIdiom::offByOne,
        R, O, R"(
int main(void) {
    int grades[8] = {70, 80, 90, 65, 72, 88, 91, 59};
    int sum = 0;
    for (int i = 0; i <= 8; i++)
        sum += grades[i];
    printf("avg=%d\n", sum / 8);
    return 0;
})"));

    entries.push_back(make("stack-r-02-unterminated-strlen",
        "strncpy leaves the copy unterminated; strlen runs off the buffer",
        BugIdiom::unterminatedString, R, O, R"(
int main(void) {
    char name[8];
    strncpy(name, "balthazar", 8); /* no NUL fits */
    printf("len=%lu\n", strlen(name));
    return 0;
})"));

    {
        CorpusEntry e = make("stack-r-03-strtok-delim",
            "delimiter passed to strtok is not NUL-terminated (Fig. 11)",
            BugIdiom::unterminatedString, R, O, R"(
int main(void) {
    char buf[16];
    strcpy(buf, "k=v");
    char t[1];
    t[0] = '='; /* missing terminator */
    char *token = strtok(buf, t);
    printf("%s\n", token);
    return 0;
})");
        e.caseStudy = true;
        entries.push_back(e);
    }

    {
        CorpusEntry e = make("stack-r-04-printf-ld-int",
            "printf %ld reads 8 bytes of a 4-byte int argument (Fig. 12)",
            BugIdiom::other, R, O, R"(
int main(void) {
    int counter = 1234;
    printf("counter: %ld\n", counter);
    return 0;
})");
        e.caseStudy = true;
        entries.push_back(e);
    }

    entries.push_back(make("stack-r-05-hardcoded-len",
        "hard-coded size 16 disagrees with the 12-byte buffer",
        BugIdiom::hardCodedSize, R, O, R"(
int checksum(const char *data) {
    int acc = 0;
    for (int i = 0; i < 16; i++) /* buffer is only 12 bytes */
        acc += data[i];
    return acc;
}
int main(void) {
    char packet[12];
    memset(packet, 7, 12);
    printf("%d\n", checksum(packet));
    return 0;
})"));

    entries.push_back(make("stack-r-06-check-after-access",
        "bounds check happens after the access (see Wang et al.)",
        BugIdiom::checkAfterAccess, R, O, R"(
int lookup(int *table, int i) {
    int v = table[i];       /* access... */
    if (i >= 6) return -1;  /* ...then check */
    return v;
}
int main(void) {
    int table[6] = {1, 2, 3, 4, 5, 6};
    printf("%d\n", lookup(table, 6));
    return 0;
})"));

    entries.push_back(make("stack-r-07-scan-missing-bound",
        "search loop lacks the length condition",
        BugIdiom::missingCheck, R, O, R"(
int find(const char *s, char c) {
    int i = 0;
    while (s[i] != c) /* never checks for NUL */
        i++;
    return i;
}
int main(void) {
    char word[6];
    strcpy(word, "hello");
    printf("%d\n", find(word, 'z'));
    return 0;
})"));

    entries.push_back(make("stack-r-08-negative-index",
        "index decremented below zero before use", BugIdiom::missingCheck,
        R, U, R"(
int main(void) {
    int window[4] = {10, 20, 30, 40};
    int pos = 0;
    for (int step = 0; step < 3; step++)
        pos--; /* should clamp at 0 */
    printf("%d\n", window[pos]);
    return 0;
})"));

    entries.push_back(make("stack-r-09-reverse-underflow",
        ">= 0 loop starts one element before the array",
        BugIdiom::offByOne, R, U, R"(
int main(void) {
    char digits[5];
    strcpy(digits, "1234");
    int value = 0;
    for (int i = 4; i >= -1; i--) /* runs one past the start */
        value += digits[i];
    printf("%d\n", value);
    return 0;
})"));

    entries.push_back(make("stack-r-10-strcmp-unterminated",
        "comparing a buffer that lost its terminator",
        BugIdiom::unterminatedString, R, O, R"(
int main(void) {
    char key[4];
    key[0] = 'r'; key[1] = 'o'; key[2] = 'o'; key[3] = 't';
    if (strcmp(key, "root") == 0) /* key has no NUL */
        puts("match");
    return 0;
})"));

    entries.push_back(make("stack-r-11-integer-overflow-index",
        "8-bit cursor wraps around and lands past the table",
        BugIdiom::integerOverflow, R, O, R"(
int main(void) {
    char lut[10];
    memset(lut, 3, 10);
    unsigned char pos = 250;
    pos = pos + 18; /* wraps to 12 */
    printf("%d\n", lut[pos]);
    return 0;
})"));

    entries.push_back(make("stack-r-13-stale-length",
        "length of a longer previous string reused for a shorter buffer",
        BugIdiom::hardCodedSize, R, O, R"(
int main(void) {
    char long_name[32];
    strcpy(long_name, "configuration-file-name");
    char short_name[8];
    strcpy(short_name, "conf");
    int len = (int)strlen(long_name);
    int acc = 0;
    for (int i = 0; i < len; i++)
        acc += short_name[i]; /* wrong buffer */
    printf("%d\n", acc);
    return 0;
})"));

    entries.push_back(make("stack-r-14-memcmp-length",
        "memcmp length covers more than either buffer holds",
        BugIdiom::hardCodedSize, R, O, R"(
int main(void) {
    char a[8];
    char b[8];
    memset(a, 1, 8);
    memset(b, 1, 8);
    if (memcmp(a, b, 16) == 0) /* 16 > 8 */
        puts("equal");
    return 0;
})"));

    entries.push_back(make("stack-r-15-table-stride",
        "2D index arithmetic uses the wrong row stride",
        BugIdiom::other, R, O, R"(
int main(void) {
    int grid[3][3] = {{1,2,3},{4,5,6},{7,8,9}};
    int *flat = &grid[0][0];
    int row = 2;
    int col = 2;
    printf("%d\n", flat[row * 4 + col]); /* stride should be 3 */
    return 0;
})"));

    entries.push_back(make("stack-r-16-alias-smaller",
        "pointer to a small buffer passed where a large one is expected",
        BugIdiom::hardCodedSize, R, O, R"(
long sum64(const long *vals) {
    long acc = 0;
    for (int i = 0; i < 8; i++)
        acc += vals[i];
    return acc;
}
int main(void) {
    long six[6] = {1, 2, 3, 4, 5, 6};
    printf("%ld\n", sum64(six));
    return 0;
})"));

    entries.push_back(make("stack-r-17-ungrowing-cursor",
        "whitespace skip on a buffer that lost its terminator",
        BugIdiom::missingCheck, R, O, R"(
int main(void) {
    char input[6];
    memset(input, ' ', 6); /* no NUL anywhere */
    input[0] = 'a';
    int i = 1;
    while (input[i] == ' ') /* runs off the end */
        i++;
    printf("%d\n", i);
    return 0;
})"));

    // ----- writes (16: 2 underflows, 14 overflows) -------------------------

    entries.push_back(make("stack-w-01-missing-nul-space",
        "buffer sized strlen() without space for the terminator",
        BugIdiom::missingNulSpace, W, O, R"(
int main(void) {
    char src[6];
    strcpy(src, "fresh");
    char dst[5]; /* needs 6 for the NUL */
    strcpy(dst, src);
    printf("%s\n", dst);
    return 0;
})"));

    entries.push_back(make("stack-w-02-offbyone-fill",
        "initialization loop writes one element past the end",
        BugIdiom::offByOne, W, O, R"(
int main(void) {
    int ring[16];
    for (int i = 1; i <= 16; i++)
        ring[i] = i * i; /* should start at 0 or end at 15 */
    printf("%d\n", ring[3]);
    return 0;
})"));

    entries.push_back(make("stack-w-03-strcat-overflow",
        "concatenation ignores the remaining capacity",
        BugIdiom::missingCheck, W, O, R"(
int main(void) {
    char path[12];
    strcpy(path, "/usr");
    strcat(path, "/local");
    strcat(path, "/bin"); /* 15 bytes into 12 */
    printf("%s\n", path);
    return 0;
})"));

    entries.push_back(make("stack-w-04-gets-like-loop",
        "input copied until newline without a bound",
        BugIdiom::missingCheck, W, O, R"(
int main(void) {
    char cmd[8];
    int i = 0;
    int c;
    while ((c = getchar()) != -1 && c != '\n') {
        cmd[i] = (char)c;
        i++;
    }
    cmd[i] = 0;
    printf("%s\n", cmd);
    return 0;
})"));
    entries.back().stdinData = "change-password\n";

    entries.push_back(make("stack-w-05-prepend-underflow",
        "prepending shifts one slot before the start",
        BugIdiom::offByOne, W, U, R"(
int main(void) {
    int queue[8] = {0};
    int head = 0;
    queue[head] = 1;
    head--;           /* forgot the wrap-around */
    queue[head] = 2;  /* writes queue[-1] */
    printf("%d\n", queue[0]);
    return 0;
})"));

    entries.push_back(make("stack-w-06-sign-extended-index",
        "char index sign-extends negative and writes before the array",
        BugIdiom::integerOverflow, W, U, R"(
int main(void) {
    int histogram[128];
    for (int i = 0; i < 128; i++)
        histogram[i] = 0;
    char text[3];
    text[0] = 'a'; text[1] = (char)254; text[2] = 0; /* negative char */
    for (int i = 0; text[i] != 0; i++)
        histogram[text[i]] = 1; /* should cast to unsigned char */
    printf("%d\n", histogram['a']);
    return 0;
})"));

    entries.push_back(make("stack-w-07-snprintf-miscount",
        "manual length bookkeeping drifts past the buffer",
        BugIdiom::hardCodedSize, W, O, R"(
int main(void) {
    char out[10];
    int pos = 0;
    const char *words[3] = {"red", "green", "blue"};
    for (int w = 0; w < 3; w++) {
        const char *s = words[w];
        for (int i = 0; s[i] != 0; i++) {
            out[pos] = s[i]; /* never checks pos < 10 */
            pos++;
        }
    }
    out[pos] = 0;
    printf("%s\n", out);
    return 0;
})"));

    entries.push_back(make("stack-w-08-integer-overflow-size",
        "length addition overflows int and bypasses the guard",
        BugIdiom::integerOverflow, W, O, R"(
int main(void) {
    char buf[16];
    int a = 2000000000;
    int b = 2000000000;
    int need = a + b + 24; /* overflows to a small negative number */
    if (need < 16) {
        for (int i = 0; i < 24; i++)
            buf[i] = 'x';
    }
    buf[15] = 0;
    printf("%s\n", buf);
    return 0;
})"));

    entries.push_back(make("stack-w-09-swap-beyond",
        "reverse loop mirrors one element past the end",
        BugIdiom::offByOne, W, O, R"(
int main(void) {
    int data[6] = {1, 2, 3, 4, 5, 6};
    for (int i = 0; i <= 3; i++)
        data[6 - i] = data[i]; /* should be 5 - i */
    printf("%d\n", data[5]);
    return 0;
})"));

    entries.push_back(make("stack-w-10-env-name-copy",
        "name=value split trusts the input to contain '='",
        BugIdiom::missingCheck, W, O, R"(
int main(int argc, char **argv) {
    char name[8];
    const char *arg = argc > 1 ? argv[1] : "LONGVARIABLE";
    int i = 0;
    while (arg[i] != '=' && arg[i] != 0) {
        name[i] = arg[i]; /* no room check */
        i++;
    }
    name[i] = 0;
    printf("%s\n", name);
    return 0;
})"));

    entries.push_back(make("stack-w-11-wrong-sizeof",
        "memset sized by sizeof(pointer) times count",
        BugIdiom::hardCodedSize, W, O, R"(
void clear(short *vals, int count) {
    memset(vals, 0, count * 8); /* should be sizeof(short) */
}
int main(void) {
    short vals[6] = {1, 2, 3, 4, 5, 6};
    clear(vals, 6);
    printf("%d\n", vals[0]);
    return 0;
})"));

    entries.push_back(make("stack-w-12-terminator-slot",
        "writes the NUL at index size instead of size-1",
        BugIdiom::offByOne, W, O, R"(
int main(void) {
    char id[4];
    id[0] = 'a'; id[1] = 'b'; id[2] = 'c';
    id[4] = 0; /* one past the end (and skips id[3]) */
    printf("%c\n", id[0]);
    return 0;
})"));

    // Four Fig.-3-style bugs: the written buffer is never read again, so
    // an optimizer may delete the whole (out-of-bounds) store.
    entries.push_back(make("stack-w-13-deadstore-loop",
        "scratch array overflows; never read (optimizer deletes it)",
        BugIdiom::missingCheck, W, O, R"(
static int fill(unsigned long length) {
    int arr[10] = {0};
    for (unsigned long i = 0; i < length; i++)
        arr[i] = (int)i;
    return 0;
}
int main(void) { return fill(12); })"));
    entries.back().removableByO3 = true;

    entries.push_back(make("stack-w-14-deadstore-log",
        "debug log line formatted into a dead buffer",
        BugIdiom::hardCodedSize, W, O, R"(
int main(void) {
    char logline[8];
    const char *msg = "request handled";
    for (int i = 0; msg[i] != 0; i++)
        logline[i] = msg[i]; /* overflow into a never-used buffer */
    return 0;
})"));
    entries.back().removableByO3 = true;

    entries.push_back(make("stack-w-15-deadstore-padding",
        "padding area cleared with the wrong width, result unused",
        BugIdiom::hardCodedSize, W, O, R"(
int main(void) {
    long pad[4];
    for (int i = 0; i < 6; i++) /* 6 > 4 */
        pad[i] = 0;
    return 0;
})"));
    entries.back().removableByO3 = true;

    entries.push_back(make("stack-w-16-deadstore-checksum",
        "checksum table initialized past the end, then abandoned",
        BugIdiom::offByOne, W, O, R"(
static void initTable(void) {
    int table[16];
    for (int i = 0; i <= 16; i++)
        table[i] = i * 31;
}
int main(void) {
    initTable();
    return 0;
})"));
    entries.back().removableByO3 = true;

    return entries;
}

} // namespace sulong
