/**
 * @file
 * The bug corpus of the Section 4.1 evaluation.
 *
 * The paper found 68 bugs in 63 small GitHub projects. Those projects
 * are not redistributable here, so the corpus is a set of 68 synthetic
 * mini-C programs that reproduce the paper's bug population: the
 * category distribution of Table 1 (61 out-of-bounds, 5 NULL
 * dereferences, 1 use-after-free, 1 variadic-argument error), the
 * out-of-bounds splits of Table 2 (32 reads / 29 writes, 8 underflows /
 * 53 overflows, 32 stack / 17 heap / 9 global / 3 main-args), the bug
 * idioms listed in the text (strings not NUL-terminated, missing space
 * for the terminator, missing checks, integer overflow, hard-coded
 * sizes, check-after-access, off-by-one), and the five case studies of
 * Figs. 10-14.
 */

#ifndef MS_CORPUS_CORPUS_H
#define MS_CORPUS_CORPUS_H

#include <string>
#include <vector>

#include "support/error.h"

namespace sulong
{

/** The bug idioms the paper names for its out-of-bounds findings. */
enum class BugIdiom : uint8_t
{
    unterminatedString,
    missingNulSpace,
    missingCheck,
    integerOverflow,
    hardCodedSize,
    checkAfterAccess,
    offByOne,
    other,
};

const char *bugIdiomName(BugIdiom idiom);

/** One corpus program with its ground-truth bug metadata. */
struct CorpusEntry
{
    std::string id;
    std::string description;
    BugIdiom idiom = BugIdiom::other;
    /// Ground truth.
    ErrorKind kind = ErrorKind::outOfBounds;
    AccessKind access = AccessKind::read;
    StorageKind storage = StorageKind::stack;
    BoundsDirection direction = BoundsDirection::overflow;
    /// True when an aggressive optimizer can delete the buggy access
    /// (the program never observes it) — the ASan -O3 misses.
    bool removableByO3 = false;
    /// One of the Fig. 10-14 case studies.
    bool caseStudy = false;
    /// Inputs that trigger the bug.
    std::vector<std::string> args;
    std::string stdinData;
    /// The program.
    std::string source;
};

/** All 68 corpus entries. */
const std::vector<CorpusEntry> &bugCorpus();

/** Subsets used by the per-category files (exposed for tests). */
std::vector<CorpusEntry> corpusStackOob();
std::vector<CorpusEntry> corpusHeapOob();
std::vector<CorpusEntry> corpusGlobalAndArgsOob();
std::vector<CorpusEntry> corpusOtherBugs();

} // namespace sulong

#endif // MS_CORPUS_CORPUS_H
