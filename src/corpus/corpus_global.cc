/**
 * @file
 * Global (static) and main-args out-of-bounds corpus: 9 global entries
 * (4 reads / 5 writes, 1 underflow) and 3 argv/envp entries — the
 * categories Valgrind misses entirely, including the Fig. 10 (argv),
 * Fig. 13 (folded constant index) and Fig. 14 (beyond-the-redzone)
 * case studies.
 */

#include "corpus/corpus.h"

namespace sulong
{

namespace
{

CorpusEntry
make(const char *id, const char *desc, BugIdiom idiom, AccessKind access,
     StorageKind storage, BoundsDirection dir, const char *source)
{
    CorpusEntry e;
    e.id = id;
    e.description = desc;
    e.idiom = idiom;
    e.kind = ErrorKind::outOfBounds;
    e.access = access;
    e.storage = storage;
    e.direction = dir;
    e.source = source;
    return e;
}

} // namespace

std::vector<CorpusEntry>
corpusGlobalAndArgsOob()
{
    std::vector<CorpusEntry> entries;
    const auto R = AccessKind::read;
    const auto W = AccessKind::write;
    const auto G = StorageKind::global;
    const auto M = StorageKind::mainArgs;
    const auto O = BoundsDirection::overflow;
    const auto U = BoundsDirection::underflow;

    // ----- global reads (4) -----------------------------------------------

    {
        CorpusEntry e = make("global-r-01-const-index",
            "constant out-of-bounds index folded away even at -O0 "
            "(Fig. 13)", BugIdiom::hardCodedSize, R, G, O, R"(
int count[7] = {0, 0, 0, 0, 0, 0, 0};
int main(int argc, char **argv) {
    return count[7];
})");
        e.caseStudy = true;
        entries.push_back(e);
    }

    {
        CorpusEntry e = make("global-r-02-user-index",
            "unchecked user input indexes a global table far beyond the "
            "redzone (Fig. 14)", BugIdiom::missingCheck, R, G, O, R"(
const char *strings[] = {"zero", "one", "two", "three", "four",
                         "five", "six"};
/* Unrelated data that happens to sit behind the table — where the far
 * out-of-bounds read lands, past any redzone (the paper's "printed
 * (null) or crashed" scenario). */
long session_table[512];
int main(void) {
    int number = 0;
    scanf("%d", &number);
    printf("%s\n", strings[number]);
    return 0;
})");
        e.caseStudy = true;
        e.stdinData = "70\n";
        entries.push_back(e);
    }

    entries.push_back(make("global-r-03-month-table",
        "1-based month used to index a 0-based table of 12",
        BugIdiom::offByOne, R, G, O, R"(
int days_in_month[12] = {31,28,31,30,31,30,31,31,30,31,30,31};
int main(int argc, char **argv) {
    int month = argc > 1 ? atoi(argv[1]) : 12; /* 1..12 */
    printf("%d\n", days_in_month[month]); /* should be month-1 */
    return 0;
})"));

    entries.push_back(make("global-r-04-terminatorless-scan",
        "global byte table scanned for a sentinel that is not there",
        BugIdiom::missingCheck, R, G, O, R"(
char flags[6] = {1, 1, 0, 1, 1, 1};
int main(void) {
    int i = 0;
    int sum = 0;
    while (flags[i] != 9) { /* sentinel never stored */
        sum += flags[i];
        i++;
    }
    printf("%d\n", sum);
    return 0;
})"));

    // ----- global writes (5: 1 underflow) -----------------------------------

    entries.push_back(make("global-w-01-counter-array",
        "event id equal to the table size writes past the end",
        BugIdiom::offByOne, W, G, O, R"(
int event_flags[4];
static void record(int event) {
    event_flags[event] = 1; /* no range check */
}
int main(void) {
    record(1);
    record(4); /* ids are 0..3 */
    printf("%d\n", event_flags[1]);
    return 0;
})"));

    entries.push_back(make("global-w-02-static-cursor",
        "append cursor in static storage is never bounded",
        BugIdiom::missingCheck, W, G, O, R"(
char journal[8];
int journal_len = 0;
static void log_char(char c) {
    journal[journal_len] = c;
    journal_len++;
}
int main(void) {
    const char *msg = "starting up";
    for (int i = 0; msg[i] != 0; i++)
        log_char(msg[i]);
    printf("%d\n", journal_len);
    return 0;
})"));

    entries.push_back(make("global-w-03-neg-offset",
        "relative offset from the table start goes negative",
        BugIdiom::integerOverflow, W, G, U, R"(
short samples[8];
int main(int argc, char **argv) {
    int center = 0; /* should be 4 */
    int delta = -(argc + 1); /* -2 */
    samples[center + delta] = 99;
    printf("%d\n", samples[0]);
    return 0;
})"));

    entries.push_back(make("global-w-04-strcpy-into-global",
        "version string copied into a too-small global buffer",
        BugIdiom::missingNulSpace, W, G, O, R"(
char version[6];
int main(void) {
    strcpy(version, "v1.10.3"); /* 8 bytes into 6 */
    printf("%s\n", version);
    return 0;
})"));

    entries.push_back(make("global-w-05-double-length",
        "UTF-16-style expansion writes twice the buffer length",
        BugIdiom::hardCodedSize, W, G, O, R"(
char narrow[6];
char wide[8]; /* needs 12 */
int main(void) {
    strcpy(narrow, "hello");
    for (int i = 0; i < 6; i++) {
        wide[i * 2] = narrow[i];
        wide[i * 2 + 1] = 0;
    }
    printf("%c\n", wide[0]);
    return 0;
})"));

    // ----- main-args reads (3) -----------------------------------------------

    {
        CorpusEntry e = make("args-r-01-argv-fixed-index",
            "argv[5] read without checking argc (Fig. 10)",
            BugIdiom::missingCheck, R, M, O, R"(
int main(int argc, char **argv) {
    printf("%d %s\n", argc, argv[5]);
    return 0;
})");
        e.caseStudy = true;
        entries.push_back(e);
    }

    entries.push_back(make("args-r-02-argv-loop-offbyone",
        "argument loop runs through the NULL terminator and beyond",
        BugIdiom::offByOne, R, M, O, R"(
int main(int argc, char **argv) {
    long total = 0;
    for (int i = 0; i <= argc + 1; i++) { /* argv has argc+1 slots */
        if (argv[i] != 0)
            total += (long)strlen(argv[i]);
    }
    printf("%ld\n", total);
    return 0;
})"));
    entries.back().args = {"alpha", "beta"};

    entries.push_back(make("args-r-03-envp-probe",
        "environment scanned with a fixed count instead of the NULL "
        "terminator", BugIdiom::hardCodedSize, R, M, O, R"(
int main(int argc, char **argv, char **envp) {
    int printable = 0;
    for (int i = 0; i < 16; i++) { /* there are fewer than 16 */
        if (envp[i] != 0 && envp[i][0] != 0)
            printable++;
    }
    printf("%d\n", printable);
    return 0;
})"));

    return entries;
}

} // namespace sulong
