/**
 * @file
 * Heap out-of-bounds corpus: 17 entries (9 reads / 8 writes,
 * 3 underflows / 14 overflows). Heap bugs are the category both ASan
 * and Valgrind handle best, so these entries are the "found by
 * everyone" baseline of the detection matrix.
 */

#include "corpus/corpus.h"

namespace sulong
{

namespace
{

CorpusEntry
make(const char *id, const char *desc, BugIdiom idiom, AccessKind access,
     BoundsDirection dir, const char *source)
{
    CorpusEntry e;
    e.id = id;
    e.description = desc;
    e.idiom = idiom;
    e.kind = ErrorKind::outOfBounds;
    e.access = access;
    e.storage = StorageKind::heap;
    e.direction = dir;
    e.source = source;
    return e;
}

} // namespace

std::vector<CorpusEntry>
corpusHeapOob()
{
    std::vector<CorpusEntry> entries;
    const auto R = AccessKind::read;
    const auto W = AccessKind::write;
    const auto O = BoundsDirection::overflow;
    const auto U = BoundsDirection::underflow;

    // ----- reads (9: 2 underflows, 7 overflows) ---------------------------

    entries.push_back(make("heap-r-01-offbyone-sum",
        "inclusive upper bound when reducing a malloc'd array",
        BugIdiom::offByOne, R, O, R"(
int main(void) {
    int *prices = malloc(sizeof(int) * 5);
    for (int i = 0; i < 5; i++)
        prices[i] = (i + 1) * 10;
    int total = 0;
    for (int i = 0; i <= 5; i++)
        total += prices[i];
    printf("%d\n", total);
    free(prices);
    return 0;
})"));

    entries.push_back(make("heap-r-02-strdup-unterminated",
        "byte-wise duplicate of a string missing its terminator",
        BugIdiom::unterminatedString, R, O, R"(
int main(void) {
    char *raw = malloc(4);
    raw[0] = 'd'; raw[1] = 'a'; raw[2] = 't'; raw[3] = 'a';
    char *copy = strdup(raw); /* strlen overruns */
    printf("%s\n", copy);
    free(copy);
    free(raw);
    return 0;
})"));

    entries.push_back(make("heap-r-03-header-peek",
        "parser reads a 4-byte magic from a 3-byte allocation",
        BugIdiom::hardCodedSize, R, O, R"(
int main(void) {
    unsigned char *blob = malloc(3);
    blob[0] = 'E'; blob[1] = 'L'; blob[2] = 'F';
    int magic = blob[0] | (blob[1] << 8) | (blob[2] << 16) |
        (blob[3] << 24); /* fourth byte does not exist */
    printf("%d\n", magic != 0);
    free(blob);
    return 0;
})"));

    entries.push_back(make("heap-r-04-before-start",
        "length prefix expected just before the returned pointer",
        BugIdiom::other, R, U, R"(
int main(void) {
    long *data = malloc(sizeof(long) * 4);
    data[0] = 42;
    long size = data[-1]; /* allocator keeps no such header here */
    printf("%ld %ld\n", size, data[0]);
    free(data);
    return 0;
})"));

    entries.push_back(make("heap-r-05-empty-input",
        "first-character peek on a possibly empty string",
        BugIdiom::missingCheck, R, U, R"(
char *trim(char *s) {
    char *end = s + strlen(s) - 1; /* empty string: s[-1] */
    while (*end == ' ')
        end--;
    return s;
}
int main(void) {
    char *buf = malloc(1);
    buf[0] = 0; /* empty */
    printf("%s\n", trim(buf));
    free(buf);
    return 0;
})"));

    entries.push_back(make("heap-r-06-linked-list-off-end",
        "list cursor dereferences one node too many",
        BugIdiom::offByOne, R, O, R"(
struct node { int value; struct node *next; };
int main(void) {
    struct node *nodes = malloc(sizeof(struct node) * 3);
    for (int i = 0; i < 3; i++) {
        nodes[i].value = i * 2;
        nodes[i].next = 0;
    }
    int acc = 0;
    for (int i = 0; i < 4; i++) /* 4 > 3 */
        acc += nodes[i].value;
    printf("%d\n", acc);
    free(nodes);
    return 0;
})"));

    entries.push_back(make("heap-r-07-csv-missing-column",
        "column split trusts each row to contain a comma",
        BugIdiom::missingCheck, R, O, R"(
int main(void) {
    char *row = malloc(6);
    strcpy(row, "ab cd"); /* no comma */
    int i = 0;
    while (row[i] != ',')
        i++;
    printf("%d\n", i);
    free(row);
    return 0;
})"));

    entries.push_back(make("heap-r-08-shrunk-realloc",
        "old length used after realloc shrank the buffer",
        BugIdiom::hardCodedSize, R, O, R"(
int main(void) {
    int *v = malloc(sizeof(int) * 8);
    for (int i = 0; i < 8; i++)
        v[i] = i;
    int old_len = 8;
    v = realloc(v, sizeof(int) * 4);
    int acc = 0;
    for (int i = 0; i < old_len; i++)
        acc += v[i];
    printf("%d\n", acc);
    free(v);
    return 0;
})"));

    entries.push_back(make("heap-r-09-size-vs-count",
        "byte size passed where an element count was expected",
        BugIdiom::other, R, O, R"(
long sum(const long *vals, unsigned long n) {
    long acc = 0;
    for (unsigned long i = 0; i < n; i++)
        acc += vals[i];
    return acc;
}
int main(void) {
    unsigned long bytes = sizeof(long) * 2;
    long *vals = malloc(bytes);
    vals[0] = 5;
    vals[1] = 7;
    printf("%ld\n", sum(vals, bytes)); /* 16 instead of 2 */
    free(vals);
    return 0;
})"));

    // ----- writes (8: 1 underflow, 7 overflows) ----------------------------

    entries.push_back(make("heap-w-01-missing-nul-space",
        "malloc(strlen(s)) forgets the terminator byte",
        BugIdiom::missingNulSpace, W, O, R"(
int main(void) {
    const char *src = "payload";
    char *copy = malloc(strlen(src)); /* needs +1 */
    strcpy(copy, src);
    printf("%s\n", copy);
    free(copy);
    return 0;
})"));

    entries.push_back(make("heap-w-02-calloc-offbyone",
        "writes the sentinel at index count",
        BugIdiom::offByOne, W, O, R"(
int main(void) {
    int n = 6;
    int *slots = calloc(n, sizeof(int));
    for (int i = 0; i < n; i++)
        slots[i] = i;
    slots[n] = -1; /* sentinel one past the end */
    printf("%d\n", slots[0]);
    free(slots);
    return 0;
})"));

    entries.push_back(make("heap-w-03-concat-growth",
        "append without growing the allocation",
        BugIdiom::missingCheck, W, O, R"(
int main(void) {
    char *line = malloc(8);
    strcpy(line, "status:");
    strcat(line, "ok"); /* 10 bytes into 8 */
    printf("%s\n", line);
    free(line);
    return 0;
})"));

    entries.push_back(make("heap-w-04-prefix-insert",
        "shifting right to make room walks one slot too far",
        BugIdiom::offByOne, W, O, R"(
int main(void) {
    int *list = malloc(sizeof(int) * 4);
    for (int i = 0; i < 4; i++)
        list[i] = i + 1;
    for (int i = 3; i >= 0; i--)
        list[i + 1] = list[i]; /* writes list[4] */
    list[0] = 0;
    printf("%d\n", list[1]);
    free(list);
    return 0;
})"));

    entries.push_back(make("heap-w-05-header-stamp",
        "tool writes a tag just before the user pointer",
        BugIdiom::other, W, U, R"(
int main(void) {
    char *obj = malloc(16);
    obj[-1] = 0x7f; /* "type tag" before the block */
    obj[0] = 1;
    printf("%d\n", obj[0]);
    free(obj);
    return 0;
})"));

    entries.push_back(make("heap-w-06-wide-store",
        "64-bit store into a 4-byte slot at the end of the block",
        BugIdiom::other, W, O, R"(
int main(void) {
    char *buf = malloc(12);
    long *last = (long *)(buf + 8);
    *last = 0x1122334455667788L; /* 8 bytes at offset 8 of 12 */
    printf("%d\n", buf[0]);
    free(buf);
    return 0;
})"));

    entries.push_back(make("heap-w-07-fixed-table-guess",
        "allocation sized for 10 entries, producer emits 12",
        BugIdiom::hardCodedSize, W, O, R"(
int emit(short *out) {
    for (int i = 0; i < 12; i++)
        out[i] = (short)(i * 3);
    return 12;
}
int main(void) {
    short *table = malloc(sizeof(short) * 10);
    int n = emit(table);
    printf("%d %d\n", n, table[2]);
    free(table);
    return 0;
})"));

    entries.push_back(make("heap-w-08-read-into-heap",
        "stdin token copied into an 8-byte heap buffer",
        BugIdiom::missingCheck, W, O, R"(
int main(void) {
    char *word = malloc(8);
    int i = 0;
    int c;
    while ((c = getchar()) != -1 && c != '\n') {
        word[i] = (char)c; /* no capacity check */
        i++;
    }
    word[i] = 0;
    printf("%s\n", word);
    free(word);
    return 0;
})"));
    entries.back().stdinData = "supercalifrag\n";

    return entries;
}

} // namespace sulong
