#include "corpus/harness.h"

#include <chrono>
#include <sstream>

#include "support/string_utils.h"

namespace sulong
{

DetectionOutcome
classifyOutcome(const CorpusEntry &entry, const ExecutionResult &result)
{
    DetectionOutcome outcome;
    outcome.report = result.bug;
    // A non-normal termination (resource limit, timeout, cancellation,
    // host fault) means the engine gave up before a verdict.
    if (result.termination != TerminationKind::normal ||
        result.bug.kind == ErrorKind::engineError) {
        outcome.error = true;
        return outcome;
    }
    switch (entry.kind) {
      case ErrorKind::outOfBounds:
        outcome.detected = result.bug.kind == ErrorKind::outOfBounds;
        outcome.indirect = result.bug.kind == ErrorKind::uninitRead &&
            entry.access == AccessKind::read;
        break;
      case ErrorKind::useAfterFree:
        outcome.detected = result.bug.kind == ErrorKind::useAfterFree;
        break;
      case ErrorKind::nullDeref:
        outcome.detected = result.bug.kind == ErrorKind::nullDeref;
        break;
      case ErrorKind::varargs:
        outcome.detected = result.bug.kind == ErrorKind::varargs;
        break;
      default:
        outcome.detected = result.bug.kind == entry.kind;
        break;
    }
    return outcome;
}

namespace
{

MatrixRow
foldRow(const ToolConfig &config, const std::vector<CorpusEntry> &entries,
        const ExecutionResult *results)
{
    MatrixRow row;
    row.tool = config.toString();
    for (size_t i = 0; i < entries.size(); i++) {
        DetectionOutcome outcome = classifyOutcome(entries[i], results[i]);
        row.directCount += outcome.detected ? 1 : 0;
        row.indirectCount += outcome.indirect ? 1 : 0;
        row.errorCount += outcome.error ? 1 : 0;
        row.outcomes.push_back(std::move(outcome));
    }
    return row;
}

} // namespace

ResourceLimits
corpusRunLimits()
{
    // Generous for any correct corpus program, tight enough that a
    // misbehaving cell terminates in well under a second instead of
    // wedging a worker or exhausting host memory.
    ResourceLimits limits;
    limits.maxSteps = 50'000'000;
    limits.maxCallDepth = 3'000;
    limits.maxHeapBytes = 256ull * 1024 * 1024;
    limits.maxHeapAllocations = 1'000'000;
    limits.maxOutputBytes = 16ull * 1024 * 1024;
    limits.deadlineMs = 0; // keep corpus outcomes time-independent
    return limits;
}

std::vector<MatrixRow>
runDetectionMatrix(const std::vector<CorpusEntry> &entries,
                   const std::vector<ToolConfig> &tools)
{
    std::vector<MatrixRow> rows;
    for (const ToolConfig &config : tools) {
        std::vector<ExecutionResult> results;
        results.reserve(entries.size());
        for (const CorpusEntry &entry : entries) {
            results.push_back(runUnderTool(
                entry.source, config, entry.args, entry.stdinData));
        }
        rows.push_back(foldRow(config, entries, results.data()));
    }
    return rows;
}

std::vector<MatrixRow>
runDetectionMatrix(const std::vector<CorpusEntry> &entries,
                   const std::vector<ToolConfig> &tools,
                   const BatchOptions &options,
                   CompileCacheStats *cache_stats,
                   const ResourceLimits *job_limits)
{
    ResourceLimits limits =
        job_limits != nullptr ? *job_limits : corpusRunLimits();
    // Tool-major job order mirrors the serial overload, so cell
    // (tool r, entry i) is job r * |entries| + i.
    std::vector<BatchJob> jobs;
    jobs.reserve(tools.size() * entries.size());
    for (const ToolConfig &config : tools) {
        for (const CorpusEntry &entry : entries) {
            jobs.push_back(BatchJob::make(entry.source, config, entry.args,
                                          entry.stdinData));
            jobs.back().limits = limits;
        }
    }

    BatchReport report = runBatch(jobs, options);
    if (cache_stats != nullptr)
        *cache_stats = report.cacheStats;

    std::vector<MatrixRow> rows;
    rows.reserve(tools.size());
    for (size_t r = 0; r < tools.size(); r++) {
        rows.push_back(foldRow(tools[r], entries,
                               report.results.data() + r * entries.size()));
    }
    return rows;
}

std::string
formatTable1(const std::vector<CorpusEntry> &entries)
{
    unsigned oob = 0, nulls = 0, uaf = 0, varargs = 0, other = 0;
    for (const auto &entry : entries) {
        switch (entry.kind) {
          case ErrorKind::outOfBounds: oob++; break;
          case ErrorKind::nullDeref: nulls++; break;
          case ErrorKind::useAfterFree: uaf++; break;
          case ErrorKind::varargs: varargs++; break;
          default: other++; break;
        }
    }
    std::ostringstream os;
    os << "Table 1: error distribution of the corpus\n";
    os << "  Buffer overflows    " << padLeft(std::to_string(oob), 4) << "\n";
    os << "  NULL dereferences   " << padLeft(std::to_string(nulls), 4)
       << "\n";
    os << "  Use-after-free      " << padLeft(std::to_string(uaf), 4) << "\n";
    os << "  Varargs             " << padLeft(std::to_string(varargs), 4)
       << "\n";
    if (other > 0)
        os << "  Other               " << padLeft(std::to_string(other), 4)
           << "\n";
    os << "  Total               "
       << padLeft(std::to_string(entries.size()), 4) << "\n";
    return os.str();
}

std::string
formatTable2(const std::vector<CorpusEntry> &entries)
{
    unsigned reads = 0, writes = 0, under = 0, over = 0;
    unsigned stack = 0, heap = 0, global = 0, main_args = 0;
    for (const auto &entry : entries) {
        if (entry.kind != ErrorKind::outOfBounds)
            continue;
        (entry.access == AccessKind::read ? reads : writes)++;
        (entry.direction == BoundsDirection::underflow ? under : over)++;
        switch (entry.storage) {
          case StorageKind::stack: stack++; break;
          case StorageKind::heap: heap++; break;
          case StorageKind::global: global++; break;
          case StorageKind::mainArgs: main_args++; break;
          default: break;
        }
    }
    std::ostringstream os;
    os << "Table 2: distribution of out-of-bounds accesses\n";
    os << "  Read  " << padLeft(std::to_string(reads), 3)
       << "   Underflow " << padLeft(std::to_string(under), 3)
       << "   Stack     " << padLeft(std::to_string(stack), 3) << "\n";
    os << "  Write " << padLeft(std::to_string(writes), 3)
       << "   Overflow  " << padLeft(std::to_string(over), 3)
       << "   Heap      " << padLeft(std::to_string(heap), 3) << "\n";
    os << "                          "
       << "Global    " << padLeft(std::to_string(global), 3) << "\n";
    os << "                          "
       << "Main args " << padLeft(std::to_string(main_args), 3) << "\n";
    return os.str();
}

std::string
formatMatrix(const std::vector<CorpusEntry> &entries,
             const std::vector<MatrixRow> &rows)
{
    std::ostringstream os;
    os << "Detection matrix over " << entries.size() << " corpus bugs\n";
    os << "  " << padRight("tool", 14) << padLeft("found", 7)
       << padLeft("indirect", 10) << padLeft("missed", 8) << "\n";
    for (const auto &row : rows) {
        unsigned missed = static_cast<unsigned>(entries.size()) -
            row.directCount - row.indirectCount;
        os << "  " << padRight(row.tool, 14)
           << padLeft(std::to_string(row.directCount), 7)
           << padLeft(std::to_string(row.indirectCount), 10)
           << padLeft(std::to_string(missed), 8);
        if (row.errorCount > 0)
            os << "  (" << row.errorCount << " errors)";
        os << "\n";
    }
    return os.str();
}

unsigned
CrossValidationReport::falseDefinites() const
{
    unsigned n = 0;
    for (const CrossValidationRow &row : rows)
        n += row.falseDefinite ? 1 : 0;
    return n;
}

unsigned
CrossValidationReport::definiteHits() const
{
    unsigned n = 0;
    for (const CrossValidationRow &row : rows)
        n += row.definiteHit ? 1 : 0;
    return n;
}

unsigned
CrossValidationReport::staticHits() const
{
    unsigned n = 0;
    for (const CrossValidationRow &row : rows)
        n += row.staticHit ? 1 : 0;
    return n;
}

double
CrossValidationReport::recall() const
{
    return rows.empty() ? 0.0
                        : static_cast<double>(staticHits()) /
            static_cast<double>(rows.size());
}

double
CrossValidationReport::definiteRecall() const
{
    return rows.empty() ? 0.0
                        : static_cast<double>(definiteHits()) /
            static_cast<double>(rows.size());
}

CrossValidationReport
crossValidateCorpus(const std::vector<CorpusEntry> &entries,
                    const AnalysisOptions &base, CompileCache *cache)
{
    CrossValidationReport report;
    auto start = std::chrono::steady_clock::now();

    // The oracle is the engine the refutation stage models: Safe Sulong
    // with uninitialized-read detection on, under the corpus budget.
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.detectUninitReads = true;

    for (const CorpusEntry &entry : entries) {
        CrossValidationRow row;
        row.id = entry.id;
        row.expectedKind = entry.kind;
        row.expected = bugClassOfError(entry.kind);

        PreparedProgram prepared = prepareProgram(entry.source, config, cache);
        if (!prepared.ok()) {
            row.dynamicError = true;
            report.rows.push_back(std::move(row));
            continue;
        }

        AnalysisOptions options = base;
        options.replayArgs = entry.args;
        options.replayStdin = entry.stdinData;
        AnalysisReport analysis = analyzeModule(*prepared.module, options);
        row.replayOutcome = analysis.replayOutcome;
        row.refutedCount = static_cast<unsigned>(analysis.refutations.size());
        row.summariesApplied = analysis.summariesApplied;

        prepared.engine->limits() = corpusRunLimits();
        ExecutionResult dynamic = prepared.run(entry.args, entry.stdinData);
        row.dynamicReport = dynamic.bug;
        row.dynamicError =
            dynamic.termination != TerminationKind::normal ||
            dynamic.bug.kind == ErrorKind::engineError;

        for (const StaticFinding &f : analysis.findings) {
            bool definite = f.confidence == Confidence::definite;
            (definite ? row.definiteCount : row.maybeCount)++;
            if (f.kind == entry.kind) {
                row.staticHit = true;
                row.definiteHit = row.definiteHit || definite;
            }
            if (definite &&
                (row.dynamicError || dynamic.bug.kind != f.kind))
                row.falseDefinite = true;
        }
        report.rows.push_back(std::move(row));
    }

    report.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return report;
}

std::string
formatCrossValidation(const CrossValidationReport &report)
{
    unsigned definiteTotal = 0, maybeTotal = 0;
    for (const CrossValidationRow &row : report.rows) {
        definiteTotal += row.definiteCount;
        maybeTotal += row.maybeCount;
    }
    std::ostringstream os;
    os << "Static/dynamic cross-validation over " << report.rows.size()
       << " corpus bugs\n";
    os << "  definite findings   " << padLeft(std::to_string(definiteTotal), 5)
       << "\n";
    os << "  maybe findings      " << padLeft(std::to_string(maybeTotal), 5)
       << "\n";
    os << "  false definites     "
       << padLeft(std::to_string(report.falseDefinites()), 5) << "\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%u/%zu (%.1f%%)", report.staticHits(),
                  report.rows.size(), report.recall() * 100.0);
    os << "  static recall       " << buf << "\n";
    std::snprintf(buf, sizeof buf, "%u/%zu (%.1f%%)", report.definiteHits(),
                  report.rows.size(), report.definiteRecall() * 100.0);
    os << "  definite recall     " << buf << "\n";
    for (const CrossValidationRow &row : report.rows) {
        if (!row.falseDefinite)
            continue;
        os << "  FALSE DEFINITE " << row.id << ": static definite vs dynamic "
           << errorKindName(row.dynamicReport.kind)
           << (row.dynamicError ? " (oracle error)" : "")
           << " [replay: " << row.replayOutcome << "]\n";
    }
    for (const CrossValidationRow &row : report.rows) {
        if (row.staticHit || row.falseDefinite)
            continue;
        os << "  missed " << row.id << " ("
           << errorKindName(row.expectedKind) << ") [replay: "
           << row.replayOutcome << "]\n";
    }
    return os.str();
}

std::vector<std::string>
exclusiveDetections(const std::vector<CorpusEntry> &entries,
                    const std::vector<MatrixRow> &rows,
                    bool count_indirect_as_found)
{
    std::vector<std::string> ids;
    if (rows.empty())
        return ids;
    for (size_t i = 0; i < entries.size(); i++) {
        if (!rows[0].outcomes[i].detected)
            continue;
        bool found_elsewhere = false;
        for (size_t r = 1; r < rows.size(); r++) {
            const DetectionOutcome &cell = rows[r].outcomes[i];
            if (cell.detected ||
                (count_indirect_as_found && cell.indirect)) {
                found_elsewhere = true;
                break;
            }
        }
        if (!found_elsewhere)
            ids.push_back(entries[i].id);
    }
    return ids;
}

} // namespace sulong
