#include "analysis/solver.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace sulong
{

namespace
{

using int128 = __int128;

constexpr unsigned kMaxPropagationPasses = 256;
constexpr unsigned kMaxSearchDepth = 16;
constexpr unsigned kSearchNodeBudget = 64;

int64_t
clamp128(int128 v)
{
    if (v > int128{INT64_MAX})
        return INT64_MAX;
    if (v < int128{INT64_MIN})
        return INT64_MIN;
    return static_cast<int64_t>(v);
}

int64_t
satAdd(int64_t a, int64_t b)
{
    return clamp128(int128{a} + int128{b});
}

/// floor(a / b) over exact 128-bit intermediates; b != 0.
int64_t
floorDiv128(int128 a, int64_t b)
{
    int128 q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0)))
        q--;
    return clamp128(q);
}

/// ceil(a / b) over exact 128-bit intermediates; b != 0.
int64_t
ceilDiv128(int128 a, int64_t b)
{
    int128 q = a / b;
    if ((a % b) != 0 && ((a < 0) == (b < 0)))
        q++;
    return clamp128(q);
}

/// Saturating image of @p x under v -> mul*v + add.
Interval
affineImage(const Interval &x, int64_t mul, int64_t add)
{
    if (x.isEmpty())
        return x;
    int128 lo = int128{mul} * x.lo + add;
    int128 hi = int128{mul} * x.hi + add;
    if (mul < 0)
        std::swap(lo, hi);
    return Interval::range(clamp128(lo), clamp128(hi));
}

/// Exact preimage of @p y under v -> mul*v + add (mul != 0): the x
/// values whose image lies inside y.
Interval
affinePreimage(const Interval &y, int64_t mul, int64_t add)
{
    if (y.isEmpty())
        return y;
    int128 lo = int128{y.lo} - add;
    int128 hi = int128{y.hi} - add;
    int64_t xlo, xhi;
    if (mul > 0) {
        xlo = ceilDiv128(lo, mul);
        xhi = floorDiv128(hi, mul);
    } else {
        xlo = ceilDiv128(hi, mul);
        xhi = floorDiv128(lo, mul);
    }
    if (xlo > xhi)
        return Interval::empty();
    return Interval::range(xlo, xhi);
}

} // namespace

int
SmtLite::addVar(const Interval &domain, std::string name)
{
    domains_.push_back(domain);
    names_.push_back(std::move(name));
    return static_cast<int>(domains_.size()) - 1;
}

void
SmtLite::addEq(int a, int b, int64_t mul, int64_t add)
{
    eqs_.push_back({a, b, mul, add});
}

void
SmtLite::addLe(int a, int b, int64_t k)
{
    les_.push_back({a, b, k});
}

void
SmtLite::addNeq(int v, int64_t c)
{
    neqs_.push_back({v, c});
}

std::string
SmtLite::varName(int v) const
{
    if (v >= 0 && static_cast<size_t>(v) < names_.size() &&
        !names_[v].empty())
        return names_[v];
    std::string out = "v";
    out += std::to_string(v);
    return out;
}

std::string
SmtLite::describeEq(const Eq &eq) const
{
    std::ostringstream os;
    os << varName(eq.a) << " = " << eq.mul << "*" << varName(eq.b);
    if (eq.add != 0)
        os << (eq.add > 0 ? " + " : " - ") << std::abs(eq.add);
    return os.str();
}

std::string
SmtLite::describeLe(const Le &le) const
{
    std::ostringstream os;
    os << varName(le.a) << " <= ";
    if (le.b == kConst) {
        os << le.k;
    } else {
        os << varName(le.b);
        if (le.k != 0)
            os << (le.k > 0 ? " + " : " - ") << std::abs(le.k);
    }
    return os.str();
}

bool
SmtLite::propagate(std::vector<Interval> &dom, std::string &reason) const
{
    for (size_t v = 0; v < dom.size(); v++) {
        if (dom[v].isEmpty()) {
            reason = "domain of " + varName(static_cast<int>(v)) +
                " is empty";
            return false;
        }
    }
    for (unsigned pass = 0; pass < kMaxPropagationPasses; pass++) {
        bool changed = false;
        auto narrow = [&](int v, const Interval &to,
                          const std::string &why) {
            Interval met = dom[v].meet(to);
            if (met == dom[v])
                return true;
            dom[v] = met;
            changed = true;
            if (met.isEmpty()) {
                reason = varName(v) + " emptied by " + why;
                return false;
            }
            return true;
        };
        for (const Le &le : les_) {
            if (le.b == kConst) {
                if (!narrow(le.a,
                            Interval::range(INT64_MIN, le.k),
                            describeLe(le)))
                    return false;
                continue;
            }
            // a <= b + k: a.hi <= b.hi + k, b.lo >= a.lo - k.
            if (!narrow(le.a,
                        Interval::range(INT64_MIN,
                                        satAdd(dom[le.b].hi, le.k)),
                        describeLe(le)))
                return false;
            if (!narrow(le.b,
                        Interval::range(satAdd(dom[le.a].lo, -le.k),
                                        INT64_MAX),
                        describeLe(le)))
                return false;
        }
        for (const Eq &eq : eqs_) {
            if (!narrow(eq.a, affineImage(dom[eq.b], eq.mul, eq.add),
                        describeEq(eq)))
                return false;
            if (!narrow(eq.b, affinePreimage(dom[eq.a], eq.mul, eq.add),
                        describeEq(eq)))
                return false;
        }
        for (const Neq &neq : neqs_) {
            Interval d = dom[neq.v];
            if (d.isSingleton() && d.lo == neq.c) {
                dom[neq.v] = Interval::empty();
                reason = varName(neq.v) + " emptied by " +
                    varName(neq.v) + " != " + std::to_string(neq.c);
                return false;
            }
            if (d.lo == neq.c) {
                dom[neq.v].lo = satAdd(neq.c, 1);
                changed = true;
            } else if (d.hi == neq.c) {
                dom[neq.v].hi = satAdd(neq.c, -1);
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    // Unconverged after the pass budget: the narrowed domains so far are
    // still a sound over-approximation, so the caller may proceed.
    return true;
}

bool
SmtLite::verifyModel(const std::vector<int64_t> &model) const
{
    for (size_t v = 0; v < domains_.size(); v++) {
        if (!domains_[v].contains(model[v]))
            return false;
    }
    for (const Eq &eq : eqs_) {
        if (int128{model[eq.a]} !=
            int128{eq.mul} * model[eq.b] + eq.add)
            return false;
    }
    for (const Le &le : les_) {
        int128 rhs = le.b == kConst ? int128{le.k}
                                    : int128{model[le.b]} + le.k;
        if (int128{model[le.a]} > rhs)
            return false;
    }
    for (const Neq &neq : neqs_) {
        if (model[neq.v] == neq.c)
            return false;
    }
    return true;
}

bool
SmtLite::searchModel(std::vector<Interval> dom, unsigned depth,
                     unsigned &budget, std::vector<int64_t> &model) const
{
    if (budget == 0 || depth > kMaxSearchDepth)
        return false;
    budget--;
    std::string reason;
    if (!propagate(dom, reason))
        return false;
    int split = -1;
    for (size_t v = 0; v < dom.size(); v++) {
        if (!dom[v].isSingleton()) {
            split = static_cast<int>(v);
            break;
        }
    }
    if (split < 0) {
        std::vector<int64_t> candidate(dom.size());
        for (size_t v = 0; v < dom.size(); v++)
            candidate[v] = dom[v].lo;
        if (!verifyModel(candidate))
            return false;
        model = std::move(candidate);
        return true;
    }
    const Interval d = dom[split];
    int64_t mid =
        clamp128((int128{d.lo} + int128{d.hi}) / 2);
    const int64_t candidates[] = {d.lo, d.hi, mid};
    for (int64_t c : candidates) {
        std::vector<Interval> child = dom;
        child[split] = Interval::of(c);
        if (searchModel(std::move(child), depth + 1, budget, model))
            return true;
    }
    return false;
}

SmtLite::Outcome
SmtLite::solve() const
{
    Outcome out;
    std::vector<Interval> dom = domains_;
    if (!propagate(dom, out.reason)) {
        // Top-level propagation emptied a domain: a genuine proof of
        // unsatisfiability (every step only removed impossible values).
        out.result = Result::unsat;
        return out;
    }
    unsigned budget = kSearchNodeBudget;
    std::vector<int64_t> model;
    if (searchModel(std::move(dom), 0, budget, model) &&
        verifyModel(model)) {
        out.result = Result::sat;
        out.model = std::move(model);
        std::ostringstream os;
        for (size_t v = 0; v < out.model.size(); v++) {
            if (v)
                os << ", ";
            os << varName(static_cast<int>(v)) << "=" << out.model[v];
        }
        out.reason = os.str();
        return out;
    }
    // The lo/mid/hi search is incomplete, so failing to find a model is
    // not a proof of unsatisfiability.
    out.result = Result::unknown;
    out.reason = "no model within search budget";
    return out;
}

} // namespace sulong
