/**
 * @file
 * Bounded concrete replay (refuter.h).
 *
 * A deliberately conservative re-implementation of the managed engine's
 * semantics: every value is either fully concrete or poison, and the
 * replay throws `Inconclusive` the moment poison (or a construct whose
 * dynamic outcome we are not byte-for-byte sure of: host-address
 * pointer comparisons, division by zero, pointer bits in primitive
 * regions, accesses spanning leaf struct fields) would influence
 * control flow, addressing or a reported fault. Everything the replay
 * *does* report therefore happened along a concrete prefix the dynamic
 * engine executes identically — which is what makes replay-confirmed
 * findings safe to publish as `definite`.
 */

#include "analysis/refuter.h"

#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "ir/module.h"

namespace sulong
{

namespace
{

/// Canonical integer representation: masked to width, sign-extended.
int64_t
canonInt(int64_t v, unsigned bits)
{
    if (bits >= 64)
        return v;
    uint64_t mask = (uint64_t{1} << bits) - 1;
    uint64_t raw = static_cast<uint64_t>(v) & mask;
    if (raw & (uint64_t{1} << (bits - 1)))
        raw |= ~mask;
    return static_cast<int64_t>(raw);
}

uint64_t
zextInt(int64_t v, unsigned bits)
{
    if (bits >= 64)
        return static_cast<uint64_t>(v);
    return static_cast<uint64_t>(v) & ((uint64_t{1} << bits) - 1);
}

/** A concrete (or poison) runtime value. */
struct RValue
{
    enum class Kind : uint8_t
    {
        poison,
        intVal,
        fpVal,
        ptr,
        fnptr,
    };

    Kind kind = Kind::poison;
    int64_t i = 0;       ///< canonical integer
    unsigned bits = 64;  ///< integer width
    double f = 0;
    int obj = -1;        ///< pointer target object; -1 = null pointee
    int64_t off = 0;     ///< pointer offset
    const Function *fn = nullptr;

    static RValue poison() { return {}; }
    static RValue makeInt(int64_t v, unsigned bits)
    {
        RValue r;
        r.kind = Kind::intVal;
        r.bits = bits;
        r.i = canonInt(v, bits);
        return r;
    }
    static RValue makeFP(double v)
    {
        RValue r;
        r.kind = Kind::fpVal;
        r.f = v;
        return r;
    }
    static RValue makePtr(int obj, int64_t off)
    {
        RValue r;
        r.kind = Kind::ptr;
        r.obj = obj;
        r.off = off;
        return r;
    }
    static RValue makeFn(const Function *fn)
    {
        RValue r;
        r.kind = Kind::fnptr;
        r.fn = fn;
        return r;
    }

    bool isPoison() const { return kind == Kind::poison; }
    bool isNull() const { return kind == Kind::ptr && obj < 0; }
};

/// Per-byte shadow state of replay memory.
enum class ByteState : uint8_t
{
    uninit,
    init,
    ptrPart,  ///< part of an 8-byte slot tracked in `slots`
    poisoned, ///< holds bytes of a poison store
};

/** One replay memory object. */
struct RObject
{
    /// Class of an object with no static type (raw malloc, argv
    /// internals, vararg boxes): fixed on first scalar access like the
    /// managed heap's materialization.
    enum class DynClass : uint8_t
    {
        none,
        primitive,
        address,
        varargs,
    };

    StorageKind storage = StorageKind::unknown;
    const Type *type = nullptr; ///< element type when statically known
    DynClass dynClass = DynClass::none;
    uint64_t size = 0;
    bool freed = false;
    /// Stack/heap bytes are uninit-tracked; global/argv storage is
    /// zero-backed and always initialized (managed engine behavior).
    std::vector<uint8_t> bytes;
    std::vector<ByteState> state;
    /// 8-byte slot values of address regions, keyed by byte offset.
    std::map<uint64_t, RValue> slots;
    /// Varargs object payload (boxed argument object ids) and cursor.
    std::vector<int> vaBoxes;
    size_t vaCursor = 0;
    std::string name;
};

/// Thrown when the replay cannot stay bit-faithful.
struct Inconclusive
{
    std::string reason;
};

/// Thrown after Replayer::fault_ has been filled in.
struct Faulted
{
};

/// Thrown on exit() / return from main.
struct Exited
{
};

/** The whole-program interpreter. */
class Replayer
{
  public:
    Replayer(const Module &module, const AnalysisOptions &options)
        : module_(module), options_(options)
    {
    }

    ReplayResult run();

  private:
    struct Frame
    {
        const Function *fn = nullptr;
        std::vector<RValue> slots;
        std::vector<RValue> varargs;
    };

    // Setup.
    void setupGlobals();
    void applyInit(RObject &obj, const Type *type, const Initializer &init,
                   uint64_t off);
    int makeStringArrayObject(const std::vector<std::string> &strings,
                              const char *name);
    int makeStringObject(const std::string &text);

    // Execution.
    RValue callFunction(const Function &fn, std::vector<RValue> args);
    RValue evalOperand(const Value *v, const Frame &frame) const;
    RValue execInstruction(const Instruction &inst, Frame &frame);
    RValue execCall(const Instruction &inst, Frame &frame);
    bool evalICmpValues(IntPred pred, const RValue &l, const RValue &r);
    RValue callIntrinsic(const Instruction &inst, const Function &callee,
                         std::vector<RValue> args, Frame &frame);
    int boxVararg(const RValue &v);

    // Memory.
    int newObject(StorageKind storage, const Type *type, uint64_t size,
                  bool zeroed, std::string name);
    RObject &object(int id) { return objects_[id]; }
    void checkAccess(const RValue &ptr, uint64_t width, AccessKind access);
    RValue loadValue(const RValue &ptr, const Type *type);
    void storeValue(const RValue &ptr, const Type *type, const RValue &v);
    RValue loadByte(const RValue &ptr); ///< checked i8 read (sys_write)

    struct Region
    {
        uint64_t start = 0;
        uint64_t size = 0;
        /// Scalar leaf type; null for untyped whole-object regions.
        const Type *scalar = nullptr;
    };
    /// Resolves the leaf region containing [off, off+width) or throws
    /// Inconclusive when the access straddles leaf boundaries.
    Region resolveRegion(RObject &o, uint64_t off, uint64_t width,
                         bool pointerAccess);

    // Faults.
    [[noreturn]] void fault(ErrorKind kind, AccessKind access,
                            const RObject *obj, BoundsDirection direction,
                            std::optional<int64_t> offset,
                            std::optional<int64_t> objectSize,
                            std::string detail);
    [[noreturn]] void stop(std::string reason) { throw Inconclusive{std::move(reason)}; }
    void step()
    {
        if (++steps_ > options_.replaySteps)
            stop("replay step budget exhausted");
    }

    std::string describe(const RObject &o) const;

    const Module &module_;
    const AnalysisOptions &options_;
    std::vector<RObject> objects_;
    std::map<const GlobalVariable *, int> globalObj_;
    uint64_t heapUsed_ = 0;
    unsigned depth_ = 0;
    uint64_t steps_ = 0;
    size_t stdinPos_ = 0;

    // Fault anchoring: the instruction currently executing.
    const Function *curFn_ = nullptr;
    unsigned curBlock_ = 0;
    unsigned curInst_ = 0;
    SourceLoc curLoc_;

    std::optional<StaticFinding> fault_;

    friend struct FaultAccess;
};

// ---------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------

int
Replayer::newObject(StorageKind storage, const Type *type, uint64_t size,
                    bool zeroed, std::string name)
{
    RObject o;
    o.storage = storage;
    o.type = type;
    o.size = size;
    o.bytes.assign(size, 0);
    o.state.assign(size, zeroed ? ByteState::init : ByteState::uninit);
    o.name = std::move(name);
    objects_.push_back(std::move(o));
    return static_cast<int>(objects_.size()) - 1;
}

void
Replayer::applyInit(RObject &obj, const Type *type, const Initializer &init,
                    uint64_t off)
{
    switch (init.kind) {
      case Initializer::Kind::zero:
        return;
      case Initializer::Kind::intVal: {
        uint64_t w = type->size();
        if (type->isPointer()) {
            // A zero stays zero-backed (reads as null); any other
            // integer-as-pointer constant is untrackable.
            if (init.intValue != 0)
                for (uint64_t k = 0; k < w && off + k < obj.size; k++)
                    obj.state[off + k] = ByteState::poisoned;
            return;
        }
        uint64_t raw = static_cast<uint64_t>(init.intValue);
        for (uint64_t k = 0; k < w && off + k < obj.size; k++)
            obj.bytes[off + k] = static_cast<uint8_t>(raw >> (8 * k));
        return;
      }
      case Initializer::Kind::fpVal: {
        uint64_t w = type->size();
        if (w == 4) {
            float f = static_cast<float>(init.fpValue);
            std::memcpy(obj.bytes.data() + off, &f, 4);
        } else {
            std::memcpy(obj.bytes.data() + off, &init.fpValue, 8);
        }
        return;
      }
      case Initializer::Kind::bytes: {
        for (size_t k = 0; k < init.bytes.size() && off + k < obj.size; k++)
            obj.bytes[off + k] = static_cast<uint8_t>(init.bytes[k]);
        return;
      }
      case Initializer::Kind::array: {
        const Type *elem = type->elemType();
        uint64_t esz = elem->size();
        for (size_t k = 0; k < init.elems.size(); k++)
            applyInit(obj, elem, init.elems[k], off + k * esz);
        return;
      }
      case Initializer::Kind::structVal: {
        const auto &fields = type->fields();
        for (size_t k = 0; k < init.elems.size() && k < fields.size(); k++)
            applyInit(obj, fields[k].type, init.elems[k],
                      off + fields[k].offset);
        return;
      }
      case Initializer::Kind::globalRef: {
        auto it = globalObj_.find(init.global);
        RValue p = it == globalObj_.end()
            ? RValue::makePtr(-1, init.addend)
            : RValue::makePtr(it->second, init.addend);
        obj.slots[off] = p;
        for (uint64_t k = 0; k < 8 && off + k < obj.size; k++)
            obj.state[off + k] = ByteState::ptrPart;
        return;
      }
      case Initializer::Kind::functionRef: {
        obj.slots[off] = RValue::makeFn(init.function);
        for (uint64_t k = 0; k < 8 && off + k < obj.size; k++)
            obj.state[off + k] = ByteState::ptrPart;
        return;
      }
    }
}

void
Replayer::setupGlobals()
{
    // Two-phase: allocate first so initializers can reference any global.
    for (const auto &g : module_.globals()) {
        int id = newObject(StorageKind::global, g->valueType(),
                           g->valueType()->size(), /*zeroed=*/true, g->name());
        globalObj_[g.get()] = id;
    }
    for (const auto &g : module_.globals())
        applyInit(object(globalObj_[g.get()]), g->valueType(), g->init(), 0);
}

int
Replayer::makeStringObject(const std::string &text)
{
    int id = newObject(StorageKind::mainArgs, nullptr, text.size() + 1,
                       /*zeroed=*/true, "argv string");
    RObject &o = object(id);
    o.dynClass = RObject::DynClass::primitive;
    std::memcpy(o.bytes.data(), text.data(), text.size());
    return id;
}

int
Replayer::makeStringArrayObject(const std::vector<std::string> &strings,
                                const char *name)
{
    // Null-terminated pointer array, like the engine's makeStringArray:
    // the terminator slot stays zero-backed and initialized.
    int arr = newObject(StorageKind::mainArgs, nullptr,
                        (strings.size() + 1) * 8, /*zeroed=*/true, name);
    object(arr).dynClass = RObject::DynClass::address;
    for (size_t k = 0; k < strings.size(); k++) {
        int s = makeStringObject(strings[k]);
        RObject &a = object(arr);
        a.slots[k * 8] = RValue::makePtr(s, 0);
        for (uint64_t b = 0; b < 8; b++)
            a.state[k * 8 + b] = ByteState::ptrPart;
    }
    return arr;
}

ReplayResult
Replayer::run()
{
    ReplayResult result;
    const Function *main = module_.findFunction("main");
    if (main == nullptr || main->isDeclaration()) {
        result.end = ReplayEnd::inconclusive;
        result.reason = "no main() definition";
        return result;
    }
    try {
        setupGlobals();
        // Mirror the engine's pre-main region: argc, a null-terminated
        // argv of the replayed arguments, and its fixed fake environment.
        std::vector<RValue> args;
        if (main->numArgs() >= 1) {
            std::vector<std::string> argvStrings;
            argvStrings.push_back("program");
            for (const std::string &a : options_.replayArgs)
                argvStrings.push_back(a);
            args.push_back(RValue::makeInt(
                static_cast<int64_t>(argvStrings.size()), 32));
            if (main->numArgs() >= 2)
                args.push_back(RValue::makePtr(
                    makeStringArrayObject(argvStrings, "argv"), 0));
            if (main->numArgs() >= 3) {
                static const std::vector<std::string> envStrings = {
                    "HOME=/home/user", "PATH=/usr/local/bin:/usr/bin",
                    "SECRET_TOKEN=hunter2", "LANG=C",
                };
                args.push_back(RValue::makePtr(
                    makeStringArrayObject(envStrings, "envp"), 0));
            }
        }
        callFunction(*main, std::move(args));
        result.end = ReplayEnd::exit;
    } catch (const Exited &) {
        result.end = ReplayEnd::exit;
    } catch (const Faulted &) {
        result.end = ReplayEnd::fault;
        result.fault = fault_;
    } catch (const Inconclusive &stopped) {
        result.end = ReplayEnd::inconclusive;
        result.reason = stopped.reason;
    }
    result.steps = steps_;
    return result;
}

// ---------------------------------------------------------------------
// Faults and access checking
// ---------------------------------------------------------------------

std::string
Replayer::describe(const RObject &o) const
{
    std::ostringstream os;
    os << o.size << "-byte " << storageKindName(o.storage) << " object";
    if (!o.name.empty())
        os << " '" << o.name << "'";
    return os.str();
}

void
Replayer::fault(ErrorKind kind, AccessKind access, const RObject *obj,
                BoundsDirection direction, std::optional<int64_t> offset,
                std::optional<int64_t> objectSize, std::string detail)
{
    StaticFinding f;
    f.kind = kind;
    f.access = access;
    f.storage = obj != nullptr ? obj->storage : StorageKind::unknown;
    f.direction = direction;
    f.confidence = Confidence::definite;
    f.function = curFn_ != nullptr ? curFn_->name() : "<unknown>";
    f.blockIndex = curBlock_;
    f.instIndex = curInst_;
    f.loc = curLoc_;
    f.detail = std::move(detail);
    f.replayConfirmed = true;
    f.offset = offset;
    f.objectSize = objectSize;
    fault_ = std::move(f);
    throw Faulted{};
}

void
Replayer::checkAccess(const RValue &ptr, uint64_t width, AccessKind access)
{
    if (ptr.isPoison())
        stop("access through unknown pointer");
    if (ptr.kind == RValue::Kind::fnptr)
        stop("data access through function pointer");
    if (ptr.obj < 0) {
        std::ostringstream os;
        os << accessKindName(access) << " through null pointer";
        if (ptr.off != 0)
            os << " (offset " << ptr.off << ")";
        fault(ErrorKind::nullDeref, access, nullptr, BoundsDirection::unknown,
              ptr.off, std::nullopt, os.str());
    }
    RObject &o = object(ptr.obj);
    if (o.freed) {
        std::ostringstream os;
        os << accessKindName(access) << " of freed " << describe(o);
        fault(ErrorKind::useAfterFree, access, &o, BoundsDirection::unknown,
              ptr.off, static_cast<int64_t>(o.size), os.str());
    }
    if (ptr.off < 0 ||
        static_cast<uint64_t>(ptr.off) + width > o.size) {
        BoundsDirection dir = ptr.off < 0 ? BoundsDirection::underflow
                                          : BoundsDirection::overflow;
        std::ostringstream os;
        os << width << "-byte " << accessKindName(access) << " at offset "
           << ptr.off << " of " << describe(o);
        fault(ErrorKind::outOfBounds, access, &o, dir, ptr.off,
              static_cast<int64_t>(o.size), os.str());
    }
}

Replayer::Region
Replayer::resolveRegion(RObject &o, uint64_t off, uint64_t width,
                        bool pointerAccess)
{
    if (o.dynClass == RObject::DynClass::varargs)
        stop("direct access to a va_list object");
    const Type *t = o.type;
    if (t == nullptr) {
        // Untyped object: classed as a whole on first scalar access.
        if (o.dynClass == RObject::DynClass::none)
            o.dynClass = pointerAccess ? RObject::DynClass::address
                                       : RObject::DynClass::primitive;
        Region r;
        r.start = 0;
        r.size = o.size;
        r.scalar = nullptr;
        return r;
    }
    uint64_t base = 0;
    // A typed heap object's type is the allocation-site element hint:
    // the managed heap builds an array of that element spanning the
    // whole block, and falls back to a plain byte array when the size is
    // not a multiple of the element size (ManagedHeap::allocTyped).
    if (o.storage == StorageKind::heap) {
        uint64_t esz = t->size();
        if (esz == 0 || o.size % esz != 0) {
            if (o.dynClass == RObject::DynClass::none)
                o.dynClass = RObject::DynClass::primitive;
            Region r;
            r.start = 0;
            r.size = o.size;
            r.scalar = nullptr;
            return r;
        }
        if (!t->isAggregate()) {
            Region r;
            r.start = 0;
            r.size = o.size;
            r.scalar = t;
            return r;
        }
        uint64_t idx = off / esz;
        base = idx * esz;
        off -= base;
    }
    while (true) {
        if (t->isStruct()) {
            int idx = t->fieldAt(off);
            if (idx < 0)
                stop("access into struct padding");
            const StructField &f = t->fields()[static_cast<size_t>(idx)];
            base += f.offset;
            off -= f.offset;
            t = f.type;
            continue;
        }
        if (t->isArray()) {
            const Type *elem = t->elemType();
            uint64_t esz = elem->size();
            if (esz == 0)
                stop("zero-sized array element");
            if (elem->isAggregate()) {
                uint64_t idx = off / esz;
                base += idx * esz;
                off -= idx * esz;
                t = elem;
                continue;
            }
            Region r;
            r.start = base;
            r.size = t->size();
            r.scalar = elem;
            if (off + width > r.size)
                stop("access spans a leaf region boundary");
            return r;
        }
        // Scalar leaf.
        Region r;
        r.start = base;
        r.size = t->size();
        r.scalar = t;
        if (off + width > r.size)
            stop("access spans a leaf region boundary");
        return r;
    }
}

// ---------------------------------------------------------------------
// Typed loads and stores
// ---------------------------------------------------------------------

RValue
Replayer::loadValue(const RValue &ptr, const Type *type)
{
    uint64_t width = type->size();
    checkAccess(ptr, width, AccessKind::read);
    RObject &o = object(ptr.obj);
    uint64_t off = static_cast<uint64_t>(ptr.off);
    bool pointerAccess = type->isPointer();
    Region region = resolveRegion(o, off, width, pointerAccess);

    bool addressRegion =
        (region.scalar != nullptr && region.scalar->isPointer()) ||
        (region.scalar == nullptr &&
         o.dynClass == RObject::DynClass::address);
    bool tracked =
        o.storage == StorageKind::stack || o.storage == StorageKind::heap;

    if (addressRegion) {
        if ((off - region.start) % 8 != 0 || width != 8)
            stop("partial access to a pointer slot");
        auto it = o.slots.find(off);
        if (it == o.slots.end()) {
            // Slot never written: uninitialized for tracked storage,
            // zero-backed (a null pointer / zero) otherwise.
            ByteState s = o.state[off];
            if (s == ByteState::poisoned)
                return RValue::poison();
            if (tracked && s == ByteState::uninit) {
                std::ostringstream os;
                os << "read of uninitialized bytes at offset " << off
                   << " of " << describe(o);
                fault(ErrorKind::uninitRead, AccessKind::read, &o,
                      BoundsDirection::unknown, ptr.off,
                      static_cast<int64_t>(o.size), os.str());
            }
            return pointerAccess ? RValue::makePtr(-1, 0)
                                 : RValue::makeInt(0, type->intBits());
        }
        const RValue &sv = it->second;
        if (sv.isPoison())
            return RValue::poison();
        if (pointerAccess) {
            if (sv.kind == RValue::Kind::ptr ||
                sv.kind == RValue::Kind::fnptr)
                return sv;
            stop("pointer read of a non-pointer slot value");
        }
        if (type->isInteger()) {
            // Managed relaxation: an 8-byte integer read of a NULL slot
            // yields the slot's offset; reading real pointer bits as an
            // integer is a type error there, so inconclusive here.
            if (sv.kind == RValue::Kind::intVal)
                return RValue::makeInt(sv.i, type->intBits());
            if (sv.isNull())
                return RValue::makeInt(sv.off, type->intBits());
            stop("integer read of stored pointer bits");
        }
        stop("float read of a pointer slot");
    }

    // Primitive region: little-endian byte reinterpretation.
    for (uint64_t k = 0; k < width; k++) {
        ByteState s = o.state[off + k];
        if (s == ByteState::poisoned)
            return RValue::poison();
        if (s == ByteState::ptrPart)
            stop("scalar read overlapping pointer bits");
        if (tracked && s == ByteState::uninit) {
            std::ostringstream os;
            os << "read of uninitialized bytes at offset " << off + k
               << " of " << describe(o);
            fault(ErrorKind::uninitRead, AccessKind::read, &o,
                  BoundsDirection::unknown, static_cast<int64_t>(off + k),
                  static_cast<int64_t>(o.size), os.str());
        }
    }
    if (pointerAccess) {
        // Pointer reads from primitive-classed memory are a type error
        // in the managed engine.
        stop("pointer read from primitive memory");
    }
    uint64_t raw = 0;
    for (uint64_t k = 0; k < width; k++)
        raw |= static_cast<uint64_t>(o.bytes[off + k]) << (8 * k);
    if (type->isFloat()) {
        if (width == 4) {
            float f;
            uint32_t raw32 = static_cast<uint32_t>(raw);
            std::memcpy(&f, &raw32, 4);
            return RValue::makeFP(f);
        }
        double d;
        std::memcpy(&d, &raw, 8);
        return RValue::makeFP(d);
    }
    return RValue::makeInt(static_cast<int64_t>(raw), type->intBits());
}

void
Replayer::storeValue(const RValue &ptr, const Type *type, const RValue &v)
{
    uint64_t width = type->size();
    checkAccess(ptr, width, AccessKind::write);
    RObject &o = object(ptr.obj);
    uint64_t off = static_cast<uint64_t>(ptr.off);
    bool pointerAccess = type->isPointer();
    Region region = resolveRegion(o, off, width, pointerAccess);

    bool addressRegion =
        (region.scalar != nullptr && region.scalar->isPointer()) ||
        (region.scalar == nullptr &&
         o.dynClass == RObject::DynClass::address);

    if (addressRegion) {
        if ((off - region.start) % 8 != 0 || width != 8)
            stop("partial write to a pointer slot");
        if (v.isPoison()) {
            o.slots.erase(off);
            for (uint64_t k = 0; k < 8; k++)
                o.state[off + k] = ByteState::poisoned;
            return;
        }
        if (!pointerAccess && v.kind != RValue::Kind::ptr &&
            v.kind != RValue::Kind::fnptr) {
            // Integer traffic through pointer slots is where the managed
            // per-slot MValue model and our byte model can drift apart.
            stop("integer write to a pointer slot");
        }
        o.slots[off] = v;
        for (uint64_t k = 0; k < 8; k++)
            o.state[off + k] = ByteState::ptrPart;
        return;
    }

    // Primitive region.
    if (pointerAccess || v.kind == RValue::Kind::ptr ||
        v.kind == RValue::Kind::fnptr) {
        if (v.isNull() && v.off == 0 && !pointerAccess) {
            // Tolerated: storing a plain zero.
        } else {
            stop("pointer write into primitive memory");
        }
    }
    if (v.isPoison()) {
        for (uint64_t k = 0; k < width; k++)
            o.state[off + k] = ByteState::poisoned;
        return;
    }
    uint64_t raw = 0;
    if (v.kind == RValue::Kind::intVal) {
        raw = static_cast<uint64_t>(v.i);
    } else if (v.kind == RValue::Kind::fpVal) {
        if (width == 4) {
            float f = static_cast<float>(v.f);
            uint32_t raw32;
            std::memcpy(&raw32, &f, 4);
            raw = raw32;
        } else {
            std::memcpy(&raw, &v.f, 8);
        }
    }
    for (uint64_t k = 0; k < width; k++) {
        o.bytes[off + k] = static_cast<uint8_t>(raw >> (8 * k));
        o.state[off + k] = ByteState::init;
    }
}

RValue
Replayer::loadByte(const RValue &ptr)
{
    checkAccess(ptr, 1, AccessKind::read);
    RObject &o = object(ptr.obj);
    uint64_t off = static_cast<uint64_t>(ptr.off);
    ByteState s = o.state[off];
    if (s == ByteState::poisoned)
        return RValue::poison();
    if (s == ByteState::ptrPart)
        stop("byte read overlapping pointer bits");
    bool tracked =
        o.storage == StorageKind::stack || o.storage == StorageKind::heap;
    if (tracked && s == ByteState::uninit) {
        std::ostringstream os;
        os << "read of uninitialized bytes at offset " << off << " of "
           << describe(o);
        fault(ErrorKind::uninitRead, AccessKind::read, &o,
              BoundsDirection::unknown, ptr.off,
              static_cast<int64_t>(o.size), os.str());
    }
    return RValue::makeInt(o.bytes[off], 8);
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

RValue
Replayer::evalOperand(const Value *v, const Frame &frame) const
{
    switch (v->valueKind()) {
      case ValueKind::argument:
        return frame.slots[static_cast<const Argument *>(v)->index()];
      case ValueKind::instruction: {
        int slot = static_cast<const Instruction *>(v)->slot();
        return slot >= 0 ? frame.slots[static_cast<size_t>(slot)]
                         : RValue::poison();
      }
      case ValueKind::constantInt: {
        const auto *c = static_cast<const ConstantInt *>(v);
        return RValue::makeInt(c->value(), c->type()->intBits());
      }
      case ValueKind::constantFP:
        return RValue::makeFP(static_cast<const ConstantFP *>(v)->value());
      case ValueKind::constantNull:
        return RValue::makePtr(-1, 0);
      case ValueKind::global: {
        auto it = globalObj_.find(static_cast<const GlobalVariable *>(v));
        return it == globalObj_.end() ? RValue::poison()
                                      : RValue::makePtr(it->second, 0);
      }
      case ValueKind::function:
        return RValue::makeFn(static_cast<const Function *>(v));
    }
    return RValue::poison();
}

namespace
{

/// Mirrors ManagedEngine::evalIntBinOp + makeInt canonicalization.
/// Returns poison on division by zero (the engine throws EngineError
/// there, which ends the run without a bug report — the caller must
/// treat poison from a division as inconclusive-on-use like any poison).
RValue
evalIntBinOp(Opcode op, const RValue &l, const RValue &r, unsigned bits,
             bool &divByZero)
{
    uint64_t lz = zextInt(l.i, l.bits);
    uint64_t rz = zextInt(r.i, r.bits);
    int64_t result = 0;
    switch (op) {
      case Opcode::add:
        result = static_cast<int64_t>(static_cast<uint64_t>(l.i) +
                                      static_cast<uint64_t>(r.i));
        break;
      case Opcode::sub:
        result = static_cast<int64_t>(static_cast<uint64_t>(l.i) -
                                      static_cast<uint64_t>(r.i));
        break;
      case Opcode::mul:
        result = static_cast<int64_t>(static_cast<uint64_t>(l.i) *
                                      static_cast<uint64_t>(r.i));
        break;
      case Opcode::sdiv:
        if (r.i == 0) {
            divByZero = true;
            return RValue::poison();
        }
        result = (l.i == INT64_MIN && r.i == -1) ? INT64_MIN : l.i / r.i;
        break;
      case Opcode::udiv:
        if (rz == 0) {
            divByZero = true;
            return RValue::poison();
        }
        result = static_cast<int64_t>(lz / rz);
        break;
      case Opcode::srem:
        if (r.i == 0) {
            divByZero = true;
            return RValue::poison();
        }
        result = (l.i == INT64_MIN && r.i == -1) ? 0 : l.i % r.i;
        break;
      case Opcode::urem:
        if (rz == 0) {
            divByZero = true;
            return RValue::poison();
        }
        result = static_cast<int64_t>(lz % rz);
        break;
      case Opcode::and_: result = l.i & r.i; break;
      case Opcode::or_: result = l.i | r.i; break;
      case Opcode::xor_: result = l.i ^ r.i; break;
      case Opcode::shl:
        result = static_cast<int64_t>(lz << (rz & (bits - 1)));
        break;
      case Opcode::lshr:
        result = static_cast<int64_t>(lz >> (rz & (bits - 1)));
        break;
      case Opcode::ashr:
        result = l.i >> (rz & (bits - 1));
        break;
      default:
        return RValue::poison();
    }
    return RValue::makeInt(result, bits);
}

int64_t
satFptosi(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 9223372036854775807.0)
        return INT64_MAX;
    if (v <= -9223372036854775808.0)
        return INT64_MIN;
    return static_cast<int64_t>(v);
}

uint64_t
satFptoui(double v)
{
    if (std::isnan(v) || v <= -1.0)
        return 0;
    if (v >= 18446744073709551615.0)
        return UINT64_MAX;
    return static_cast<uint64_t>(v);
}

bool
evalFCmp(FloatPred pred, double l, double r)
{
    if (std::isnan(l) || std::isnan(r))
        return false;
    switch (pred) {
      case FloatPred::oeq: return l == r;
      case FloatPred::one: return l != r;
      case FloatPred::olt: return l < r;
      case FloatPred::ole: return l <= r;
      case FloatPred::ogt: return l > r;
      case FloatPred::oge: return l >= r;
    }
    return false;
}

} // namespace

/// Mirrors ManagedEngine::evalICmp, going inconclusive where the engine
/// would compare host addresses of two distinct live objects.
bool
Replayer::evalICmpValues(IntPred pred, const RValue &l, const RValue &r)
{
    bool lp = l.kind == RValue::Kind::ptr;
    bool rp = r.kind == RValue::Kind::ptr;
    if (l.kind == RValue::Kind::fnptr || r.kind == RValue::Kind::fnptr) {
        if (l.kind == r.kind && (pred == IntPred::eq || pred == IntPred::ne))
            return (l.fn == r.fn) == (pred == IntPred::eq);
        stop("function pointer comparison");
    }
    if (lp || rp) {
        // The non-pointer side degrades to (null pointee, offset 0),
        // exactly like an MValue integer's empty address.
        int lo = lp ? l.obj : -1;
        int ro = rp ? r.obj : -1;
        int64_t loff = lp ? l.off : 0;
        int64_t roff = rp ? r.off : 0;
        switch (pred) {
          case IntPred::eq:
            return lo == ro && loff == roff;
          case IntPred::ne:
            return lo != ro || loff != roff;
          default: {
            bool less, lesseq;
            if (lo == ro) {
                less = loff < roff;
                lesseq = loff <= roff;
            } else if (lo < 0 || ro < 0) {
                // The engine compares host addresses; a null pointee is
                // the host nullptr and orders below every real object.
                less = lo < 0;
                lesseq = less;
            } else {
                stop("relational comparison of pointers into "
                     "distinct objects");
            }
            switch (pred) {
              case IntPred::ult: case IntPred::slt: return less;
              case IntPred::ule: case IntPred::sle: return lesseq;
              case IntPred::ugt: case IntPred::sgt: return !lesseq;
              default: return !less;
            }
          }
        }
    }
    switch (pred) {
      case IntPred::eq: return l.i == r.i;
      case IntPred::ne: return l.i != r.i;
      case IntPred::slt: return l.i < r.i;
      case IntPred::sle: return l.i <= r.i;
      case IntPred::sgt: return l.i > r.i;
      case IntPred::sge: return l.i >= r.i;
      case IntPred::ult: return zextInt(l.i, l.bits) < zextInt(r.i, r.bits);
      case IntPred::ule: return zextInt(l.i, l.bits) <= zextInt(r.i, r.bits);
      case IntPred::ugt: return zextInt(l.i, l.bits) > zextInt(r.i, r.bits);
      case IntPred::uge: return zextInt(l.i, l.bits) >= zextInt(r.i, r.bits);
    }
    return false;
}

// ---------------------------------------------------------------------
// The interpreter loop
// ---------------------------------------------------------------------

RValue
Replayer::callFunction(const Function &fn, std::vector<RValue> args)
{
    if (depth_ >= options_.replayDepth)
        stop("call depth budget exhausted");
    depth_++;
    Frame frame;
    frame.fn = &fn;
    frame.slots.assign(static_cast<size_t>(fn.numSlots()), RValue::poison());
    size_t nParams = fn.numArgs();
    for (size_t k = 0; k < nParams && k < args.size(); k++)
        frame.slots[k] = args[k];
    for (size_t k = nParams; k < args.size(); k++)
        frame.varargs.push_back(args[k]);

    const BasicBlock *bb = fn.entry();
    size_t idx = 0;
    while (true) {
        const Instruction &inst = *bb->insts()[idx];
        curFn_ = &fn;
        curBlock_ = static_cast<unsigned>(bb->index());
        curInst_ = static_cast<unsigned>(idx);
        curLoc_ = inst.loc();
        step();

        switch (inst.op()) {
          case Opcode::br:
            bb = inst.target(0);
            idx = 0;
            continue;
          case Opcode::condbr: {
            RValue cond = evalOperand(inst.operand(0), frame);
            if (cond.isPoison())
                stop("branch on unknown value");
            bb = cond.i != 0 ? inst.target(0) : inst.target(1);
            idx = 0;
            continue;
          }
          case Opcode::ret:
            depth_--;
            if (inst.numOperands() == 1)
                return evalOperand(inst.operand(0), frame);
            return RValue::poison();
          case Opcode::unreachable_:
            // The engine raises EngineError here (no bug report).
            stop("reached 'unreachable' in " + fn.name());
          default:
            break;
        }

        RValue result = execInstruction(inst, frame);
        if (inst.slot() >= 0)
            frame.slots[static_cast<size_t>(inst.slot())] = result;
        idx++;
    }
}

RValue
Replayer::execInstruction(const Instruction &inst, Frame &frame)
{
    switch (inst.op()) {
      case Opcode::alloca_: {
        const Type *t = inst.accessType();
        uint64_t size = t != nullptr ? t->size() : 0;
        if (heapUsed_ + size > options_.replayHeapBytes)
            stop("replay memory budget exhausted");
        heapUsed_ += size;
        std::string name = inst.name().empty() ? "local" : inst.name();
        int id = newObject(StorageKind::stack, t, size, /*zeroed=*/false,
                           std::move(name));
        return RValue::makePtr(id, 0);
      }
      case Opcode::load: {
        RValue addr = evalOperand(inst.operand(0), frame);
        return loadValue(addr, inst.accessType());
      }
      case Opcode::store: {
        RValue value = evalOperand(inst.operand(0), frame);
        RValue addr = evalOperand(inst.operand(1), frame);
        storeValue(addr, inst.accessType(), value);
        return RValue::poison();
      }
      case Opcode::gep: {
        RValue base = evalOperand(inst.operand(0), frame);
        int64_t offset = inst.gepConstOffset();
        if (inst.numOperands() > 1) {
            RValue index = evalOperand(inst.operand(1), frame);
            if (index.isPoison())
                return RValue::poison();
            offset += index.i * static_cast<int64_t>(inst.gepScale());
        }
        if (base.isPoison())
            return RValue::poison();
        if (base.kind == RValue::Kind::ptr)
            return RValue::makePtr(base.obj, base.off + offset);
        // Like the engine, gep on a non-pointer yields a null-pointee
        // address carrying just the offset.
        return RValue::makePtr(-1, offset);
      }
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr: {
        RValue l = evalOperand(inst.operand(0), frame);
        RValue r = evalOperand(inst.operand(1), frame);
        if (l.isPoison() || r.isPoison())
            return RValue::poison();
        if (l.kind != RValue::Kind::intVal || r.kind != RValue::Kind::intVal)
            stop("integer arithmetic on a pointer value");
        bool divByZero = false;
        RValue v = evalIntBinOp(inst.op(), l, r, inst.type()->intBits(),
                                divByZero);
        if (divByZero)
            stop("integer division by zero");
        return v;
      }
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: case Opcode::frem: {
        RValue l = evalOperand(inst.operand(0), frame);
        RValue r = evalOperand(inst.operand(1), frame);
        if (l.isPoison() || r.isPoison())
            return RValue::poison();
        bool f32 = inst.type()->size() == 4;
        double lf = f32 ? static_cast<float>(l.f) : l.f;
        double rf = f32 ? static_cast<float>(r.f) : r.f;
        double out;
        switch (inst.op()) {
          case Opcode::fadd: out = lf + rf; break;
          case Opcode::fsub: out = lf - rf; break;
          case Opcode::fmul: out = lf * rf; break;
          case Opcode::fdiv: out = lf / rf; break;
          default: out = std::fmod(lf, rf); break;
        }
        if (f32)
            out = static_cast<float>(out);
        return RValue::makeFP(out);
      }
      case Opcode::fneg: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeFP(inst.type()->size() == 4
                                  ? -static_cast<float>(v.f)
                                  : -v.f);
      }
      case Opcode::icmp: {
        RValue l = evalOperand(inst.operand(0), frame);
        RValue r = evalOperand(inst.operand(1), frame);
        if (l.isPoison() || r.isPoison())
            return RValue::poison();
        return RValue::makeInt(evalICmpValues(inst.intPred(), l, r) ? 1 : 0,
                               1);
      }
      case Opcode::fcmp: {
        RValue l = evalOperand(inst.operand(0), frame);
        RValue r = evalOperand(inst.operand(1), frame);
        if (l.isPoison() || r.isPoison())
            return RValue::poison();
        return RValue::makeInt(
            evalFCmp(inst.floatPred(), l.f, r.f) ? 1 : 0, 1);
      }
      case Opcode::trunc: case Opcode::sext: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeInt(v.i, inst.type()->intBits());
      }
      case Opcode::zext: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeInt(static_cast<int64_t>(zextInt(v.i, v.bits)),
                               inst.type()->intBits());
      }
      case Opcode::fptosi: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeInt(satFptosi(v.f), inst.type()->intBits());
      }
      case Opcode::fptoui: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeInt(static_cast<int64_t>(satFptoui(v.f)),
                               inst.type()->intBits());
      }
      case Opcode::sitofp: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        double d = static_cast<double>(v.i);
        if (inst.type()->size() == 4)
            d = static_cast<float>(d);
        return RValue::makeFP(d);
      }
      case Opcode::uitofp: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        double d = static_cast<double>(zextInt(v.i, v.bits));
        if (inst.type()->size() == 4)
            d = static_cast<float>(d);
        return RValue::makeFP(d);
      }
      case Opcode::fpext: {
        return evalOperand(inst.operand(0), frame);
      }
      case Opcode::fptrunc: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makeFP(static_cast<float>(v.f));
      }
      case Opcode::ptrtoint:
        // The concrete result is a host address: never reproducible.
        return RValue::poison();
      case Opcode::inttoptr: {
        RValue v = evalOperand(inst.operand(0), frame);
        if (v.isPoison())
            return RValue::poison();
        return RValue::makePtr(-1, v.i);
      }
      case Opcode::select: {
        RValue cond = evalOperand(inst.operand(0), frame);
        if (cond.isPoison())
            return RValue::poison();
        return evalOperand(inst.operand(cond.i != 0 ? 1 : 2), frame);
      }
      case Opcode::call:
        return execCall(inst, frame);
      default:
        stop("unmodelled instruction in replay");
    }
}

RValue
Replayer::execCall(const Instruction &inst, Frame &frame)
{
    RValue calleeV = evalOperand(inst.operand(0), frame);
    const Function *callee = nullptr;
    if (inst.operand(0)->valueKind() == ValueKind::function) {
        callee = static_cast<const Function *>(inst.operand(0));
    } else if (calleeV.kind == RValue::Kind::fnptr) {
        callee = calleeV.fn;
    } else {
        stop("call through a non-function value");
    }
    std::vector<RValue> args;
    for (unsigned k = 1; k < inst.numOperands(); k++)
        args.push_back(evalOperand(inst.operand(k), frame));
    if (callee->isIntrinsic())
        return callIntrinsic(inst, *callee, std::move(args), frame);
    if (callee->isDeclaration())
        stop("call to unresolved external '" + callee->name() + "'");
    return callFunction(*callee, std::move(args));
}

// ---------------------------------------------------------------------
// Intrinsics
// ---------------------------------------------------------------------

namespace
{

/// Broad element class of a replay object, mirroring the managed heap's
/// array classes.
enum class ObjClass : uint8_t
{
    primitive,
    address,
    aggregate,
    untyped,
};

ObjClass
classifyObject(const RObject &o)
{
    const Type *t = o.type;
    if (t == nullptr) {
        switch (o.dynClass) {
          case RObject::DynClass::address:
            return ObjClass::address;
          case RObject::DynClass::primitive:
            return ObjClass::primitive;
          default:
            return ObjClass::untyped;
        }
    }
    while (t->isArray())
        t = t->elemType();
    if (t->isPointer())
        return ObjClass::address;
    if (t->isAggregate())
        return ObjClass::aggregate;
    return ObjClass::primitive;
}

} // namespace

int
Replayer::boxVararg(const RValue &v)
{
    switch (v.kind) {
      case RValue::Kind::intVal: {
        unsigned bits = v.bits < 8 ? 8 : v.bits;
        uint64_t size = bits / 8;
        int id = newObject(StorageKind::stack, nullptr, size,
                           /*zeroed=*/true, "vararg");
        RObject &o = object(id);
        o.dynClass = RObject::DynClass::primitive;
        for (uint64_t k = 0; k < size; k++)
            o.bytes[k] =
                static_cast<uint8_t>(static_cast<uint64_t>(v.i) >> (8 * k));
        return id;
      }
      case RValue::Kind::fpVal: {
        int id = newObject(StorageKind::stack, nullptr, 8, /*zeroed=*/true,
                           "vararg");
        RObject &o = object(id);
        o.dynClass = RObject::DynClass::primitive;
        std::memcpy(o.bytes.data(), &v.f, 8);
        return id;
      }
      case RValue::Kind::ptr:
      case RValue::Kind::fnptr: {
        int id = newObject(StorageKind::stack, nullptr, 8, /*zeroed=*/true,
                           "vararg");
        RObject &o = object(id);
        o.dynClass = RObject::DynClass::address;
        o.slots[0] = v;
        for (uint64_t k = 0; k < 8; k++)
            o.state[k] = ByteState::ptrPart;
        return id;
      }
      case RValue::Kind::poison: {
        int id = newObject(StorageKind::stack, nullptr, 8, /*zeroed=*/false,
                           "vararg");
        RObject &o = object(id);
        o.dynClass = RObject::DynClass::primitive;
        o.state.assign(8, ByteState::poisoned);
        return id;
      }
    }
    return -1;
}

RValue
Replayer::callIntrinsic(const Instruction &inst, const Function &callee,
                        std::vector<RValue> args, Frame &frame)
{
    const std::string &name = callee.name();
    auto intArg = [&](size_t k) -> int64_t {
        if (k >= args.size() || args[k].kind != RValue::Kind::intVal)
            stop("non-integer argument to " + name);
        return args[k].i;
    };
    auto fpArg = [&](size_t k) -> double {
        if (k >= args.size() || args[k].kind != RValue::Kind::fpVal)
            stop("non-float argument to " + name);
        return args[k].f;
    };
    for (const RValue &a : args)
        if (a.isPoison())
            stop("unknown argument reaches " + name);

    if (name == "malloc" || name == "calloc") {
        bool isCalloc = name == "calloc";
        int64_t size = isCalloc
            ? static_cast<int64_t>(static_cast<uint64_t>(intArg(0)) *
                                   static_cast<uint64_t>(intArg(1)))
            : intArg(0);
        if (size < 0)
            stop("allocation with negative size");
        if (heapUsed_ + static_cast<uint64_t>(size) >
            options_.replayHeapBytes)
            stop("replay memory budget exhausted");
        heapUsed_ += static_cast<uint64_t>(size);
        int id = newObject(StorageKind::heap, inst.accessType(),
                           static_cast<uint64_t>(size), isCalloc, name);
        return RValue::makePtr(id, 0);
    }
    if (name == "free") {
        const RValue &p = args.empty() ? RValue::poison() : args[0];
        if (p.isNull())
            return RValue::poison(); // free(NULL) is a no-op
        if (p.kind != RValue::Kind::ptr)
            stop("free of a non-pointer value");
        RObject &o = object(p.obj);
        if (o.storage != StorageKind::heap) {
            std::ostringstream os;
            os << "free() of " << storageKindName(o.storage) << " object "
               << describe(o);
            fault(ErrorKind::invalidFree, AccessKind::free, &o,
                  BoundsDirection::unknown, p.off,
                  static_cast<int64_t>(o.size), os.str());
        }
        if (p.off != 0) {
            std::ostringstream os;
            os << "free() of interior pointer (offset " << p.off
               << ") into " << describe(o);
            fault(ErrorKind::invalidFree, AccessKind::free, &o,
                  BoundsDirection::unknown, p.off,
                  static_cast<int64_t>(o.size), os.str());
        }
        if (o.freed) {
            fault(ErrorKind::doubleFree, AccessKind::free, &o,
                  BoundsDirection::unknown, p.off,
                  static_cast<int64_t>(o.size),
                  "double free of " + describe(o));
        }
        o.freed = true;
        heapUsed_ -= o.size <= heapUsed_ ? o.size : heapUsed_;
        return RValue::poison();
    }
    if (name == "realloc") {
        const RValue &p = args.empty() ? RValue::poison() : args[0];
        int64_t newSize = intArg(1);
        if (newSize < 0)
            stop("allocation with negative size");
        if (p.kind != RValue::Kind::ptr)
            stop("realloc of a non-pointer value");
        if (!p.isNull()) {
            RObject &o = object(p.obj);
            if (o.storage != StorageKind::heap || p.off != 0) {
                std::ostringstream os;
                os << "realloc() of " << describe(o);
                if (p.off != 0)
                    os << " at non-zero offset " << p.off;
                fault(ErrorKind::invalidFree, AccessKind::free, &o,
                      BoundsDirection::unknown, p.off,
                      static_cast<int64_t>(o.size), os.str());
            }
            if (o.freed) {
                fault(ErrorKind::useAfterFree, AccessKind::free, &o,
                      BoundsDirection::unknown, p.off,
                      static_cast<int64_t>(o.size),
                      "realloc() of already freed " + describe(o));
            }
            if (classifyObject(o) == ObjClass::aggregate)
                stop("realloc of an aggregate heap object");
        }
        if (heapUsed_ + static_cast<uint64_t>(newSize) >
            options_.replayHeapBytes)
            stop("replay memory budget exhausted");
        heapUsed_ += static_cast<uint64_t>(newSize);
        // A never-accessed (still unclassed, untyped) block reallocates
        // to a fresh *uninitialized* block, like the engine's lazy path;
        // otherwise the copied block is marked fully initialized.
        bool neverAccessed = !p.isNull() && object(p.obj).type == nullptr &&
            object(p.obj).dynClass == RObject::DynClass::none;
        int id = newObject(StorageKind::heap, nullptr,
                           static_cast<uint64_t>(newSize),
                           /*zeroed=*/!neverAccessed && !p.isNull(),
                           "realloc");
        if (p.isNull() || neverAccessed) {
            if (!p.isNull()) {
                RObject &oldMut = object(p.obj);
                oldMut.freed = true;
                heapUsed_ -=
                    oldMut.size <= heapUsed_ ? oldMut.size : heapUsed_;
            }
            return RValue::makePtr(id, 0);
        }
        {
            // Copy min(old,new) then mark everything initialized, like
            // ManagedHeap::reallocate (the copy is not a "use").
            RObject &fresh = object(id);
            const RObject &old = object(p.obj);
            if (classifyObject(old) == ObjClass::address) {
                fresh.dynClass = RObject::DynClass::address;
                for (const auto &[off, sv] : old.slots) {
                    if (off + 8 > fresh.size)
                        break;
                    fresh.slots[off] = sv;
                    for (uint64_t k = 0; k < 8; k++)
                        fresh.state[off + k] = ByteState::ptrPart;
                }
            } else {
                fresh.dynClass = RObject::DynClass::primitive;
                uint64_t copy = old.size < fresh.size ? old.size
                                                      : fresh.size;
                for (uint64_t k = 0; k < copy; k++) {
                    if (old.state[k] == ByteState::poisoned)
                        fresh.state[k] = ByteState::poisoned;
                    else if (old.state[k] == ByteState::ptrPart)
                        stop("realloc copy over pointer bits");
                    else
                        fresh.bytes[k] = old.bytes[k];
                }
            }
            RObject &oldMut = object(p.obj);
            oldMut.freed = true;
            heapUsed_ -= oldMut.size <= heapUsed_ ? oldMut.size : heapUsed_;
        }
        return RValue::makePtr(id, 0);
    }
    if (name == "__sys_exit")
        throw Exited{};
    if (name == "__sys_write") {
        int64_t len = intArg(2);
        const RValue &buf = args[1];
        if (len > 0 && buf.kind != RValue::Kind::ptr)
            stop("write from a non-pointer buffer");
        if (len > 0 && buf.isNull()) {
            fault(ErrorKind::nullDeref, AccessKind::read, nullptr,
                  BoundsDirection::unknown, std::nullopt, std::nullopt,
                  "NULL dereference at " + curLoc_.toString());
        }
        for (int64_t k = 0; k < len; k++) {
            RValue byte = loadByte(RValue::makePtr(buf.obj, buf.off + k));
            (void)byte; // output is discarded; only the checks matter
            step();
        }
        return RValue::makeInt(len, 64);
    }
    if (name == "__sys_getchar") {
        int c = stdinPos_ < options_.replayStdin.size()
            ? static_cast<unsigned char>(options_.replayStdin[stdinPos_++])
            : -1;
        return RValue::makeInt(c, 32);
    }
    if (name == "__sys_alloc_size") {
        const RValue &p = args.empty() ? RValue::poison() : args[0];
        if (p.isNull())
            return RValue::makeInt(0, 64);
        if (p.kind != RValue::Kind::ptr)
            stop("__sys_alloc_size of a non-pointer value");
        return RValue::makeInt(static_cast<int64_t>(object(p.obj).size), 64);
    }
    if (name == "__va_start") {
        // Box first: newObject may reallocate objects_, so no reference
        // into it can be held across the boxVararg calls.
        std::vector<int> boxes;
        boxes.reserve(frame.varargs.size());
        for (const RValue &v : frame.varargs)
            boxes.push_back(boxVararg(v));
        int id = newObject(StorageKind::stack, nullptr,
                           frame.varargs.size() * 8, /*zeroed=*/true,
                           "va_list");
        RObject &o = object(id);
        o.dynClass = RObject::DynClass::varargs;
        o.vaBoxes = std::move(boxes);
        return RValue::makePtr(id, 0);
    }
    if (name == "__va_count")
        return RValue::makeInt(static_cast<int64_t>(frame.varargs.size()),
                               32);
    if (name == "__va_arg_ptr") {
        const RValue &ap = args.empty() ? RValue::poison() : args[0];
        if (ap.isNull()) {
            fault(ErrorKind::nullDeref, AccessKind::read, nullptr,
                  BoundsDirection::unknown, std::nullopt, std::nullopt,
                  "NULL dereference at " + curLoc_.toString());
        }
        if (ap.kind != RValue::Kind::ptr)
            stop("va_arg on a non-pointer value");
        RObject &o = object(ap.obj);
        if (o.dynClass != RObject::DynClass::varargs) {
            fault(ErrorKind::varargs, AccessKind::read, &o,
                  BoundsDirection::unknown, std::nullopt, std::nullopt,
                  "va_arg on a non-va_list value");
        }
        if (o.vaCursor >= o.vaBoxes.size()) {
            std::ostringstream os;
            os << "access to variadic argument " << o.vaCursor
               << " but only " << o.vaBoxes.size() << " were passed";
            fault(ErrorKind::varargs, AccessKind::read, &o,
                  BoundsDirection::unknown, std::nullopt, std::nullopt,
                  os.str());
        }
        return RValue::makePtr(o.vaBoxes[o.vaCursor++], 0);
    }
    if (name == "__va_end")
        return RValue::poison();

    // Math intrinsics (same host libm as the engine).
    if (name == "sqrt") return RValue::makeFP(std::sqrt(fpArg(0)));
    if (name == "sin") return RValue::makeFP(std::sin(fpArg(0)));
    if (name == "cos") return RValue::makeFP(std::cos(fpArg(0)));
    if (name == "tan") return RValue::makeFP(std::tan(fpArg(0)));
    if (name == "atan") return RValue::makeFP(std::atan(fpArg(0)));
    if (name == "atan2")
        return RValue::makeFP(std::atan2(fpArg(0), fpArg(1)));
    if (name == "exp") return RValue::makeFP(std::exp(fpArg(0)));
    if (name == "log") return RValue::makeFP(std::log(fpArg(0)));
    if (name == "pow") return RValue::makeFP(std::pow(fpArg(0), fpArg(1)));
    if (name == "floor") return RValue::makeFP(std::floor(fpArg(0)));
    if (name == "ceil") return RValue::makeFP(std::ceil(fpArg(0)));
    if (name == "fabs") return RValue::makeFP(std::fabs(fpArg(0)));
    if (name == "fmod")
        return RValue::makeFP(std::fmod(fpArg(0), fpArg(1)));

    stop("unmodelled intrinsic '" + name + "'");
}

} // namespace

ReplayResult
replayModule(const Module &module, const AnalysisOptions &options)
{
    Replayer replayer(module, options);
    return replayer.run();
}

} // namespace sulong
