#include "analysis/constraints.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/solver.h"
#include "ir/instruction.h"

namespace sulong
{

const char *
refuteVerdictName(RefuteVerdict verdict)
{
    switch (verdict) {
      case RefuteVerdict::provenInfeasible:
        return "proven-infeasible";
      case RefuteVerdict::feasible:
        return "feasible";
      case RefuteVerdict::unknown:
        return "unknown";
    }
    return "?";
}

namespace
{

using int128 = __int128;

/// Complete enumeration bound; more witness paths -> unknown.
constexpr size_t kMaxPaths = 64;

bool
fitsI64(int128 v)
{
    return v >= int128{INT64_MIN} && v <= int128{INT64_MAX};
}

/**
 * A linear expression `mul * value(var) + add` over one solver
 * variable; var < 0 encodes the constant `add`. This is the whole
 * symbolic value domain: anything non-affine becomes a fresh bounded
 * variable, which keeps every derived constraint a relaxation of the
 * real execution.
 */
struct Lin
{
    int var = -1;
    int64_t mul = 1;
    int64_t add = 0;

    static Lin constant(int64_t c) { return {-1, 1, c}; }
    bool isConst() const { return var < 0; }
};

constexpr int kBaseUnknown = -1;
constexpr int kBaseNull = -2;
constexpr int kBaseGlobal = -3;

/** Symbolic value of one slot along one path. */
struct SymVal
{
    enum class Kind : uint8_t
    {
        top,
        intv,
        ptr,
    };

    Kind kind = Kind::top;
    Lin lin;                // intv
    int base = kBaseUnknown; // ptr: object id or a kBase* sentinel
    Lin off;                // ptr: byte offset within base
    bool mayBeNull = false; // ptr

    static SymVal top_() { return {}; }
    static SymVal ofLin(Lin lin)
    {
        SymVal v;
        v.kind = Kind::intv;
        v.lin = lin;
        return v;
    }
    static SymVal pointer(int base, Lin off, bool may_be_null)
    {
        SymVal v;
        v.kind = Kind::ptr;
        v.base = base;
        v.off = off;
        v.mayBeNull = may_be_null;
        return v;
    }
    static SymVal unknownPtr()
    {
        return pointer(kBaseUnknown, Lin::constant(0), true);
    }
    static SymVal nullPtr()
    {
        return pointer(kBaseNull, Lin::constant(0), true);
    }
};

IntPred
negatePred(IntPred pred)
{
    switch (pred) {
      case IntPred::eq:  return IntPred::ne;
      case IntPred::ne:  return IntPred::eq;
      case IntPred::slt: return IntPred::sge;
      case IntPred::sle: return IntPred::sgt;
      case IntPred::sgt: return IntPred::sle;
      case IntPred::sge: return IntPred::slt;
      case IntPred::ult: return IntPred::uge;
      case IntPred::ule: return IntPred::ugt;
      case IntPred::ugt: return IntPred::ule;
      case IntPred::uge: return IntPred::ult;
    }
    return pred;
}

/** Peels `icmp ne/eq (zext (icmp ...)), 0` chains exactly like the
 *  analyzer's resolveCondChain, flipping @p polarity per `== 0`. */
const Instruction *
peelCondChain(const Value *cond, bool &polarity)
{
    const auto *inst = dynamic_cast<const Instruction *>(cond);
    while (inst != nullptr && inst->op() == Opcode::icmp) {
        IntPred pred = inst->intPred();
        if (pred != IntPred::eq && pred != IntPred::ne)
            return inst;
        const auto *rhs =
            dynamic_cast<const ConstantInt *>(inst->operand(1));
        if (rhs == nullptr || rhs->value() != 0 ||
            !inst->operand(0)->type()->isInteger())
            return inst;
        const auto *src =
            dynamic_cast<const Instruction *>(inst->operand(0));
        while (src != nullptr &&
               (src->op() == Opcode::zext || src->op() == Opcode::sext))
            src = dynamic_cast<const Instruction *>(src->operand(0));
        if (src == nullptr || src->op() != Opcode::icmp)
            return inst;
        if (pred == IntPred::eq)
            polarity = !polarity;
        inst = src;
    }
    return nullptr;
}

/** How one enumerated witness path relates to the fault. */
enum class PathVerdict : uint8_t
{
    infeasible,      ///< branch conditions along the path contradict
    faultImpossible, ///< path reachable, but the access proven safe
    faultFeasible,   ///< a verified model reaches the fault
    unknown,
};

/**
 * Symbolic execution of ONE acyclic CFG path, accumulating SmtLite
 * constraints. All approximation goes one way: unsupported constructs
 * produce fresh bounded variables or drop constraints, so the final
 * system admits every real execution of the path (UNSAT is a proof).
 */
class PathExec
{
  public:
    PathExec(const Function &fn, bool is_main)
        : fn_(fn), slots_(fn.numSlots())
    {
        seedArguments(is_main);
    }

    /// Transfer all instructions of block @p b up to (not including)
    /// index @p end; false = a constant branch/compare contradiction
    /// made the path infeasible outright.
    bool runBlock(unsigned b, size_t end);

    /// Add the constraint of taking the edge block b -> block next.
    /// false = edge statically contradictory.
    bool addEdgeConstraint(unsigned b, unsigned next);

    PathVerdict checkFault(const StaticFinding &finding,
                           const Instruction &inst, std::string &note);

  private:
    struct MemEntry
    {
        unsigned width = 0;
        SymVal val;
    };
    struct SymObj
    {
        Lin size;
        bool smashed = false;
        std::map<int64_t, MemEntry> contents;
    };

    void seedArguments(bool is_main);

    Lin fresh(const Interval &range)
    {
        int v = solver_.addVar(range);
        declared_.push_back(range);
        return Lin{v, 1, 0};
    }
    Lin freshOfWidth(unsigned bits)
    {
        return fresh(bits == 1 ? Interval::range(0, 1)
                               : intervalOfWidth(bits));
    }

    /// Declared-domain bound of @p lin (over-approximates its values).
    Interval boundOf(const Lin &lin) const;

    /// Solver variable equal to @p lin's value.
    int materialize(const Lin &lin, const std::string &name = "");

    std::optional<Lin> linAdd(const Lin &a, const Lin &b) const;
    std::optional<Lin> linMulConst(const Lin &a, int64_t c) const;

    SymVal evalValue(const Value *v) const;
    SymVal typedFresh(const Type *type);
    void setSlot(const Instruction &inst, SymVal val);
    void writeBack(const Value *v, const SymVal &val);

    void smashObject(int obj);
    void smashAll();
    void storeTo(const SymVal &addr, unsigned width, const SymVal &val);
    SymVal loadFrom(const SymVal &addr, unsigned width,
                    const Type *type);

    bool transfer(const Instruction &inst);
    bool transferCall(const Instruction &inst);
    /// Emit solver constraints for `icmp pred a, b` holding.
    /// false = statically contradictory.
    bool constrainCompare(const Instruction &cmp, IntPred pred);

    const Function &fn_;
    SmtLite solver_;
    std::vector<Interval> declared_;
    std::vector<SymVal> slots_;
    std::vector<SymObj> objects_;
};

void
PathExec::seedArguments(bool is_main)
{
    for (unsigned i = 0; i < fn_.numArgs(); i++) {
        const Argument *arg = fn_.arg(i);
        const Type *type = arg->type();
        if (type->isInteger()) {
            Interval range = is_main && i == 0
                ? Interval::range(1, INT32_MAX) // argc, as in entryState
                : (type->intBits() == 1
                       ? Interval::range(0, 1)
                       : intervalOfWidth(type->intBits()));
            slots_[i] = SymVal::ofLin(fresh(range));
        } else if (type->isPointer()) {
            SymVal p = SymVal::unknownPtr();
            if (is_main && i == 1)
                p.mayBeNull = false; // argv is never null
            slots_[i] = p;
        } else {
            slots_[i] = SymVal::top_();
        }
    }
}

Interval
PathExec::boundOf(const Lin &lin) const
{
    if (lin.isConst())
        return Interval::of(lin.add);
    const Interval &d = declared_[lin.var];
    if (d.isEmpty())
        return d;
    int128 lo = int128{lin.mul} * d.lo + lin.add;
    int128 hi = int128{lin.mul} * d.hi + lin.add;
    if (lin.mul < 0)
        std::swap(lo, hi);
    auto clamp = [](int128 v) {
        return v > int128{INT64_MAX}  ? INT64_MAX
            : v < int128{INT64_MIN} ? INT64_MIN
                                    : static_cast<int64_t>(v);
    };
    return Interval::range(clamp(lo), clamp(hi));
}

int
PathExec::materialize(const Lin &lin, const std::string &name)
{
    if (lin.isConst()) {
        int v = solver_.addVar(Interval::of(lin.add), name);
        declared_.push_back(Interval::of(lin.add));
        return v;
    }
    if (lin.mul == 1 && lin.add == 0)
        return lin.var;
    Interval bound = boundOf(lin);
    int v = solver_.addVar(bound, name);
    declared_.push_back(bound);
    solver_.addEq(v, lin.var, lin.mul, lin.add);
    return v;
}

std::optional<Lin>
PathExec::linAdd(const Lin &a, const Lin &b) const
{
    auto addConst = [](const Lin &x, int64_t c) -> std::optional<Lin> {
        int128 add = int128{x.add} + c;
        if (!fitsI64(add))
            return std::nullopt;
        Lin out = x;
        out.add = static_cast<int64_t>(add);
        return out;
    };
    if (b.isConst())
        return addConst(a, b.add);
    if (a.isConst())
        return addConst(b, a.add);
    if (a.var == b.var) {
        int128 mul = int128{a.mul} + b.mul;
        int128 add = int128{a.add} + b.add;
        if (!fitsI64(mul) || !fitsI64(add))
            return std::nullopt;
        if (mul == 0)
            return Lin::constant(static_cast<int64_t>(add));
        return Lin{a.var, static_cast<int64_t>(mul),
                   static_cast<int64_t>(add)};
    }
    return std::nullopt; // two distinct variables: not affine in one
}

std::optional<Lin>
PathExec::linMulConst(const Lin &a, int64_t c) const
{
    if (c == 0)
        return Lin::constant(0);
    int128 mul = int128{a.mul} * c;
    int128 add = int128{a.add} * c;
    if (!fitsI64(mul) || !fitsI64(add))
        return std::nullopt;
    if (a.isConst())
        return Lin::constant(static_cast<int64_t>(add));
    return Lin{a.var, static_cast<int64_t>(mul),
               static_cast<int64_t>(add)};
}

SymVal
PathExec::evalValue(const Value *v) const
{
    switch (v->valueKind()) {
      case ValueKind::constantInt:
        return SymVal::ofLin(Lin::constant(
            static_cast<const ConstantInt *>(v)->value()));
      case ValueKind::constantNull:
        return SymVal::nullPtr();
      case ValueKind::global:
        return SymVal::pointer(kBaseGlobal, Lin::constant(0), false);
      case ValueKind::argument:
        return slots_[static_cast<const Argument *>(v)->index()];
      case ValueKind::instruction: {
        int slot = static_cast<const Instruction *>(v)->slot();
        return slot >= 0 ? slots_[slot] : SymVal::top_();
      }
      default:
        return SymVal::top_();
    }
}

SymVal
PathExec::typedFresh(const Type *type)
{
    if (type == nullptr)
        return SymVal::top_();
    if (type->isInteger())
        return SymVal::ofLin(freshOfWidth(type->intBits()));
    if (type->isPointer())
        return SymVal::unknownPtr();
    return SymVal::top_();
}

void
PathExec::setSlot(const Instruction &inst, SymVal val)
{
    if (inst.slot() >= 0)
        slots_[inst.slot()] = std::move(val);
}

/** Re-binds the symbolic value of @p v (a slot-backed value) after a
 *  branch refined it — the null-test counterpart of the analyzer's
 *  writeRefinedPointer. */
void
PathExec::writeBack(const Value *v, const SymVal &val)
{
    if (v->valueKind() == ValueKind::argument) {
        slots_[static_cast<const Argument *>(v)->index()] = val;
    } else if (v->valueKind() == ValueKind::instruction) {
        int slot = static_cast<const Instruction *>(v)->slot();
        if (slot >= 0)
            slots_[slot] = val;
    }
}

void
PathExec::smashObject(int obj)
{
    if (obj >= 0 && static_cast<size_t>(obj) < objects_.size()) {
        objects_[obj].smashed = true;
        objects_[obj].contents.clear();
    }
}

void
PathExec::smashAll()
{
    for (size_t i = 0; i < objects_.size(); i++)
        smashObject(static_cast<int>(i));
}

void
PathExec::storeTo(const SymVal &addr, unsigned width, const SymVal &val)
{
    if (addr.kind != SymVal::Kind::ptr) {
        smashAll();
        return;
    }
    if (addr.base == kBaseNull || addr.base == kBaseGlobal)
        return; // globals are not modeled; loads from them are fresh
    if (addr.base == kBaseUnknown) {
        smashAll();
        return;
    }
    SymObj &obj = objects_[addr.base];
    if (obj.smashed || !addr.off.isConst()) {
        smashObject(addr.base);
        return;
    }
    int64_t off = addr.off.add;
    // Erase entries overlapping [off, off + width).
    for (auto it = obj.contents.begin(); it != obj.contents.end();) {
        int64_t lo = it->first;
        int64_t hi = lo + it->second.width;
        if (lo < off + static_cast<int64_t>(width) && off < hi)
            it = obj.contents.erase(it);
        else
            ++it;
    }
    obj.contents[off] = MemEntry{width, val};
}

SymVal
PathExec::loadFrom(const SymVal &addr, unsigned width, const Type *type)
{
    if (addr.kind == SymVal::Kind::ptr && addr.base >= 0 &&
        addr.off.isConst() && !objects_[addr.base].smashed) {
        const SymObj &obj = objects_[addr.base];
        auto it = obj.contents.find(addr.off.add);
        if (it != obj.contents.end() && it->second.width == width)
            return it->second.val;
    }
    return typedFresh(type);
}

bool
PathExec::transferCall(const Instruction &inst)
{
    const auto *callee = inst.operands().empty()
        ? nullptr
        : dynamic_cast<const Function *>(inst.operand(0));
    const std::string &name = callee != nullptr ? callee->name() : "";
    auto argLin = [&](size_t i) -> Lin {
        if (i + 1 >= inst.numOperands())
            return fresh(Interval::range(0, INT64_MAX));
        SymVal v = evalValue(inst.operand(i + 1));
        if (v.kind == SymVal::Kind::intv)
            return v.lin;
        return fresh(Interval::range(0, INT64_MAX));
    };
    if (callee != nullptr && callee->isIntrinsic()) {
        if (name == "malloc") {
            objects_.push_back(SymObj{argLin(0), false, {}});
            setSlot(inst, SymVal::pointer(
                              static_cast<int>(objects_.size()) - 1,
                              Lin::constant(0), true));
            return true;
        }
        if (name == "calloc") {
            Lin n = argLin(0);
            Lin sz = argLin(1);
            Lin total = fresh(Interval::range(0, INT64_MAX));
            if (n.isConst()) {
                if (auto t = linMulConst(sz, n.add))
                    total = *t;
            } else if (sz.isConst()) {
                if (auto t = linMulConst(n, sz.add))
                    total = *t;
            }
            objects_.push_back(SymObj{total, false, {}});
            setSlot(inst, SymVal::pointer(
                              static_cast<int>(objects_.size()) - 1,
                              Lin::constant(0), true));
            return true;
        }
        if (name == "free" || name == "__va_end") {
            return true;
        }
        // Other intrinsics may write guest memory (__sys_* reads are
        // not, but staying uniform is sound).
        smashAll();
        setSlot(inst, typedFresh(inst.type()));
        return true;
    }
    // User, libc, declared, or indirect call: the callee may write any
    // escaped memory; results are unconstrained.
    smashAll();
    setSlot(inst, typedFresh(inst.type()));
    return true;
}

bool
PathExec::constrainCompare(const Instruction &cmp, IntPred pred)
{
    const Value *a = cmp.operand(0);
    const Value *b = cmp.operand(1);
    SymVal av = evalValue(a);
    SymVal bv = evalValue(b);

    if (a->type()->isPointer()) {
        if (pred != IntPred::eq && pred != IntPred::ne)
            return true;
        auto isNull = [](const Value *side, const SymVal &val) {
            return side->valueKind() == ValueKind::constantNull ||
                (val.kind == SymVal::Kind::ptr &&
                 val.base == kBaseNull);
        };
        const Value *other = nullptr;
        SymVal otherVal;
        if (isNull(b, bv)) {
            other = a;
            otherVal = av;
        } else if (isNull(a, av)) {
            other = b;
            otherVal = bv;
        } else {
            return true; // object-identity compares are not refined
        }
        if (otherVal.kind != SymVal::Kind::ptr)
            return true;
        bool wantNull = pred == IntPred::eq;
        bool mustNonNull = !otherVal.mayBeNull &&
            (otherVal.base >= 0 || otherVal.base == kBaseGlobal);
        if (wantNull) {
            if (mustNonNull)
                return false; // non-null pointer on the == NULL edge
            writeBack(other, SymVal::nullPtr());
        } else {
            if (otherVal.base == kBaseNull)
                return false; // must-null pointer on the != NULL edge
            SymVal refined = otherVal;
            refined.mayBeNull = false;
            writeBack(other, refined);
        }
        return true;
    }
    if (!a->type()->isInteger())
        return true;
    if (av.kind != SymVal::Kind::intv || bv.kind != SymVal::Kind::intv)
        return true;
    const Lin &la = av.lin;
    const Lin &lb = bv.lin;

    if (la.isConst() && lb.isConst()) {
        int64_t x = la.add;
        int64_t y = lb.add;
        bool holds = true;
        switch (pred) {
          case IntPred::eq:  holds = x == y; break;
          case IntPred::ne:  holds = x != y; break;
          case IntPred::slt: holds = x < y; break;
          case IntPred::sle: holds = x <= y; break;
          case IntPred::sgt: holds = x > y; break;
          case IntPred::sge: holds = x >= y; break;
          default:
            return true; // unsigned constant folds are not needed
        }
        return holds;
    }

    switch (pred) {
      case IntPred::eq: {
        int va = materialize(la);
        int vb = materialize(lb);
        solver_.addLe(va, vb, 0);
        solver_.addLe(vb, va, 0);
        return true;
      }
      case IntPred::ne:
        // Only the against-constant form is expressible.
        if (lb.isConst())
            solver_.addNeq(materialize(la), lb.add);
        else if (la.isConst())
            solver_.addNeq(materialize(lb), la.add);
        return true;
      case IntPred::slt:
        solver_.addLe(materialize(la), materialize(lb), -1);
        return true;
      case IntPred::sle:
        solver_.addLe(materialize(la), materialize(lb), 0);
        return true;
      case IntPred::sgt:
        solver_.addLe(materialize(lb), materialize(la), -1);
        return true;
      case IntPred::sge:
        solver_.addLe(materialize(lb), materialize(la), 0);
        return true;
      default:
        // Unsigned comparisons are dropped: the system stays a
        // relaxation, so UNSAT remains a proof.
        return true;
    }
}

bool
PathExec::transfer(const Instruction &inst)
{
    switch (inst.op()) {
      case Opcode::alloca_: {
        int64_t size =
            static_cast<int64_t>(inst.accessType()->size());
        objects_.push_back(SymObj{Lin::constant(size), false, {}});
        setSlot(inst, SymVal::pointer(
                          static_cast<int>(objects_.size()) - 1,
                          Lin::constant(0), false));
        return true;
      }
      case Opcode::load: {
        SymVal addr = evalValue(inst.operand(0));
        unsigned width =
            static_cast<unsigned>(inst.accessType()->size());
        setSlot(inst, loadFrom(addr, width, inst.type()));
        return true;
      }
      case Opcode::store: {
        SymVal val = evalValue(inst.operand(0));
        SymVal addr = evalValue(inst.operand(1));
        unsigned width =
            static_cast<unsigned>(inst.accessType()->size());
        storeTo(addr, width, val);
        return true;
      }
      case Opcode::gep: {
        SymVal base = evalValue(inst.operand(0));
        std::optional<Lin> delta =
            Lin::constant(inst.gepConstOffset());
        Interval deltaBound = Interval::of(inst.gepConstOffset());
        if (inst.numOperands() > 1) {
            SymVal idx = evalValue(inst.operand(1));
            uint64_t scale = inst.gepScale();
            Interval idxBound = idx.kind == SymVal::Kind::intv
                ? boundOf(idx.lin)
                : Interval::top();
            Interval scaled = scale <= INT64_MAX
                ? intervalMul(idxBound,
                              Interval::of(static_cast<int64_t>(scale)))
                : Interval::top();
            deltaBound = intervalAdd(deltaBound, scaled);
            if (idx.kind == SymVal::Kind::intv &&
                scale <= INT64_MAX) {
                auto scaledLin = linMulConst(
                    idx.lin, static_cast<int64_t>(scale));
                delta = scaledLin ? linAdd(*scaledLin, *delta)
                                  : std::nullopt;
            } else {
                delta = std::nullopt;
            }
        }
        if (base.kind != SymVal::Kind::ptr) {
            setSlot(inst, SymVal::unknownPtr());
            return true;
        }
        SymVal out = base;
        std::optional<Lin> off =
            delta ? linAdd(base.off, *delta) : std::nullopt;
        out.off = off
            ? *off
            : fresh(intervalAdd(boundOf(base.off), deltaBound));
        setSlot(inst, out);
        return true;
      }
      case Opcode::add:
      case Opcode::sub:
      case Opcode::mul: {
        SymVal av = evalValue(inst.operand(0));
        SymVal bv = evalValue(inst.operand(1));
        unsigned bits = inst.type()->intBits();
        if (av.kind != SymVal::Kind::intv ||
            bv.kind != SymVal::Kind::intv) {
            setSlot(inst, SymVal::ofLin(freshOfWidth(bits)));
            return true;
        }
        std::optional<Lin> lin;
        if (inst.op() == Opcode::add) {
            lin = linAdd(av.lin, bv.lin);
        } else if (inst.op() == Opcode::sub) {
            if (auto neg = linMulConst(bv.lin, -1))
                lin = linAdd(av.lin, *neg);
        } else if (bv.lin.isConst()) {
            lin = linMulConst(av.lin, bv.lin.add);
        } else if (av.lin.isConst()) {
            lin = linMulConst(bv.lin, av.lin.add);
        }
        Interval width = intervalOfWidth(bits);
        if (lin.has_value()) {
            Interval bound = boundOf(*lin);
            // The native op wraps at `bits`; the affine model does
            // not. Keep the relation only when it provably cannot
            // wrap, else degrade to a fresh width-bounded variable.
            if (bound.lo >= width.lo && bound.hi <= width.hi) {
                setSlot(inst, SymVal::ofLin(*lin));
                return true;
            }
        }
        Interval a = boundOf(av.lin);
        Interval b = boundOf(bv.lin);
        Interval r = inst.op() == Opcode::add ? intervalAdd(a, b)
            : inst.op() == Opcode::sub       ? intervalSub(a, b)
                                             : intervalMul(a, b);
        setSlot(inst, SymVal::ofLin(fresh(intervalWrap(r, bits))));
        return true;
      }
      case Opcode::trunc: {
        SymVal av = evalValue(inst.operand(0));
        unsigned bits = inst.type()->intBits();
        Interval width = intervalOfWidth(bits);
        if (av.kind == SymVal::Kind::intv) {
            Interval bound = boundOf(av.lin);
            if (bound.lo >= width.lo && bound.hi <= width.hi) {
                setSlot(inst, av);
                return true;
            }
        }
        setSlot(inst, SymVal::ofLin(freshOfWidth(bits)));
        return true;
      }
      case Opcode::zext: {
        SymVal av = evalValue(inst.operand(0));
        const Type *srcType = inst.operand(0)->type();
        unsigned srcBits =
            srcType->isInteger() ? srcType->intBits() : 64;
        if (av.kind == SymVal::Kind::intv &&
            (srcBits >= 64 || boundOf(av.lin).lo >= 0)) {
            setSlot(inst, av); // provably non-negative: identity
            return true;
        }
        Interval range = srcBits >= 64
            ? Interval::top()
            : Interval::range(0,
                              static_cast<int64_t>(
                                  (uint64_t{1} << srcBits) - 1));
        setSlot(inst, SymVal::ofLin(fresh(range)));
        return true;
      }
      case Opcode::sext: {
        // Canonical values are sign-extended: identity.
        SymVal av = evalValue(inst.operand(0));
        setSlot(inst,
                av.kind == SymVal::Kind::intv
                    ? av
                    : SymVal::ofLin(
                          freshOfWidth(inst.type()->intBits())));
        return true;
      }
      case Opcode::icmp:
      case Opcode::fcmp:
        setSlot(inst, SymVal::ofLin(fresh(Interval::range(0, 1))));
        return true;
      case Opcode::select: {
        SymVal cond = evalValue(inst.operand(0));
        if (cond.kind == SymVal::Kind::intv && cond.lin.isConst()) {
            setSlot(inst, evalValue(
                              inst.operand(cond.lin.add != 0 ? 1 : 2)));
        } else {
            setSlot(inst, typedFresh(inst.type()));
        }
        return true;
      }
      case Opcode::call:
        return transferCall(inst);
      case Opcode::inttoptr:
        setSlot(inst, SymVal::unknownPtr());
        return true;
      case Opcode::br:
      case Opcode::condbr:
      case Opcode::ret:
      case Opcode::unreachable_:
        return true; // edges are constrained by addEdgeConstraint
      default:
        // div/rem/bit/shift/float/casts: sound fresh result.
        setSlot(inst, typedFresh(inst.type()));
        return true;
    }
}

bool
PathExec::runBlock(unsigned b, size_t end)
{
    const auto &insts = fn_.blocks()[b]->insts();
    for (size_t i = 0; i < std::min(end, insts.size()); i++) {
        if (!transfer(*insts[i]))
            return false;
    }
    return true;
}

bool
PathExec::addEdgeConstraint(unsigned b, unsigned next)
{
    const Instruction *term = fn_.blocks()[b]->terminator();
    if (term == nullptr || term->op() != Opcode::condbr)
        return true;
    unsigned t0 = term->target(0)->index();
    unsigned t1 = term->target(1)->index();
    if (t0 == t1)
        return true;
    bool polarity = next == t0; // target(0) is the true edge
    const Instruction *cmp = peelCondChain(term->operand(0), polarity);
    if (cmp == nullptr)
        return true;
    IntPred pred =
        polarity ? cmp->intPred() : negatePred(cmp->intPred());
    return constrainCompare(*cmp, pred);
}

PathVerdict
PathExec::checkFault(const StaticFinding &finding,
                     const Instruction &inst, std::string &note)
{
    if (inst.op() != Opcode::load && inst.op() != Opcode::store) {
        note = "fault site is not a direct memory access";
        return PathVerdict::unknown;
    }
    SymVal addr = evalValue(
        inst.operand(inst.op() == Opcode::load ? 0 : 1));
    if (addr.kind != SymVal::Kind::ptr) {
        note = "address is not tracked symbolically";
        return PathVerdict::unknown;
    }

    SmtLite::Outcome path = solver_.solve();
    if (path.result == SmtLite::Result::unsat) {
        note = "branch contradiction: " + path.reason;
        return PathVerdict::infeasible;
    }

    if (finding.kind == ErrorKind::nullDeref) {
        if (addr.base == kBaseNull) {
            if (path.result == SmtLite::Result::sat) {
                note = "pointer is null under " + path.reason;
                return PathVerdict::faultFeasible;
            }
            note = "pointer is null, path feasibility undecided";
            return PathVerdict::unknown;
        }
        if ((addr.base >= 0 || addr.base == kBaseGlobal) &&
            !addr.mayBeNull) {
            note = "pointer provably refers to an object, never null";
            return PathVerdict::faultImpossible;
        }
        note = "pointer nullness not decided symbolically";
        return PathVerdict::unknown;
    }

    if (finding.kind != ErrorKind::outOfBounds) {
        note = "error kind out of the solver's scope";
        return PathVerdict::unknown;
    }
    if (addr.base < 0) {
        note = "access target object not tracked symbolically";
        return PathVerdict::unknown;
    }
    int64_t width = static_cast<int64_t>(inst.accessType()->size());
    int vOff = materialize(addr.off, "off");
    int vSize = materialize(objects_[addr.base].size, "size");

    // Underflow: S /\ off <= -1.
    SmtLite under = solver_;
    under.addLe(vOff, SmtLite::kConst, -1);
    SmtLite::Outcome u = under.solve();
    if (u.result == SmtLite::Result::sat) {
        note = "underflow model: " + u.reason;
        return PathVerdict::faultFeasible;
    }
    // Overflow: S /\ size <= off + width - 1  (i.e. off+width > size).
    SmtLite over = solver_;
    over.addLe(vSize, vOff, width - 1);
    SmtLite::Outcome o = over.solve();
    if (o.result == SmtLite::Result::sat) {
        note = "overflow model: " + o.reason;
        return PathVerdict::faultFeasible;
    }
    if (u.result == SmtLite::Result::unsat &&
        o.result == SmtLite::Result::unsat) {
        note = "access in bounds (" + u.reason + "; " + o.reason + ")";
        return PathVerdict::faultImpossible;
    }
    note = "bounds not decided within solver budget";
    return PathVerdict::unknown;
}

} // namespace

PathRefuter::PathRefuter(const Module &module, const Function &fn)
    : module_(module), fn_(fn), cfg_(fn)
{}

RefutationCheck
PathRefuter::check(const StaticFinding &finding) const
{
    RefutationCheck out;
    if (finding.kind != ErrorKind::outOfBounds &&
        finding.kind != ErrorKind::nullDeref) {
        out.certificate = "error kind out of the solver's scope";
        return out;
    }
    if (finding.blockIndex >= fn_.blocks().size()) {
        out.certificate = "finding does not map to a block";
        return out;
    }
    const BasicBlock &targetBlock = *fn_.blocks()[finding.blockIndex];
    if (finding.instIndex >= targetBlock.insts().size()) {
        out.certificate = "finding does not map to an instruction";
        return out;
    }
    unsigned target = finding.blockIndex;
    if (!cfg_.reachable(target)) {
        out.certificate = "fault block unreachable";
        return out;
    }

    // Region: blocks that are reachable from the entry AND reach the
    // fault block. Every real execution hitting the fault stays inside.
    size_t n = cfg_.numBlocks();
    std::vector<bool> region(n, false);
    {
        std::vector<unsigned> stack{target};
        region[target] = true;
        while (!stack.empty()) {
            unsigned b = stack.back();
            stack.pop_back();
            for (unsigned p : cfg_.preds(b)) {
                if (!region[p] && cfg_.reachable(p)) {
                    region[p] = true;
                    stack.push_back(p);
                }
            }
        }
    }
    unsigned entry = fn_.entry()->index();
    if (!region[entry]) {
        out.certificate = "fault block not reachable from entry";
        return out;
    }

    // Acyclicity of the region (edges out of the fault block excluded:
    // paths end there). A loop would make path enumeration incomplete.
    {
        std::vector<uint8_t> color(n, 0);
        std::vector<std::pair<unsigned, size_t>> stack{{entry, 0}};
        color[entry] = 1;
        while (!stack.empty()) {
            auto &[b, child] = stack.back();
            const auto &succs = cfg_.succs(b);
            bool descended = false;
            while (b != target && child < succs.size()) {
                unsigned s = succs[child++];
                if (!region[s])
                    continue;
                if (color[s] == 1) {
                    out.certificate = "witness paths contain a loop";
                    return out;
                }
                if (color[s] == 0) {
                    color[s] = 1;
                    stack.push_back({s, 0});
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                color[b] = 2;
                stack.pop_back();
            }
        }
    }

    // Enumerate every entry -> fault path of the (acyclic) region.
    std::vector<std::vector<unsigned>> paths;
    {
        std::vector<std::pair<unsigned, size_t>> stack{{entry, 0}};
        std::vector<unsigned> current{entry};
        while (!stack.empty()) {
            auto &[b, child] = stack.back();
            if (b == target) {
                paths.push_back(current);
                if (paths.size() > kMaxPaths) {
                    out.certificate = "too many witness paths";
                    return out;
                }
                stack.pop_back();
                current.pop_back();
                continue;
            }
            const auto &succs = cfg_.succs(b);
            bool descended = false;
            while (child < succs.size()) {
                unsigned s = succs[child++];
                if (!region[s])
                    continue;
                stack.push_back({s, 0});
                current.push_back(s);
                descended = true;
                break;
            }
            if (!descended) {
                stack.pop_back();
                current.pop_back();
            }
        }
    }
    if (paths.empty()) {
        out.certificate = "no witness path found";
        return out;
    }

    bool isMain = fn_.name() == "main";
    const Instruction &faultInst =
        *targetBlock.insts()[finding.instIndex];
    std::ostringstream cert;
    bool allRefuted = true;
    for (const std::vector<unsigned> &path : paths) {
        PathExec exec(fn_, isMain);
        PathVerdict verdict = PathVerdict::infeasible;
        std::string note = "constant branch contradiction";
        bool alive = true;
        for (size_t i = 0; i + 1 < path.size() && alive; i++) {
            alive = exec.runBlock(path[i],
                                  fn_.blocks()[path[i]]->insts().size()) &&
                exec.addEdgeConstraint(path[i], path[i + 1]);
        }
        if (alive) {
            if (!exec.runBlock(target, finding.instIndex)) {
                note = "constant branch contradiction";
            } else {
                verdict = exec.checkFault(finding, faultInst, note);
            }
        }
        if (verdict == PathVerdict::faultFeasible) {
            out.verdict = RefuteVerdict::feasible;
            std::ostringstream os;
            os << "path";
            for (unsigned b : path)
                os << " b" << b;
            os << ": " << note;
            out.certificate = os.str();
            return out;
        }
        if (verdict == PathVerdict::unknown) {
            allRefuted = false;
            out.certificate = note;
            continue;
        }
        cert << (cert.tellp() > 0 ? "; " : "") << "path";
        for (unsigned b : path)
            cert << " b" << b;
        cert << ": " << note;
    }
    if (allRefuted) {
        out.verdict = RefuteVerdict::provenInfeasible;
        out.certificate = cert.str();
    }
    return out;
}

} // namespace sulong
