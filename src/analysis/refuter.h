/**
 * @file
 * Refutation stage: bounded concrete replay of the analyzed program.
 *
 * A small whole-program interpreter re-executes the module from main()
 * with the managed engine's error semantics (same check order: null,
 * use-after-free, bounds; same free/realloc rules; byte-granular
 * uninitialized-read tracking for stack and heap storage). Values that
 * depend on inputs the replay does not have (stdin bytes beyond the
 * provided buffer, unresolved externals) are poison; the replay stops as
 * inconclusive the moment poison would steer control flow or address a
 * memory access, so any fault it does reach is reached along a fully
 * concrete prefix — exactly what the dynamic engine would execute.
 *
 * The analyzer uses the replay in both directions: a candidate finding is
 * confirmed (stays `definite`) only when the replay faults at the same
 * instruction with the same error kind; and a replay fault with no
 * matching candidate becomes a new definite finding.
 */

#ifndef MS_ANALYSIS_REFUTER_H
#define MS_ANALYSIS_REFUTER_H

#include <optional>

#include "analysis/finding.h"
#include "ir/module.h"

namespace sulong
{

/** How a concrete replay ended. */
enum class ReplayEnd : uint8_t
{
    /// Tripped a memory-safety check; `fault` is filled in.
    fault,
    /// Guest called exit() or returned from main.
    exit,
    /// Unknown value reached control flow / an address, a resource
    /// budget ran out, or an unmodelled construct was hit.
    inconclusive,
};

/** Result of one bounded concrete replay. */
struct ReplayResult
{
    ReplayEnd end = ReplayEnd::inconclusive;
    /// Why an inconclusive replay stopped (diagnostic only).
    std::string reason;
    /// The fault, as a StaticFinding anchored at the faulting
    /// instruction (confidence definite, replayConfirmed set).
    std::optional<StaticFinding> fault;
    /// Instructions executed.
    uint64_t steps = 0;
};

/** Replay @p module from main() under the option budgets. */
ReplayResult replayModule(const Module &module,
                          const AnalysisOptions &options);

} // namespace sulong

#endif // MS_ANALYSIS_REFUTER_H
