/**
 * @file
 * Path-condition extraction and constraint-based refutation of static
 * findings.
 *
 * For a maybe-finding the interval fixpoint could not decide, the
 * PathRefuter re-derives the finding's witness paths symbolically:
 * it enumerates the acyclic entry-to-fault paths of the CFG, executes
 * each path over a small linear symbolic domain (affine expressions over
 * bounded fresh variables, per-object constant-offset memories), turns
 * the branch conditions along the path into SmtLite constraints, and
 * asks the solver whether any path admits the fault.
 *
 * The verdict is deliberately one-sided:
 *  - `provenInfeasible` is returned only when the enumeration was
 *    complete (acyclic region, under the path cap) and EVERY path is
 *    either contradictory or proves the access in bounds — the solver's
 *    UNSAT results are proofs, so the finding can be dropped with a
 *    certificate.
 *  - `feasible` means some path admits a concrete, exactly-verified
 *    model of the fault.
 *  - Anything the symbolic domain cannot express (loops, too many
 *    paths, smashed memory, unsigned comparisons as the only hope)
 *    degrades to `unknown`, which the pipeline routes to the concrete
 *    replayer — never to dropping the finding.
 */

#ifndef MS_ANALYSIS_CONSTRAINTS_H
#define MS_ANALYSIS_CONSTRAINTS_H

#include <string>

#include "analysis/finding.h"
#include "ir/cfg.h"
#include "ir/module.h"

namespace sulong
{

/** Outcome of one refutation attempt. */
enum class RefuteVerdict : uint8_t
{
    /// All witness paths refuted; the finding can be dropped.
    provenInfeasible,
    /// A concrete model reaches the fault; keep the finding.
    feasible,
    /// Out of scope for the symbolic domain; fall back to the replayer.
    unknown,
};

const char *refuteVerdictName(RefuteVerdict verdict);

struct RefutationCheck
{
    RefuteVerdict verdict = RefuteVerdict::unknown;
    /// provenInfeasible: the per-path refutation certificate.
    /// feasible: the satisfying model. unknown: why it gave up.
    std::string certificate;
};

/**
 * Refutes findings within one function. Construction precomputes the
 * CFG; check() is then called once per finding in that function.
 */
class PathRefuter
{
  public:
    PathRefuter(const Module &module, const Function &fn);

    /** Attempt to refute @p finding (which must belong to this
     *  function). */
    RefutationCheck check(const StaticFinding &finding) const;

  private:
    const Module &module_;
    const Function &fn_;
    Cfg cfg_;
};

} // namespace sulong

#endif // MS_ANALYSIS_CONSTRAINTS_H
