#include "analysis/lattice.h"

#include <sstream>

namespace sulong
{

namespace
{

int64_t
saturate(__int128 v)
{
    if (v > INT64_MAX)
        return INT64_MAX;
    if (v < INT64_MIN)
        return INT64_MIN;
    return static_cast<int64_t>(v);
}

} // namespace

std::string
Interval::toString() const
{
    if (isEmpty())
        return "[]";
    if (isTop())
        return "[-inf,+inf]";
    std::ostringstream os;
    os << "[";
    if (lo == INT64_MIN)
        os << "-inf";
    else
        os << lo;
    os << ",";
    if (hi == INT64_MAX)
        os << "+inf";
    else
        os << hi;
    os << "]";
    return os.str();
}

Interval
intervalAdd(const Interval &a, const Interval &b)
{
    if (a.isEmpty() || b.isEmpty())
        return Interval::empty();
    return {saturate(static_cast<__int128>(a.lo) + b.lo),
            saturate(static_cast<__int128>(a.hi) + b.hi)};
}

Interval
intervalSub(const Interval &a, const Interval &b)
{
    if (a.isEmpty() || b.isEmpty())
        return Interval::empty();
    return {saturate(static_cast<__int128>(a.lo) - b.hi),
            saturate(static_cast<__int128>(a.hi) - b.lo)};
}

Interval
intervalMul(const Interval &a, const Interval &b)
{
    if (a.isEmpty() || b.isEmpty())
        return Interval::empty();
    // The rails are not meaningful factors: a product with an unbounded
    // side is unbounded (except by zero, handled by the corner scan).
    if (a.isTop() || b.isTop() || a.lo == INT64_MIN || a.hi == INT64_MAX ||
        b.lo == INT64_MIN || b.hi == INT64_MAX) {
        if (a.isSingleton() && a.lo == 0)
            return Interval::of(0);
        if (b.isSingleton() && b.lo == 0)
            return Interval::of(0);
        return Interval::top();
    }
    __int128 corners[4] = {
        static_cast<__int128>(a.lo) * b.lo,
        static_cast<__int128>(a.lo) * b.hi,
        static_cast<__int128>(a.hi) * b.lo,
        static_cast<__int128>(a.hi) * b.hi,
    };
    __int128 lo = corners[0], hi = corners[0];
    for (__int128 c : corners) {
        lo = c < lo ? c : lo;
        hi = c > hi ? c : hi;
    }
    return {saturate(lo), saturate(hi)};
}

Interval
intervalNeg(const Interval &a)
{
    return intervalSub(Interval::of(0), a);
}

Interval
intervalOfWidth(unsigned bits)
{
    if (bits >= 64)
        return Interval::top();
    int64_t half = int64_t{1} << (bits - 1);
    return {-half, half - 1};
}

Interval
intervalWrap(const Interval &a, unsigned bits)
{
    if (a.isEmpty() || bits >= 64)
        return a;
    Interval full = intervalOfWidth(bits);
    if (a.lo >= full.lo && a.hi <= full.hi)
        return a;
    if (a.isSingleton()) {
        uint64_t mask = (uint64_t{1} << bits) - 1;
        uint64_t raw = static_cast<uint64_t>(a.lo) & mask;
        // Sign-extend back to the canonical representation.
        if (raw & (uint64_t{1} << (bits - 1)))
            raw |= ~mask;
        return Interval::of(static_cast<int64_t>(raw));
    }
    return full;
}

std::string
AbstractValue::toString() const
{
    switch (kind) {
      case Kind::any:
        return "any";
      case Kind::intVal:
        return "int" + ival.toString();
      case Kind::fpVal:
        return "fp";
      case Kind::pointer: {
        std::ostringstream os;
        os << "ptr{";
        bool first = true;
        if (canBeNull) {
            os << "null";
            first = false;
        }
        if (canBeUnknown) {
            os << (first ? "" : "|") << "?";
            first = false;
        }
        for (const PointerTarget &t : targets) {
            os << (first ? "" : "|") << "obj" << t.obj
               << "+" << t.offset.toString();
            first = false;
        }
        os << "}";
        return os.str();
      }
    }
    return "invalid";
}

namespace
{

AbstractValue
mergeValues(const AbstractValue &a, const AbstractValue &b, bool widen)
{
    if (a.kind != b.kind)
        return AbstractValue::top();
    AbstractValue out;
    out.kind = a.kind;
    switch (a.kind) {
      case AbstractValue::Kind::any:
      case AbstractValue::Kind::fpVal:
        break;
      case AbstractValue::Kind::intVal:
        out.ival = widen ? a.ival.widen(a.ival.join(b.ival))
                         : a.ival.join(b.ival);
        break;
      case AbstractValue::Kind::pointer: {
        out.canBeNull = a.canBeNull || b.canBeNull;
        out.canBeUnknown = a.canBeUnknown || b.canBeUnknown;
        out.targets = a.targets;
        for (const PointerTarget &t : b.targets) {
            bool merged = false;
            for (PointerTarget &have : out.targets) {
                if (have.obj == t.obj) {
                    have.offset = widen
                        ? have.offset.widen(have.offset.join(t.offset))
                        : have.offset.join(t.offset);
                    merged = true;
                    break;
                }
            }
            if (!merged)
                out.targets.push_back(t);
        }
        // A degenerate may-set: cap the target fan-out so pathological
        // merges cannot make states quadratic.
        if (out.targets.size() > 8) {
            out.targets.clear();
            out.canBeUnknown = true;
        }
        break;
      }
    }
    return out;
}

} // namespace

AbstractValue
joinValues(const AbstractValue &a, const AbstractValue &b)
{
    return mergeValues(a, b, false);
}

AbstractValue
widenValues(const AbstractValue &a, const AbstractValue &b)
{
    return mergeValues(a, b, true);
}

bool
ObjState::operator==(const ObjState &o) const
{
    if (live != o.live || dflt != o.dflt ||
        weaklyWritten != o.weaklyWritten || escaped != o.escaped)
        return false;
    if (contents.size() != o.contents.size())
        return false;
    auto it = o.contents.begin();
    for (const auto &[off, entry] : contents) {
        if (it->first != off || it->second.width != entry.width ||
            it->second.mayBeUninit != entry.mayBeUninit ||
            it->second.val != entry.val)
            return false;
        ++it;
    }
    return true;
}

} // namespace sulong
