/**
 * @file
 * Structured results of the static bug-finding layer.
 *
 * The analyzer reports candidate memory errors in the shared ErrorKind
 * taxonomy so that static findings, dynamic BugReports, and the corpus
 * ground truth can all be compared through study/classifier.h's BugClass
 * without parallel string tables.
 */

#ifndef MS_ANALYSIS_FINDING_H
#define MS_ANALYSIS_FINDING_H

#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/error.h"

namespace sulong
{

/**
 * How sure the analyzer is about a finding.
 *
 * `definite` is contractual: over the bug corpus, every definite finding
 * must agree with the dynamic detector (zero false definites, CI-gated).
 * After the refutation stage, a finding is definite only when the bounded
 * concrete replay of the program reproduced the fault at the same
 * instruction with the same error kind; everything the replay could not
 * confirm — paths depending on unknown inputs, joins that merged a safe
 * path in, widened loop bounds — is demoted to `maybe`.
 */
enum class Confidence : uint8_t
{
    maybe,
    definite,
};

const char *confidenceName(Confidence confidence);

/** One static finding, addressable down to the faulting instruction. */
struct StaticFinding
{
    ErrorKind kind = ErrorKind::none;
    AccessKind access = AccessKind::read;
    StorageKind storage = StorageKind::unknown;
    BoundsDirection direction = BoundsDirection::unknown;
    Confidence confidence = Confidence::maybe;

    /// Function containing the faulting instruction.
    std::string function;
    /// Block index and instruction index within the function.
    unsigned blockIndex = 0;
    unsigned instIndex = 0;
    SourceLoc loc;

    /// Free-form description of the violation itself.
    std::string detail;
    /// The abstract facts under which the fault occurs (the path
    /// condition the fixpoint derived), e.g. "offset in [40,40] of
    /// 40-byte stack object 'buf'".
    std::string pathCondition;
    /// Set by the refutation stage when the concrete replay reproduced
    /// the fault (the only way a finding stays definite after it).
    bool replayConfirmed = false;

    /// Byte offset of the access relative to the object, when constant.
    std::optional<int64_t> offset;
    /// Size of the object involved, when known.
    std::optional<int64_t> objectSize;

    /** One-line rendering, e.g. for --analyze output. */
    std::string toString() const;
};

/**
 * A finding the constraint solver dropped, with the proof sketch.
 * Kept on the report (rather than silently deleting the finding) so
 * the pipeline's decisions stay auditable and testable.
 */
struct Refutation
{
    std::string function;
    unsigned blockIndex = 0;
    unsigned instIndex = 0;
    ErrorKind kind = ErrorKind::none;
    /// Per-witness-path refutation certificate from the solver.
    std::string certificate;

    std::string toString() const;
};

/** Tuning knobs of one analysis run. */
struct AnalysisOptions
{
    /// Run the refutation stage (concrete replay from main). Without it,
    /// `definite` means "abstractly must-fault", which is NOT covered by
    /// the zero-false-definite contract.
    bool refute = true;
    /// Analyze only functions compiled from user code ("<input>" /
    /// corpus sources); libc definitions are skipped. The libc smoke
    /// test flips this off to sweep the libc bodies themselves.
    bool userCodeOnly = true;
    /// Compute bottom-up function summaries over the SCC condensation
    /// and apply them at call sites. Off = PR-4 behaviour (calls to
    /// user functions havoc everything reachable).
    bool summaries = true;
    /// Run the SMT-lite constraint refutation stage before the concrete
    /// replay; proven-infeasible findings are dropped with a
    /// certificate.
    bool solver = true;
    /// Fixpoint rounds for a recursive SCC's summaries before the whole
    /// SCC degrades to pessimistic.
    unsigned summaryDepth = 3;
    /// Worker threads for same-depth SCCs (1 = fully sequential).
    /// Findings are merged in function order, so results are identical
    /// for any value.
    unsigned jobs = 1;
    /// Joins at one block before intervals are widened to +/-inf.
    unsigned widenAfter = 6;
    /// Fixpoint visits of one block before the function is abandoned
    /// (reported as incomplete; its findings stay maybe).
    unsigned maxBlockVisits = 80;
    /// Instruction budget of the concrete replay.
    uint64_t replaySteps = 4 * 1000 * 1000;
    /// Guest heap budget of the concrete replay, in bytes.
    uint64_t replayHeapBytes = 64ull << 20;
    /// Call-depth budget of the concrete replay.
    unsigned replayDepth = 512;
    /// Program arguments / stdin consumed by the concrete replay (the
    /// corpus harness passes the entry's trigger input).
    std::vector<std::string> replayArgs;
    std::string replayStdin;
};

/** Everything one analysis run produced. */
struct AnalysisReport
{
    std::vector<StaticFinding> findings;
    /// Findings the constraint solver proved infeasible and dropped.
    std::vector<Refutation> refutations;
    /// Number of function definitions visited by the fixpoint.
    unsigned functionsAnalyzed = 0;
    /// Strongly connected components of the call graph.
    unsigned sccCount = 0;
    /// Call sites where a callee summary was applied instead of a havoc.
    unsigned summariesApplied = 0;
    /// Findings the solver examined / could not decide.
    unsigned solverChecked = 0;
    unsigned solverUnknown = 0;
    /// True when some function hit maxBlockVisits and was abandoned.
    bool incomplete = false;
    /// True when the refutation replay ran (a main() was present).
    bool replayRan = false;
    /// How the replay ended: "fault", "exit", "inconclusive", "" (not run).
    std::string replayOutcome;

    unsigned definiteCount() const;
    unsigned maybeCount() const;
    /// Findings of one confidence tier, in program order.
    std::vector<StaticFinding> byConfidence(Confidence confidence) const;

    /** Multi-line rendering of all findings plus a one-line summary. */
    std::string toString() const;
};

} // namespace sulong

#endif // MS_ANALYSIS_FINDING_H
