#include "analysis/summary.h"

#include <sstream>

namespace sulong
{

using Ret = FunctionSummary::Ret;

namespace
{

/** Sound join of two contents defaults (summary-level: no per-path
 *  weaklyWritten refinement, so anything touching `uninit` degrades to
 *  maybeUninit rather than staying definite). */
ContentsDefault
joinContents(ContentsDefault a, ContentsDefault b)
{
    if (a == b)
        return a;
    if (a == ContentsDefault::maybeUninit ||
        b == ContentsDefault::maybeUninit)
        return ContentsDefault::maybeUninit;
    if (a == ContentsDefault::uninit || b == ContentsDefault::uninit)
        return ContentsDefault::maybeUninit;
    return ContentsDefault::unknown;
}

bool
sameAffine(const FunctionSummary &a, const FunctionSummary &b)
{
    if (a.hasAffine != b.hasAffine)
        return false;
    if (!a.hasAffine)
        return true;
    if (a.affineArg != b.affineArg ||
        a.prefixes.size() != b.prefixes.size())
        return false;
    for (size_t i = 0; i < a.prefixes.size(); i++) {
        if (a.prefixes[i].mul != b.prefixes[i].mul ||
            a.prefixes[i].add != b.prefixes[i].add ||
            a.prefixes[i].bits != b.prefixes[i].bits)
            return false;
    }
    return true;
}

} // namespace

FunctionSummary
FunctionSummary::makePessimistic(size_t num_params)
{
    FunctionSummary s;
    s.computed = true;
    s.pessimistic = true;
    s.writesGlobals = true;
    s.ret = Ret::unknown;
    ParamEffect all;
    all.pointeeWritten = all.escapes = all.mayFree = true;
    s.params.assign(num_params, all);
    return s;
}

std::string
FunctionSummary::toString() const
{
    std::ostringstream os;
    if (!computed)
        return "<uncomputed>";
    if (pessimistic)
        return "<pessimistic>";
    switch (ret) {
      case Ret::none:
        os << (neverReturns ? "noreturn" : "void");
        break;
      case Ret::interval:
        os << "ret " << retInterval.toString();
        break;
      case Ret::freshHeap:
        os << "ret heap[" << allocSize.toString() << "]"
           << (retMayBeNull ? "?" : "");
        break;
      case Ret::unknown:
        os << "ret ?";
        break;
    }
    if (hasAffine)
        os << " affine(arg" << affineArg << ")";
    if (writesGlobals)
        os << " writes-globals";
    for (size_t i = 0; i < params.size(); i++) {
        const ParamEffect &p = params[i];
        if (!p.pointeeWritten && !p.escapes && !p.mayFree)
            continue;
        os << " p" << i << "{" << (p.pointeeWritten ? "w" : "")
           << (p.escapes ? "e" : "") << (p.mayFree ? "f" : "") << "}";
    }
    return os.str();
}

bool
joinSummaryInto(FunctionSummary &into, const FunctionSummary &from,
                bool widen)
{
    if (!from.computed)
        return false;
    if (!into.computed) {
        into = from;
        return true;
    }
    FunctionSummary joined = into;
    joined.pessimistic = into.pessimistic || from.pessimistic;
    joined.writesGlobals = into.writesGlobals || from.writesGlobals;
    joined.neverReturns = into.neverReturns && from.neverReturns;

    // Return-shape lattice: none is bottom, unknown is top.
    if (into.ret == Ret::none) {
        joined.ret = from.ret;
        joined.retInterval = from.retInterval;
        joined.allocSize = from.allocSize;
        joined.allocContents = from.allocContents;
        joined.retMayBeNull = from.retMayBeNull;
        joined.hasAffine = from.hasAffine;
        joined.affineArg = from.affineArg;
        joined.prefixes = from.prefixes;
    } else if (from.ret == Ret::none || into.ret == from.ret) {
        if (from.ret == Ret::interval) {
            joined.retInterval = widen
                ? into.retInterval.widen(
                      into.retInterval.join(from.retInterval))
                : into.retInterval.join(from.retInterval);
        }
        if (from.ret == Ret::freshHeap) {
            joined.allocSize = widen
                ? into.allocSize.widen(
                      into.allocSize.join(from.allocSize))
                : into.allocSize.join(from.allocSize);
            joined.allocContents =
                joinContents(into.allocContents, from.allocContents);
            joined.retMayBeNull =
                into.retMayBeNull || from.retMayBeNull;
        }
        if (from.ret != Ret::none && !sameAffine(into, from))
            joined.hasAffine = false;
    } else {
        joined.ret = Ret::unknown;
        joined.hasAffine = false;
    }

    size_t params = std::max(into.params.size(), from.params.size());
    joined.params.resize(params);
    for (size_t i = 0; i < from.params.size(); i++) {
        joined.params[i].pointeeWritten |= from.params[i].pointeeWritten;
        joined.params[i].escapes |= from.params[i].escapes;
        joined.params[i].mayFree |= from.params[i].mayFree;
    }

    bool changed = joined.pessimistic != into.pessimistic ||
        joined.writesGlobals != into.writesGlobals ||
        joined.neverReturns != into.neverReturns ||
        joined.ret != into.ret ||
        joined.retInterval != into.retInterval ||
        joined.allocSize != into.allocSize ||
        joined.allocContents != into.allocContents ||
        joined.retMayBeNull != into.retMayBeNull ||
        !sameAffine(joined, into) ||
        joined.params.size() != into.params.size();
    if (!changed) {
        for (size_t i = 0; i < params; i++) {
            const ParamEffect &a = joined.params[i];
            const ParamEffect &b = into.params[i];
            if (a.pointeeWritten != b.pointeeWritten ||
                a.escapes != b.escapes || a.mayFree != b.mayFree) {
                changed = true;
                break;
            }
        }
    }
    into = std::move(joined);
    return changed;
}

Interval
affineApply(const FunctionSummary &summary, Interval arg)
{
    if (!summary.hasAffine || summary.prefixes.empty() || arg.isEmpty())
        return Interval::empty();
    Interval result = Interval::empty();
    for (const AffineStep &step : summary.prefixes) {
        // Refuse 64-bit steps: saturating interval arithmetic cannot
        // distinguish "saturated" from "the true bound", so the wrap
        // guard below would be vacuous at the full width.
        if (step.bits >= 64)
            return Interval::empty();
        Interval image = intervalAdd(
            intervalMul(arg, Interval::of(step.mul)),
            Interval::of(step.add));
        Interval width = intervalOfWidth(step.bits);
        if (image.lo < width.lo || image.hi > width.hi)
            return Interval::empty();
        result = image;
    }
    return result;
}

} // namespace sulong
