/**
 * @file
 * SMT-lite constraint solver for refuting static-finding path
 * conditions.
 *
 * The solver handles exactly the constraint language the path refuter
 * emits (constraints.h): bounded integer variables, affine equalities
 * `a = m*b + k`, offset inequalities `a <= b + k`, and constant
 * disequalities `v != c`. It decides systems by interval propagation to
 * a fixpoint, with a small lo/mid/hi split search used only to find
 * satisfying models. The asymmetry is deliberate and is what keeps the
 * refutation pipeline sound:
 *
 *  - UNSAT is claimed only when top-level propagation empties a
 *    variable's domain — a proof that no assignment exists.
 *  - SAT is claimed only for a concrete all-singleton assignment that
 *    passes exact (128-bit) re-verification of every constraint.
 *  - Everything else is `unknown`, which the analysis pipeline routes
 *    to the concrete replayer instead of dropping the finding.
 */

#ifndef MS_ANALYSIS_SOLVER_H
#define MS_ANALYSIS_SOLVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lattice.h"

namespace sulong
{

/** A conjunction of constraints over bounded 64-bit integer variables. */
class SmtLite
{
  public:
    /// Sentinel for the right-hand variable of addLe: `a <= k` alone.
    static constexpr int kConst = -1;

    enum class Result : uint8_t
    {
        /// Proven: no assignment satisfies the system.
        unsat,
        /// A concrete model was found and exactly verified.
        sat,
        /// The solver could not decide within its budgets.
        unknown,
    };

    struct Outcome
    {
        Result result = Result::unknown;
        /// unsat: the propagation step that emptied a domain.
        /// sat: rendering of the model. unknown: why it gave up.
        std::string reason;
        /// Result::sat only: one value per variable.
        std::vector<int64_t> model;
    };

    /** New variable with declared domain @p domain (empty → immediate
     *  UNSAT on solve). Returns its id. */
    int addVar(const Interval &domain, std::string name = "");

    /** a = mul*b + add (mul must be nonzero). */
    void addEq(int a, int b, int64_t mul, int64_t add);

    /** a <= b + k; pass b = kConst for the unary form a <= k. */
    void addLe(int a, int b, int64_t k);

    /** v != c. */
    void addNeq(int v, int64_t c);

    size_t numVars() const { return domains_.size(); }
    size_t numConstraints() const
    {
        return eqs_.size() + les_.size() + neqs_.size();
    }

    /** Decide the current system. The system itself is not modified, so
     *  callers may add constraints and re-solve incrementally. */
    Outcome solve() const;

  private:
    struct Eq
    {
        int a;
        int b;
        int64_t mul;
        int64_t add;
    };
    struct Le
    {
        int a;
        int b; // kConst for the unary form
        int64_t k;
    };
    struct Neq
    {
        int v;
        int64_t c;
    };

    std::string varName(int v) const;
    std::string describeEq(const Eq &eq) const;
    std::string describeLe(const Le &le) const;

    /// Propagate to fixpoint over @p dom; false = emptied (reason set).
    bool propagate(std::vector<Interval> &dom, std::string &reason) const;
    /// Exact 128-bit check of every constraint against a full model.
    bool verifyModel(const std::vector<int64_t> &model) const;
    /// Depth-bounded lo/mid/hi search for a verified model.
    bool searchModel(std::vector<Interval> dom, unsigned depth,
                     unsigned &budget, std::vector<int64_t> &model) const;

    std::vector<Interval> domains_;
    std::vector<std::string> names_;
    std::vector<Eq> eqs_;
    std::vector<Le> les_;
    std::vector<Neq> neqs_;
};

} // namespace sulong

#endif // MS_ANALYSIS_SOLVER_H
