#include "analysis/finding.h"

#include <sstream>

#include "support/error.h"

namespace sulong
{

const char *
confidenceName(Confidence confidence)
{
    switch (confidence) {
      case Confidence::maybe:
        return "maybe";
      case Confidence::definite:
        return "definite";
    }
    return "invalid";
}

std::string
StaticFinding::toString() const
{
    std::ostringstream os;
    os << "[" << confidenceName(confidence) << "] "
       << errorKindName(kind) << " in " << function;
    if (loc.valid())
        os << " (" << loc.toString() << ")";
    else
        os << " (block " << blockIndex << ", inst " << instIndex << ")";
    os << ": " << detail;
    if (replayConfirmed)
        os << " [replay-confirmed]";
    if (!pathCondition.empty())
        os << "\n    under: " << pathCondition;
    return os.str();
}

std::string
Refutation::toString() const
{
    return "refuted " + std::string(errorKindName(kind)) + " in " +
        function + " (block " + std::to_string(blockIndex) + ", inst " +
        std::to_string(instIndex) + "): " + certificate;
}

unsigned
AnalysisReport::definiteCount() const
{
    unsigned n = 0;
    for (const StaticFinding &f : findings)
        if (f.confidence == Confidence::definite)
            n++;
    return n;
}

unsigned
AnalysisReport::maybeCount() const
{
    return static_cast<unsigned>(findings.size()) - definiteCount();
}

std::vector<StaticFinding>
AnalysisReport::byConfidence(Confidence confidence) const
{
    std::vector<StaticFinding> out;
    for (const StaticFinding &f : findings)
        if (f.confidence == confidence)
            out.push_back(f);
    return out;
}

std::string
AnalysisReport::toString() const
{
    std::ostringstream os;
    for (Confidence tier : {Confidence::definite, Confidence::maybe}) {
        for (const StaticFinding &f : findings)
            if (f.confidence == tier)
                os << f.toString() << "\n";
    }
    for (const Refutation &r : refutations)
        os << r.toString() << "\n";
    os << "analysis: " << definiteCount() << " definite, " << maybeCount()
       << " maybe across " << functionsAnalyzed << " function(s)";
    if (incomplete)
        os << " (incomplete: a fixpoint was abandoned)";
    if (!refutations.empty())
        os << "; solver refuted " << refutations.size();
    if (replayRan)
        os << "; replay: " << replayOutcome;
    return os.str();
}

} // namespace sulong
