/**
 * @file
 * The abstract domain of the static analyzer (DESIGN.md "Static analysis
 * layer"): signed-64-bit intervals for integers, and pointer values as a
 * may-set of (abstract object, offset interval) targets plus null/unknown
 * flags. Abstract memory is a per-object map from constant byte offsets
 * to typed scalar entries, which is what makes the unoptimized codegen
 * analyzable at all: every C local is an alloca, so loop counters and
 * lengths only exist as memory contents.
 */

#ifndef MS_ANALYSIS_LATTICE_H
#define MS_ANALYSIS_LATTICE_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"

namespace sulong
{

/**
 * A signed 64-bit interval [lo, hi]; lo > hi encodes the empty interval
 * (an infeasible refinement). Arithmetic saturates at the rails, which
 * over-approximates (sound for a may-analysis).
 */
struct Interval
{
    int64_t lo = INT64_MIN;
    int64_t hi = INT64_MAX;

    static Interval top() { return {}; }
    static Interval of(int64_t v) { return {v, v}; }
    static Interval range(int64_t lo, int64_t hi) { return {lo, hi}; }
    static Interval empty() { return {1, 0}; }

    bool isTop() const { return lo == INT64_MIN && hi == INT64_MAX; }
    bool isEmpty() const { return lo > hi; }
    bool isSingleton() const { return lo == hi; }
    bool contains(int64_t v) const { return lo <= v && v <= hi; }

    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Interval &o) const { return !(*this == o); }

    Interval join(const Interval &o) const
    {
        if (isEmpty())
            return o;
        if (o.isEmpty())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    Interval meet(const Interval &o) const
    {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    /** Classic widening: bounds that grew jump to the rails. */
    Interval widen(const Interval &next) const
    {
        if (isEmpty())
            return next;
        if (next.isEmpty())
            return *this;
        Interval w = *this;
        if (next.lo < lo)
            w.lo = INT64_MIN;
        if (next.hi > hi)
            w.hi = INT64_MAX;
        return w;
    }

    std::string toString() const;
};

/// Saturating interval arithmetic.
Interval intervalAdd(const Interval &a, const Interval &b);
Interval intervalSub(const Interval &a, const Interval &b);
Interval intervalMul(const Interval &a, const Interval &b);
Interval intervalNeg(const Interval &a);

/**
 * Clamp an interval to the value range of an @p bits wide signed
 * integer, modelling two's-complement wraparound: singletons wrap
 * exactly, in-range intervals pass through, everything else goes to the
 * full range of the width.
 */
Interval intervalWrap(const Interval &a, unsigned bits);

/// The full signed range of a width, e.g. [-128,127] for 8.
Interval intervalOfWidth(unsigned bits);

/** One may-point-to target of a pointer value. */
struct PointerTarget
{
    unsigned obj = 0;
    Interval offset;

    bool operator==(const PointerTarget &o) const
    {
        return obj == o.obj && offset == o.offset;
    }
};

/**
 * One abstract value: an integer interval, an (untracked) float, or a
 * pointer as {maybe-null, maybe-unknown-provenance, may-target set}.
 * `any` is the top of the whole value lattice (merges of mismatched
 * kinds, results of unmodelled operations).
 */
struct AbstractValue
{
    enum class Kind : uint8_t
    {
        any,
        intVal,
        fpVal,
        pointer,
    };

    Kind kind = Kind::any;
    Interval ival;
    bool canBeNull = false;
    bool canBeUnknown = false;
    std::vector<PointerTarget> targets;

    static AbstractValue top() { return {}; }
    static AbstractValue anyInt()
    {
        AbstractValue v;
        v.kind = Kind::intVal;
        return v;
    }
    static AbstractValue ofInterval(const Interval &i)
    {
        AbstractValue v;
        v.kind = Kind::intVal;
        v.ival = i;
        return v;
    }
    static AbstractValue ofInt(int64_t value)
    {
        return ofInterval(Interval::of(value));
    }
    static AbstractValue anyFloat()
    {
        AbstractValue v;
        v.kind = Kind::fpVal;
        return v;
    }
    static AbstractValue nullPointer()
    {
        AbstractValue v;
        v.kind = Kind::pointer;
        v.canBeNull = true;
        return v;
    }
    static AbstractValue unknownPointer()
    {
        AbstractValue v;
        v.kind = Kind::pointer;
        v.canBeNull = true;
        v.canBeUnknown = true;
        return v;
    }
    static AbstractValue pointerTo(unsigned obj,
                                   const Interval &offset = Interval::of(0))
    {
        AbstractValue v;
        v.kind = Kind::pointer;
        v.targets.push_back({obj, offset});
        return v;
    }

    bool isPointer() const { return kind == Kind::pointer; }
    bool isInt() const { return kind == Kind::intVal; }
    /// A pointer that is null on every path.
    bool isMustNull() const
    {
        return isPointer() && canBeNull && !canBeUnknown && targets.empty();
    }
    /// Singleton integer accessor.
    bool isConstInt(int64_t &out) const
    {
        if (!isInt() || !ival.isSingleton())
            return false;
        out = ival.lo;
        return true;
    }

    bool operator==(const AbstractValue &o) const
    {
        return kind == o.kind && ival == o.ival && canBeNull == o.canBeNull &&
            canBeUnknown == o.canBeUnknown && targets == o.targets;
    }
    bool operator!=(const AbstractValue &o) const { return !(*this == o); }

    std::string toString() const;
};

AbstractValue joinValues(const AbstractValue &a, const AbstractValue &b);
AbstractValue widenValues(const AbstractValue &a, const AbstractValue &b);

/**
 * A known scalar at a constant offset inside an abstract object.
 * `version` increments on every write so that branch refinement can
 * prove "this location still holds the value the compare tested"
 * before narrowing the stored interval (sound write-back).
 */
struct MemEntry
{
    uint8_t width = 0;
    AbstractValue val;
    /// True when some joined-in path leaves these bytes unwritten.
    bool mayBeUninit = false;
    uint32_t version = 0;
};

/** What a read of bytes with no MemEntry yields. */
enum class ContentsDefault : uint8_t
{
    /// Never written on any path (fresh alloca / malloc).
    uninit,
    /// Guaranteed zero (calloc, static storage).
    zero,
    /// Written with unknown bytes, or one path left them unwritten.
    maybeUninit,
    /// Initialized but unknown (post-havoc, realloc tail).
    unknown,
};

/** Flow-sensitive state of one abstract object. */
struct ObjState
{
    enum class Liveness : uint8_t
    {
        live,
        maybeFreed,
        freed,
    };

    Liveness live = Liveness::live;
    ContentsDefault dflt = ContentsDefault::uninit;
    /// Bytes not described by `contents` may have been written (weak
    /// updates at non-constant offsets): uninit reads are at most maybe.
    bool weaklyWritten = false;
    /// Address has been passed to (or stored reachable from) an
    /// unmodelled call: contents are clobbered at every such call.
    bool escaped = false;
    std::map<int64_t, MemEntry> contents;

    bool operator==(const ObjState &o) const;
};

/** Immutable description of one abstract object (per analyzed function). */
struct ObjectInfo
{
    StorageKind storage = StorageKind::unknown;
    /// Byte size as an interval; top when unknown (malloc of a
    /// non-constant size). alloca/global sizes are singletons.
    Interval size;
    std::string name;
    /// True when the allocation site sits inside a CFG cycle: the object
    /// summarizes many run-time instances, so strong updates (freeing,
    /// definite-uninit) are disabled.
    bool multiInstance = false;
    /// Const global: contents are immutable, never havocked.
    bool isConst = false;
    /// Suppress findings against this object. Used for the pseudo
    /// objects that stand in for a summarized function's pointer
    /// parameters: accesses through them are judged at the call sites
    /// (where the real object is known), not inside the callee.
    bool silent = false;
    /// Pointer-parameter pseudo object: index of the formal parameter
    /// it models, -1 otherwise.
    int paramIndex = -1;
};

} // namespace sulong

#endif // MS_ANALYSIS_LATTICE_H
