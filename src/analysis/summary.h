/**
 * @file
 * Bottom-up function summaries: the transfer function one call site
 * applies instead of havocking the world.
 *
 * A summary is computed once per function (per SCC fixpoint round for
 * recursive functions) and records the *abstract effect* of a call:
 * which pointer arguments have their pointees written, escaped, or
 * freed; whether non-const globals may be written; and what the return
 * value looks like (an interval, a fresh heap allocation, or unknown).
 * Summaries are deliberately a small lattice — joinSummaryInto is the
 * SCC-fixpoint join, and `pessimistic` is the top element that makes a
 * call site fall back to the PR-4 havoc-everything behaviour.
 */

#ifndef MS_ANALYSIS_SUMMARY_H
#define MS_ANALYSIS_SUMMARY_H

#include <string>
#include <vector>

#include "analysis/lattice.h"

namespace sulong
{

/** Effect of a call on one pointer-typed parameter's pointee. */
struct ParamEffect
{
    /// The callee may store through this parameter.
    bool pointeeWritten = false;
    /// The callee may retain the pointer (store it to a global or
    /// another escaped object).
    bool escapes = false;
    /// The callee may free() the pointed-to block.
    bool mayFree = false;
};

/** A linear (m*x + k) step of an affine return chain, tagged with the
 *  bit width the source operation wrapped at. */
struct AffineStep
{
    int64_t mul = 1;
    int64_t add = 0;
    unsigned bits = 64;
};

/** The abstract transfer function of one callee. */
struct FunctionSummary
{
    /// What the analyzer knows about the return value.
    enum class Ret : uint8_t
    {
        /// void, or the function never returns normally.
        none,
        /// Integer return constrained to retInterval.
        interval,
        /// Returns (only) pointers to heap blocks allocated inside the
        /// callee: the call site materializes a fresh heap object.
        freshHeap,
        /// Anything else (escaping stack/global/parameter pointers,
        /// unknown values).
        unknown,
    };

    /// False until the owning SCC task has produced it; call sites
    /// treat uncomputed summaries like pessimistic ones.
    bool computed = false;
    /// Top: the summary could not be bounded (unresolved indirect
    /// calls, unstable recursion). Call sites havoc instead.
    bool pessimistic = false;
    /// The callee may write non-const globals (directly or through
    /// escaped pointers).
    bool writesGlobals = false;
    /// No path reaches a `ret`: the call never returns (exit/abort
    /// wrappers, infinite loops).
    bool neverReturns = false;

    Ret ret = Ret::unknown;
    /// Ret::interval: the joined interval over every `ret` site.
    Interval retInterval = Interval::empty();
    /// Ret::freshHeap: joined allocation size over every returned site.
    Interval allocSize = Interval::empty();
    /// Ret::freshHeap: what the returned block's bytes hold.
    ContentsDefault allocContents = ContentsDefault::unknown;
    /// Ret::freshHeap: the callee may return NULL (allocation failure
    /// path or an explicit `return 0`).
    bool retMayBeNull = false;

    /// Syntactic affine return recognition: when set, the return value
    /// is prefixes.back() applied to argument `affineArg`, and every
    /// prefix's image must stay inside its wrap width for the chain to
    /// be applied at a call site (checked against the call-site
    /// argument interval; see affineApply).
    bool hasAffine = false;
    unsigned affineArg = 0;
    std::vector<AffineStep> prefixes;

    /// One entry per formal parameter (any type; non-pointer entries
    /// stay all-false).
    std::vector<ParamEffect> params;

    /** The havoc-everything top element, marked computed. */
    static FunctionSummary makePessimistic(size_t num_params);

    /** One-line debug rendering. */
    std::string toString() const;
};

/**
 * Join @p from into @p into (SCC fixpoint step). Returns true when
 * @p into changed. @p widen widens growing intervals to the rails so
 * recursive summary chains converge.
 */
bool joinSummaryInto(FunctionSummary &into, const FunctionSummary &from,
                     bool widen);

/**
 * Apply @p summary's affine return chain to the call-site argument
 * interval @p arg. Returns the resulting interval, or an empty interval
 * when any prefix step's image over @p arg escapes its wrap width (the
 * syntactic chain would have wrapped, so the affine model is invalid
 * and the caller must fall back to retInterval).
 */
Interval affineApply(const FunctionSummary &summary, Interval arg);

/// Per-module summary table, indexed by Function::id(). Writes are
/// confined to the owning SCC task; reads happen only at strictly
/// greater depths (or within the owning SCC), so no locking is needed.
using SummaryDb = std::vector<FunctionSummary>;

} // namespace sulong

#endif // MS_ANALYSIS_SUMMARY_H
