/**
 * @file
 * Flow-sensitive, intraprocedural abstract interpreter over the IR.
 *
 * For every function definition, a worklist fixpoint over the CFG
 * propagates an abstract state (frame-slot values + abstract memory, see
 * lattice.h) and collects candidate memory errors: definite/maybe null
 * dereferences, constant- and interval-out-of-bounds accesses, use after
 * free and double free along must-reach paths, invalid frees, and reads
 * of uninitialized locals. Branch refinement narrows intervals through
 * the `load; icmp; zext; icmp ne 0; condbr` chains the unoptimized
 * codegen emits, writing refinements back through load provenance so
 * loop counters that live in allocas actually get bounded.
 *
 * The optional refutation stage (refuter.h) then replays the program
 * concretely and demotes every candidate it cannot confirm to `maybe`.
 */

#ifndef MS_ANALYSIS_ANALYZER_H
#define MS_ANALYSIS_ANALYZER_H

#include "analysis/finding.h"
#include "ir/module.h"

namespace sulong
{

/**
 * Analyze every function definition of @p module (subject to
 * AnalysisOptions::userCodeOnly) and, when enabled, refute/confirm the
 * candidates by bounded concrete replay.
 */
AnalysisReport analyzeModule(const Module &module,
                             const AnalysisOptions &options = {});

} // namespace sulong

#endif // MS_ANALYSIS_ANALYZER_H
