/**
 * @file
 * The flow-sensitive intraprocedural abstract interpreter (analyzer.h).
 *
 * One FunctionAnalyzer per function definition: enumerate abstract
 * objects (module globals + local allocation sites), run a widening
 * worklist fixpoint over the CFG propagating AbsState (frame slots +
 * per-object memory maps), then one final collect pass over the
 * converged states that emits candidate findings. analyzeModule() glues
 * the per-function results together and runs the refutation replay.
 */

#include "analysis/analyzer.h"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/callgraph.h"
#include "analysis/constraints.h"
#include "analysis/lattice.h"
#include "analysis/refuter.h"
#include "analysis/summary.h"
#include "ir/cfg.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace sulong
{

namespace
{

using Ret = FunctionSummary::Ret;

/// Top value of a load/parameter of static type @p type.
AbstractValue
typedTop(const Type *type)
{
    if (type == nullptr)
        return AbstractValue::top();
    if (type->isInteger())
        return AbstractValue::ofInterval(intervalOfWidth(type->intBits()));
    if (type->isPointer())
        return AbstractValue::unknownPointer();
    if (type->isFloat())
        return AbstractValue::anyFloat();
    return AbstractValue::top();
}

/// What zero-backed storage yields when read as @p type.
AbstractValue
typedZero(const Type *type)
{
    if (type == nullptr)
        return AbstractValue::top();
    if (type->isInteger())
        return AbstractValue::ofInt(0);
    if (type->isPointer())
        return AbstractValue::nullPointer();
    if (type->isFloat())
        return AbstractValue::anyFloat();
    return AbstractValue::top();
}

/// Zero joined into an existing entry value (join of "other path reads 0").
AbstractValue
zeroOfKind(const AbstractValue &like)
{
    switch (like.kind) {
      case AbstractValue::Kind::intVal:
        return AbstractValue::ofInt(0);
      case AbstractValue::Kind::pointer:
        return AbstractValue::nullPointer();
      case AbstractValue::Kind::fpVal:
        return AbstractValue::anyFloat();
      case AbstractValue::Kind::any:
        break;
    }
    return AbstractValue::top();
}

/** The whole abstract state at one program point. */
struct AbsState
{
    std::vector<AbstractValue> slots;
    std::vector<ObjState> objects;

    bool operator==(const AbsState &o) const
    {
        return slots == o.slots && objects == o.objects;
    }
};

ObjState::Liveness
joinLiveness(ObjState::Liveness a, ObjState::Liveness b)
{
    if (a == b)
        return a;
    return ObjState::Liveness::maybeFreed;
}

ContentsDefault
joinDefault(ContentsDefault a, ContentsDefault b)
{
    if (a == b)
        return a;
    if (a == ContentsDefault::uninit || a == ContentsDefault::maybeUninit ||
        b == ContentsDefault::uninit || b == ContentsDefault::maybeUninit)
        return ContentsDefault::maybeUninit;
    return ContentsDefault::unknown;
}

/// Do the byte ranges [ao, ao+aw) and [bo, bo+bw) intersect?
bool
bytesOverlap(int64_t ao, unsigned aw, int64_t bo, unsigned bw)
{
    return ao < bo + static_cast<int64_t>(bw) &&
        bo < ao + static_cast<int64_t>(aw);
}

/// Does @p contents have any entry overlapping [off, off+width)?
bool
anyOverlap(const std::map<int64_t, MemEntry> &contents, int64_t off,
           unsigned width)
{
    // Entries are at most 8 bytes wide; scan the window around [off,
    // off+width).
    auto it = contents.lower_bound(off - 8);
    for (; it != contents.end() && it->first < off + static_cast<int64_t>(width);
         ++it) {
        if (bytesOverlap(it->first, it->second.width, off, width))
            return true;
    }
    return false;
}

/// True when @p dflt means "bytes might not have been written".
bool
defaultMayBeUninit(ContentsDefault dflt)
{
    return dflt == ContentsDefault::uninit ||
        dflt == ContentsDefault::maybeUninit;
}

uint32_t &
versionCounter()
{
    static thread_local uint32_t counter = 0;
    return counter;
}

uint32_t
freshVersion()
{
    return ++versionCounter();
}

/**
 * Join (or widen) object @p b into @p a. The contents merge is the
 * subtle part: an entry surviving the merge claims to describe its
 * bytes on BOTH paths, so any shape mismatch degrades to a top-valued
 * entry (never silently to the default, which could falsely promise
 * zero or uninit bytes).
 */
void
mergeObjInto(ObjState &a, const ObjState &b, bool widen)
{
    ContentsDefault dfltA = a.dflt;
    ContentsDefault dfltB = b.dflt;

    std::map<int64_t, MemEntry> merged;
    auto topEntry = [](unsigned width, bool mayBeUninit) {
        MemEntry e;
        e.width = static_cast<uint8_t>(width);
        e.val = AbstractValue::top();
        e.mayBeUninit = mayBeUninit;
        e.version = freshVersion();
        return e;
    };
    // Entries present only on one side: bytes on the other side read as
    // that side's default.
    auto mergeOneSided = [&](const MemEntry &e, int64_t off,
                             const ObjState &other, ContentsDefault otherDflt) {
        if (anyOverlap(other.contents, off, e.width)) {
            // Mismatched shapes across the join: value unknown.
            merged[off] = topEntry(e.width,
                                   e.mayBeUninit ||
                                       defaultMayBeUninit(otherDflt));
            return;
        }
        MemEntry out = e;
        switch (otherDflt) {
          case ContentsDefault::zero:
            out.val = joinValues(out.val, zeroOfKind(out.val));
            break;
          case ContentsDefault::uninit:
            out.mayBeUninit = true;
            break;
          case ContentsDefault::maybeUninit:
            out.val = AbstractValue::top();
            out.mayBeUninit = true;
            break;
          case ContentsDefault::unknown:
            out.val = AbstractValue::top();
            break;
        }
        if (other.weaklyWritten)
            out.val = AbstractValue::top();
        out.version = freshVersion();
        merged[off] = out;
    };

    for (const auto &[off, ea] : a.contents) {
        auto itB = b.contents.find(off);
        if (itB != b.contents.end() && itB->second.width == ea.width) {
            MemEntry out;
            out.width = ea.width;
            out.val = widen ? widenValues(ea.val, itB->second.val)
                            : joinValues(ea.val, itB->second.val);
            out.mayBeUninit = ea.mayBeUninit || itB->second.mayBeUninit;
            out.version = ea.version == itB->second.version
                ? ea.version
                : freshVersion();
            merged[off] = out;
        } else if (itB != b.contents.end()) {
            merged[off] = topEntry(std::max<unsigned>(ea.width,
                                                      itB->second.width),
                                   ea.mayBeUninit || itB->second.mayBeUninit);
        } else {
            mergeOneSided(ea, off, b, dfltB);
        }
    }
    for (const auto &[off, eb] : b.contents) {
        if (a.contents.count(off))
            continue;
        mergeOneSided(eb, off, a, dfltA);
    }

    a.live = joinLiveness(a.live, b.live);
    a.dflt = joinDefault(dfltA, dfltB);
    a.weaklyWritten = a.weaklyWritten || b.weaklyWritten;
    a.escaped = a.escaped || b.escaped;
    a.contents = std::move(merged);
}

void
mergeStateInto(AbsState &a, const AbsState &b, bool widen)
{
    for (size_t i = 0; i < a.slots.size(); i++)
        a.slots[i] = widen ? widenValues(a.slots[i], b.slots[i])
                           : joinValues(a.slots[i], b.slots[i]);
    for (size_t i = 0; i < a.objects.size(); i++)
        mergeObjInto(a.objects[i], b.objects[i], widen);
}

/// Load provenance for sound refinement write-back (reset per block).
struct Origin
{
    int obj = -1;
    int64_t off = 0;
    uint8_t width = 0;
    uint32_t version = 0;
};

/** What one abstract memory access can do. */
struct AccessOutcome
{
    /// Every possibility faults: the path stops here.
    bool mustFault = false;
    /// The joined loaded value over non-faulting possibilities.
    AbstractValue loaded = AbstractValue::top();
};

/**
 * Analyzes one function definition. See the file comment for the
 * phases; all per-function state lives here.
 */
class FunctionAnalyzer
{
  public:
    /**
     * @p callgraph / @p summaries / @p summaryOut are the interprocedural
     * hooks: when null (PR-4 mode, --no-summaries), calls to user
     * functions havoc everything reachable. When set, completed callee
     * summaries are applied at call sites, indirect calls are folded over
     * the may-call set, and this function's own summary is recorded into
     * @p summaryOut.
     */
    FunctionAnalyzer(const Module &module, const Function &fn,
                     const AnalysisOptions &options,
                     const CallGraph *callgraph = nullptr,
                     const SummaryDb *summaries = nullptr,
                     FunctionSummary *summaryOut = nullptr)
        : module_(module), fn_(fn), options_(options),
          callgraph_(callgraph), summaries_(summaries),
          summaryOut_(summaryOut), cfg_(fn)
    {
        enumerateObjects();
    }

    /// Appends this function's candidates to @p findings; returns false
    /// when the fixpoint was abandoned (findings stay maybe).
    bool run(std::vector<StaticFinding> &findings);

    /// Fixpoint iterations of the last run() (telemetry).
    uint64_t
    blockVisitsTotal() const
    {
        uint64_t total = 0;
        for (unsigned v : visits_)
            total += v;
        return total;
    }

    /// Call sites where a callee summary replaced the havoc fallback
    /// (counted during the collect pass only, so the value is
    /// deterministic).
    unsigned summariesApplied() const { return summariesApplied_; }

  private:
    // --- Object enumeration ----------------------------------------------

    void enumerateObjects();
    void computeMultiInstance();

    // --- States ----------------------------------------------------------

    AbsState entryState() const;
    void seedGlobalContents(ObjState &state, const GlobalVariable &g) const;
    bool expandInit(ObjState &state, const Type *type,
                    const Initializer &init, int64_t off) const;

    // --- Transfer --------------------------------------------------------

    /// Executes block @p b on @p state. Successor edge states are pushed
    /// via joinInto unless collecting. Returns nothing; findings are
    /// emitted only when collect_ is set.
    void transferBlock(unsigned b, AbsState state);

    AbstractValue evalValue(const Value *v, const AbsState &st) const;
    void setSlot(AbsState &st, const Instruction &inst,
                 const AbstractValue &val);

    AccessOutcome checkAccess(const Instruction &inst, AccessKind access,
                              const AbstractValue &ptr, unsigned width,
                              const Type *readType, AbsState &st);
    AbstractValue readTarget(const Instruction &inst, const PointerTarget &t,
                             unsigned width, const Type *readType,
                             AbsState &st, bool &possibilityFaults);
    void writeTarget(const PointerTarget &t, unsigned width,
                     const AbstractValue &val, bool strong, AbsState &st);
    void eraseOverlap(ObjState &obj, int64_t off, unsigned width,
                      AbsState &st);
    void markPointerEntriesEscaped(const MemEntry &entry, AbsState &st);

    void transferCall(const Instruction &inst, AbsState &st, bool &stop);
    void transferIntrinsic(const Instruction &inst, const Function &callee,
                           AbsState &st, bool &stop);
    bool transferLibcSummary(const Instruction &inst, const Function &callee,
                             AbsState &st);
    void havocUnknownCall(const Instruction &inst, AbsState &st);
    void havocReachableFrom(std::vector<unsigned> seeds, AbsState &st);
    void havocObject(unsigned obj, AbsState &st, bool escape);
    void freePointer(const Instruction &inst, const AbstractValue &ptr,
                     AbsState &st, bool viaRealloc);

    // --- Interprocedural summaries ---------------------------------------

    /// The summary entry for a pointer-parameter pseudo object, or null.
    ParamEffect *paramEffectOf(unsigned obj);
    /// Applies @p sum at call @p inst instead of havocking.
    void applySummary(const Instruction &inst, const FunctionSummary &sum,
                      AbsState &st, bool &stop);
    /// Folds one `ret` site into summaryOut_ (collect pass only).
    void recordReturn(const Instruction &inst, AbsState &st);

    // --- Branch refinement -----------------------------------------------

    const Instruction *resolveCondChain(const Value *cond,
                                        bool &polarity) const;
    bool applyRefinement(AbsState &st, const Instruction &cmp, bool truth);
    void writeRefinedInt(AbsState &st, const Value *v,
                         const Interval &refined);
    void writeRefinedPointer(AbsState &st, const Value *v,
                             const AbstractValue &refined);

    // --- Findings --------------------------------------------------------

    void emitFinding(const Instruction &inst, ErrorKind kind,
                     AccessKind access, StorageKind storage,
                     BoundsDirection direction, bool definite,
                     const std::string &detail,
                     const std::string &pathCondition,
                     std::optional<int64_t> offset = std::nullopt,
                     std::optional<int64_t> objectSize = std::nullopt);
    std::string describeObject(unsigned obj) const;

    // --- Fixpoint driver -------------------------------------------------

    void joinInto(unsigned block, const AbsState &state);

    const Module &module_;
    const Function &fn_;
    const AnalysisOptions &options_;
    const CallGraph *callgraph_ = nullptr;
    const SummaryDb *summaries_ = nullptr;
    FunctionSummary *summaryOut_ = nullptr;
    Cfg cfg_;

    std::vector<ObjectInfo> objInfo_;
    std::map<const GlobalVariable *, unsigned> globalObj_;
    std::map<const Instruction *, unsigned> siteObj_;
    /// Parameter index -> pseudo-object id (-1 when not a pointer param).
    std::vector<int> paramObj_;
    unsigned summariesApplied_ = 0;

    std::vector<std::optional<AbsState>> blockIn_;
    std::vector<unsigned> visits_;
    std::set<std::pair<int, unsigned>> worklist_; ///< (rpoIndex, block)
    bool abandoned_ = false;

    /// Set during the final pass: emitFinding records candidates.
    bool collect_ = false;
    std::vector<StaticFinding> *out_ = nullptr;
    /// Index of the instruction currently transferred within its block.
    unsigned curInstIndex_ = 0;
    /// Dedupe of (block, inst, kind) during the collect pass.
    std::map<std::tuple<unsigned, unsigned, int>, size_t> emitted_;

    /// Load provenance per frame slot; valid within one block transfer.
    std::vector<Origin> origins_;
};

// --- Object enumeration --------------------------------------------------

void
FunctionAnalyzer::enumerateObjects()
{
    for (const auto &g : module_.globals()) {
        unsigned id = static_cast<unsigned>(objInfo_.size());
        globalObj_[g.get()] = id;
        ObjectInfo info;
        info.storage = StorageKind::global;
        info.size = Interval::of(
            static_cast<int64_t>(g->valueType()->size()));
        info.name = g->name();
        info.isConst = g->isConst();
        objInfo_.push_back(std::move(info));
    }
    for (const auto &bb : fn_.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::alloca_) {
                unsigned id = static_cast<unsigned>(objInfo_.size());
                siteObj_[inst.get()] = id;
                ObjectInfo info;
                info.storage = StorageKind::stack;
                info.size = Interval::of(
                    static_cast<int64_t>(inst->accessType()->size()));
                info.name = inst->name().empty()
                    ? "stack@" + bb->name()
                    : inst->name();
                objInfo_.push_back(std::move(info));
            } else if (inst->op() == Opcode::call &&
                       !inst->operands().empty()) {
                const auto *callee =
                    dynamic_cast<const Function *>(inst->operand(0));
                if (callee == nullptr)
                    continue;
                bool site = false;
                if (callee->isIntrinsic()) {
                    const std::string &name = callee->name();
                    site = name == "malloc" || name == "calloc" ||
                        name == "realloc";
                } else if (summaries_ != nullptr &&
                           !callee->isDeclaration()) {
                    // A summarized callee that returns a fresh heap
                    // allocation gets a site object of its own, exactly
                    // like a direct malloc().
                    const FunctionSummary &s = (*summaries_)[callee->id()];
                    site = s.computed && !s.pessimistic &&
                        s.ret == Ret::freshHeap;
                }
                if (!site)
                    continue;
                unsigned id = static_cast<unsigned>(objInfo_.size());
                siteObj_[inst.get()] = id;
                ObjectInfo info;
                info.storage = StorageKind::heap;
                info.size = Interval::empty(); ///< joined at the site
                info.name = callee->name() + "@" + bb->name();
                objInfo_.push_back(std::move(info));
            }
        }
    }
    // Pointer-parameter pseudo objects: when this function is being
    // summarized, each pointer argument is modelled as pointing into an
    // opaque caller-owned object of unknown size, so that stores through
    // it can be tracked as ParamEffects. Findings against these objects
    // are suppressed (silent): the access is judged at the call sites,
    // where the real object is known.
    paramObj_.assign(fn_.numArgs(), -1);
    if (summaryOut_ != nullptr && fn_.name() != "main") {
        for (const auto &arg : fn_.args()) {
            if (!arg->type()->isPointer())
                continue;
            unsigned id = static_cast<unsigned>(objInfo_.size());
            paramObj_[arg->index()] = static_cast<int>(id);
            ObjectInfo info;
            info.storage = StorageKind::unknown;
            // Not top(): checkAccess computes size.hi - width, which
            // would overflow INT64_MIN.
            info.size = Interval::range(0, INT64_MAX);
            info.name = arg->name().empty()
                ? "arg" + std::to_string(arg->index())
                : arg->name();
            info.silent = true;
            info.paramIndex = static_cast<int>(arg->index());
            objInfo_.push_back(std::move(info));
        }
    }
    computeMultiInstance();
}

void
FunctionAnalyzer::computeMultiInstance()
{
    size_t n = cfg_.numBlocks();
    // selfReach[b]: b lies on a CFG cycle (reaches itself).
    std::vector<bool> selfReach(n, false);
    for (unsigned b = 0; b < n; b++) {
        if (!cfg_.reachable(b))
            continue;
        std::vector<bool> seen(n, false);
        std::vector<unsigned> stack(cfg_.succs(b));
        bool found = false;
        while (!stack.empty() && !found) {
            unsigned cur = stack.back();
            stack.pop_back();
            if (cur == b) {
                found = true;
                break;
            }
            if (seen[cur])
                continue;
            seen[cur] = true;
            for (unsigned s : cfg_.succs(cur))
                stack.push_back(s);
        }
        selfReach[b] = found;
    }
    for (const auto &[inst, id] : siteObj_)
        objInfo_[id].multiInstance = selfReach[inst->parent()->index()];
}

// --- Entry state ---------------------------------------------------------

bool
FunctionAnalyzer::expandInit(ObjState &state, const Type *type,
                             const Initializer &init, int64_t off) const
{
    if (state.contents.size() > 4096)
        return false;
    switch (init.kind) {
      case Initializer::Kind::zero:
        return true; // dflt zero covers it
      case Initializer::Kind::intVal: {
        MemEntry e;
        e.width = static_cast<uint8_t>(type->size());
        if (type->isInteger()) {
            Interval v = intervalWrap(Interval::of(init.intValue),
                                      type->intBits());
            e.val = AbstractValue::ofInterval(v);
        } else if (type->isPointer()) {
            // e.g. a pointer global initialized to 0.
            e.val = init.intValue == 0 ? AbstractValue::nullPointer()
                                       : AbstractValue::unknownPointer();
        } else {
            e.val = typedTop(type);
        }
        state.contents[off] = e;
        return true;
      }
      case Initializer::Kind::fpVal: {
        MemEntry e;
        e.width = static_cast<uint8_t>(type->size());
        e.val = AbstractValue::anyFloat();
        state.contents[off] = e;
        return true;
      }
      case Initializer::Kind::bytes: {
        for (size_t i = 0; i < init.bytes.size(); i++) {
            if (state.contents.size() > 4096)
                return false;
            int8_t b = static_cast<int8_t>(init.bytes[i]);
            if (b == 0)
                continue; // dflt zero covers it
            MemEntry e;
            e.width = 1;
            e.val = AbstractValue::ofInt(b);
            state.contents[off + static_cast<int64_t>(i)] = e;
        }
        return true;
      }
      case Initializer::Kind::array: {
        const Type *elem = type->elemType();
        int64_t esize = static_cast<int64_t>(elem->size());
        for (size_t i = 0; i < init.elems.size(); i++) {
            if (!expandInit(state, elem, init.elems[i],
                            off + static_cast<int64_t>(i) * esize))
                return false;
        }
        return true;
      }
      case Initializer::Kind::structVal: {
        const auto &fields = type->fields();
        for (size_t i = 0; i < init.elems.size() && i < fields.size(); i++) {
            if (!expandInit(state, fields[i].type, init.elems[i],
                            off + static_cast<int64_t>(fields[i].offset)))
                return false;
        }
        return true;
      }
      case Initializer::Kind::globalRef: {
        MemEntry e;
        e.width = 8;
        auto it = globalObj_.find(init.global);
        e.val = it != globalObj_.end()
            ? AbstractValue::pointerTo(it->second, Interval::of(init.addend))
            : AbstractValue::unknownPointer();
        state.contents[off] = e;
        return true;
      }
      case Initializer::Kind::functionRef: {
        MemEntry e;
        e.width = 8;
        AbstractValue fp;
        fp.kind = AbstractValue::Kind::pointer;
        fp.canBeUnknown = true;
        e.val = fp;
        state.contents[off] = e;
        return true;
      }
    }
    return true;
}

void
FunctionAnalyzer::seedGlobalContents(ObjState &state,
                                     const GlobalVariable &g) const
{
    state.dflt = ContentsDefault::zero;
    if (!expandInit(state, g.valueType(), g.init(), 0)) {
        state.contents.clear();
        state.dflt = ContentsDefault::unknown;
    }
}

AbsState
FunctionAnalyzer::entryState() const
{
    AbsState st;
    st.slots.assign(fn_.numSlots(), AbstractValue::top());
    bool isMain = fn_.name() == "main";
    for (const auto &arg : fn_.args()) {
        AbstractValue v = typedTop(arg->type());
        if (isMain && arg->index() == 0 && arg->type()->isInteger()) {
            // argc >= 1 (argv[0] is the program name).
            v = AbstractValue::ofInterval(
                Interval::range(1, INT32_MAX));
        } else if (isMain && arg->index() == 1) {
            // argv itself is never null.
            v.canBeNull = false;
        } else if (paramObj_[arg->index()] >= 0) {
            // The pointer may be null, but when it is not, it refers to
            // the parameter's pseudo object at its start.
            v = AbstractValue::pointerTo(
                static_cast<unsigned>(paramObj_[arg->index()]));
            v.canBeNull = true;
        }
        st.slots[arg->index()] = v;
    }
    st.objects.resize(objInfo_.size());
    for (int id : paramObj_) {
        if (id < 0)
            continue;
        ObjState &obj = st.objects[static_cast<unsigned>(id)];
        // Caller memory: initialized-but-unknown bytes, and externally
        // aliased (the caller holds the address), so unknown calls
        // clobber it.
        obj.dflt = ContentsDefault::unknown;
        obj.escaped = true;
    }
    for (const auto &g : module_.globals()) {
        unsigned id = globalObj_.at(g.get());
        ObjState &obj = st.objects[id];
        if (g->isConst() || isMain) {
            seedGlobalContents(obj, *g);
        } else {
            // A helper can observe any global state its callers created.
            obj.dflt = ContentsDefault::unknown;
        }
    }
    // Local allocation sites start live/uninit; no pointer can reach
    // them before their site executes.
    return st;
}

// --- Values --------------------------------------------------------------

AbstractValue
FunctionAnalyzer::evalValue(const Value *v, const AbsState &st) const
{
    switch (v->valueKind()) {
      case ValueKind::argument:
        return st.slots[static_cast<const Argument *>(v)->index()];
      case ValueKind::instruction: {
        int slot = static_cast<const Instruction *>(v)->slot();
        return slot >= 0 ? st.slots[slot] : AbstractValue::top();
      }
      case ValueKind::constantInt:
        return AbstractValue::ofInt(
            static_cast<const ConstantInt *>(v)->value());
      case ValueKind::constantFP:
        return AbstractValue::anyFloat();
      case ValueKind::constantNull:
        return AbstractValue::nullPointer();
      case ValueKind::global: {
        auto it = globalObj_.find(static_cast<const GlobalVariable *>(v));
        if (it == globalObj_.end())
            return AbstractValue::unknownPointer();
        return AbstractValue::pointerTo(it->second);
      }
      case ValueKind::function: {
        AbstractValue fp;
        fp.kind = AbstractValue::Kind::pointer;
        fp.canBeUnknown = true; ///< non-null, unknown provenance
        return fp;
      }
    }
    return AbstractValue::top();
}

void
FunctionAnalyzer::setSlot(AbsState &st, const Instruction &inst,
                          const AbstractValue &val)
{
    if (inst.slot() >= 0)
        st.slots[inst.slot()] = val;
}

// --- Memory --------------------------------------------------------------

ParamEffect *
FunctionAnalyzer::paramEffectOf(unsigned obj)
{
    if (summaryOut_ == nullptr || objInfo_[obj].paramIndex < 0)
        return nullptr;
    size_t idx = static_cast<size_t>(objInfo_[obj].paramIndex);
    if (summaryOut_->params.size() <= idx)
        summaryOut_->params.resize(fn_.numArgs());
    return &summaryOut_->params[idx];
}

void
FunctionAnalyzer::markPointerEntriesEscaped(const MemEntry &entry,
                                            AbsState &st)
{
    if (entry.val.kind != AbstractValue::Kind::pointer)
        return;
    for (const PointerTarget &t : entry.val.targets) {
        st.objects[t.obj].escaped = true;
        if (ParamEffect *pe = paramEffectOf(t.obj))
            pe->escapes = true;
    }
}

void
FunctionAnalyzer::eraseOverlap(ObjState &obj, int64_t off, unsigned width,
                               AbsState &st)
{
    auto it = obj.contents.lower_bound(off - 8);
    while (it != obj.contents.end() &&
           it->first < off + static_cast<int64_t>(width)) {
        if (bytesOverlap(it->first, it->second.width, off, width)) {
            markPointerEntriesEscaped(it->second, st);
            it = obj.contents.erase(it);
        } else {
            ++it;
        }
    }
}

/**
 * Reads `width` bytes at t.offset of t.obj. Emits UAF / bounds / uninit
 * candidates (when collecting) and sets @p possibilityFaults when this
 * possibility faults on every concrete instance it describes.
 */
AbstractValue
FunctionAnalyzer::readTarget(const Instruction &inst, const PointerTarget &t,
                             unsigned width, const Type *readType,
                             AbsState &st, bool &possibilityFaults)
{
    const ObjectInfo &info = objInfo_[t.obj];
    ObjState &obj = st.objects[t.obj];
    AccessKind access = AccessKind::read;
    // Parameter pseudo objects: accesses are judged at call sites.
    const bool silent = info.silent;

    std::string where = describeObject(t.obj);
    std::string pathCond = "offset " + t.offset.toString() + " of " + where;

    // Temporal first, like the dynamic engine.
    if (obj.live == ObjState::Liveness::freed) {
        bool definite = !info.multiInstance;
        if (!silent)
            emitFinding(inst, ErrorKind::useAfterFree, access, info.storage,
                        BoundsDirection::unknown, definite,
                        std::to_string(width) + "-byte read of freed " +
                            where,
                        pathCond,
                        t.offset.isSingleton()
                            ? std::optional<int64_t>(t.offset.lo)
                            : std::nullopt,
                        info.size.isSingleton()
                            ? std::optional<int64_t>(info.size.lo)
                            : std::nullopt);
        possibilityFaults = true;
        return AbstractValue::top();
    }
    if (obj.live == ObjState::Liveness::maybeFreed && !silent) {
        emitFinding(inst, ErrorKind::useAfterFree, access, info.storage,
                    BoundsDirection::unknown, false,
                    std::to_string(width) + "-byte read of possibly freed " +
                        where,
                    pathCond);
    }

    // Bounds: fault iff off < 0 || off + width > size.
    const Interval &off = t.offset;
    const Interval &size = info.size;
    int64_t w = static_cast<int64_t>(width);
    bool mustOob = !off.isEmpty() && !size.isEmpty() &&
        (off.hi < 0 || off.lo > size.hi - w);
    bool mayOob = !off.isEmpty() &&
        (off.lo < 0 || size.isEmpty() || off.hi > size.lo - w);
    if (mustOob || mayOob) {
        BoundsDirection dir = BoundsDirection::unknown;
        bool under = off.lo < 0;
        bool over = size.isEmpty() || off.hi > size.lo - w;
        if (under && !over)
            dir = BoundsDirection::underflow;
        else if (over && !under)
            dir = BoundsDirection::overflow;
        if (!silent)
            emitFinding(inst, ErrorKind::outOfBounds, access, info.storage,
                        dir, mustOob,
                        std::to_string(width) + "-byte read at offset " +
                            off.toString() + " of " + where,
                        pathCond,
                        off.isSingleton() ? std::optional<int64_t>(off.lo)
                                          : std::nullopt,
                        size.isSingleton() ? std::optional<int64_t>(size.lo)
                                           : std::nullopt);
        if (mustOob) {
            possibilityFaults = true;
            return AbstractValue::top();
        }
    }

    // Contents. Track uninitialized bytes for stack and heap storage
    // (globals and argv are zero-backed in the managed engine).
    bool tracked = info.storage == StorageKind::stack ||
        info.storage == StorageKind::heap;
    if (off.isSingleton()) {
        int64_t k = off.lo;
        auto it = obj.contents.find(k);
        if (it != obj.contents.end() && it->second.width == width) {
            if (tracked && it->second.mayBeUninit) {
                emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                            BoundsDirection::unknown, false,
                            std::to_string(width) +
                                "-byte read of possibly uninitialized bytes"
                                " at offset " + std::to_string(k) + " of " +
                                where,
                            pathCond);
            }
            if (inst.op() == Opcode::load && inst.slot() >= 0) {
                origins_[inst.slot()] = {static_cast<int>(t.obj), k,
                                         static_cast<uint8_t>(width),
                                         it->second.version};
            }
            return it->second.val;
        }
        if (anyOverlap(obj.contents, k, width)) {
            // Partially covered: value unknown; uninit at most maybe.
            bool maybeUninit = tracked &&
                (defaultMayBeUninit(obj.dflt) ||
                 [&] {
                     auto o = obj.contents.lower_bound(k - 8);
                     for (; o != obj.contents.end() &&
                          o->first < k + static_cast<int64_t>(width);
                          ++o) {
                         if (bytesOverlap(o->first, o->second.width, k,
                                          width) &&
                             o->second.mayBeUninit)
                             return true;
                     }
                     return false;
                 }());
            if (maybeUninit) {
                emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                            BoundsDirection::unknown, false,
                            std::to_string(width) +
                                "-byte read of possibly uninitialized bytes"
                                " at offset " + std::to_string(k) + " of " +
                                where,
                            pathCond);
            }
            return typedTop(readType);
        }
        // No entry: fall back to the default.
        switch (obj.dflt) {
          case ContentsDefault::uninit:
            if (tracked && !obj.weaklyWritten && !obj.escaped) {
                bool definite = !info.multiInstance;
                emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                            BoundsDirection::unknown, definite,
                            std::to_string(width) +
                                "-byte read of uninitialized bytes at"
                                " offset " + std::to_string(k) + " of " +
                                where,
                            pathCond,
                            k,
                            size.isSingleton()
                                ? std::optional<int64_t>(size.lo)
                                : std::nullopt);
                if (definite) {
                    possibilityFaults = true;
                    return AbstractValue::top();
                }
            } else if (tracked) {
                emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                            BoundsDirection::unknown, false,
                            std::to_string(width) +
                                "-byte read of possibly uninitialized bytes"
                                " at offset " + std::to_string(k) + " of " +
                                where,
                            pathCond);
            }
            return typedTop(readType);
          case ContentsDefault::maybeUninit:
            if (tracked) {
                emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                            BoundsDirection::unknown, false,
                            std::to_string(width) +
                                "-byte read of possibly uninitialized bytes"
                                " at offset " + std::to_string(k) + " of " +
                                where,
                            pathCond);
            }
            return typedTop(readType);
          case ContentsDefault::zero: {
            // Materialize an entry so branch refinement can write back.
            MemEntry e;
            e.width = static_cast<uint8_t>(width);
            e.val = typedZero(readType);
            e.version = freshVersion();
            auto [slotIt, unused] = obj.contents.emplace(k, e);
            (void)unused;
            if (inst.op() == Opcode::load && inst.slot() >= 0) {
                origins_[inst.slot()] = {static_cast<int>(t.obj), k,
                                         static_cast<uint8_t>(width),
                                         slotIt->second.version};
            }
            return slotIt->second.val;
          }
          case ContentsDefault::unknown:
            return typedTop(readType);
        }
        return typedTop(readType);
    }

    // Non-singleton offset: value unknown; uninit reasoning over the
    // whole object.
    if (tracked) {
        bool allUninit = obj.dflt == ContentsDefault::uninit &&
            obj.contents.empty() && !obj.weaklyWritten && !obj.escaped &&
            !info.multiInstance;
        bool someUninit = defaultMayBeUninit(obj.dflt) ||
            std::any_of(obj.contents.begin(), obj.contents.end(),
                        [](const auto &kv) {
                            return kv.second.mayBeUninit;
                        });
        if (allUninit) {
            emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                        BoundsDirection::unknown, true,
                        std::to_string(width) +
                            "-byte read of entirely uninitialized " + where,
                        pathCond);
            possibilityFaults = true;
            return AbstractValue::top();
        }
        if (someUninit) {
            emitFinding(inst, ErrorKind::uninitRead, access, info.storage,
                        BoundsDirection::unknown, false,
                        std::to_string(width) +
                            "-byte read of possibly uninitialized bytes of " +
                            where,
                        pathCond);
        }
    }
    return typedTop(readType);
}

/**
 * Checks one load/store. Enumerates the pointer's possibilities (null,
 * unknown, each target), emits candidates, and decides whether every
 * possibility faults (mustFault: the abstract path ends here).
 *
 * A finding is emitted as definite only when the possibility that
 * produces it is the ONLY possibility (single target, no null, no
 * unknown) — otherwise some concrete execution may take a non-faulting
 * possibility and the claim degrades to maybe. emitFinding() applies
 * that via the `definite` flag computed here.
 */
AccessOutcome
FunctionAnalyzer::checkAccess(const Instruction &inst, AccessKind access,
                              const AbstractValue &ptr, unsigned width,
                              const Type *readType, AbsState &st)
{
    AccessOutcome out;
    out.loaded = typedTop(readType);

    if (ptr.kind != AbstractValue::Kind::pointer) {
        // Not provably a pointer (joined kinds): no claims.
        return out;
    }

    unsigned possibilities = (ptr.canBeNull ? 1 : 0) +
        (ptr.canBeUnknown ? 1 : 0) +
        static_cast<unsigned>(ptr.targets.size());
    bool exclusive = possibilities == 1;

    unsigned faulting = 0;
    if (ptr.canBeNull) {
        emitFinding(inst, ErrorKind::nullDeref, access, StorageKind::unknown,
                    BoundsDirection::unknown, exclusive,
                    std::to_string(width) + "-byte " +
                        (access == AccessKind::write ? "write" : "read") +
                        " through a NULL pointer",
                    exclusive ? "pointer is null on every path"
                              : "pointer may be null");
        faulting++;
    }

    bool first = true;
    for (const PointerTarget &t : ptr.targets) {
        bool possibilityFaults = false;
        AbstractValue v;
        if (access == AccessKind::read) {
            v = readTarget(inst, t, width, readType, st, possibilityFaults);
        } else {
            // Writes share the temporal/bounds logic via readTarget's
            // checks; reuse it with the write access kind by inlining
            // the same checks would duplicate code, so probe with a
            // dedicated path below.
            v = AbstractValue::top();
            possibilityFaults = false;
            const ObjectInfo &info = objInfo_[t.obj];
            ObjState &obj = st.objects[t.obj];
            const bool silent = info.silent;
            std::string where = describeObject(t.obj);
            std::string pathCond =
                "offset " + t.offset.toString() + " of " + where;
            if (obj.live == ObjState::Liveness::freed) {
                if (!silent)
                    emitFinding(inst, ErrorKind::useAfterFree, access,
                                info.storage, BoundsDirection::unknown,
                                exclusive && !info.multiInstance,
                                std::to_string(width) +
                                    "-byte write to freed " + where,
                                pathCond);
                possibilityFaults = true;
            } else {
                if (obj.live == ObjState::Liveness::maybeFreed && !silent) {
                    emitFinding(inst, ErrorKind::useAfterFree, access,
                                info.storage, BoundsDirection::unknown, false,
                                std::to_string(width) +
                                    "-byte write to possibly freed " + where,
                                pathCond);
                }
                const Interval &off = t.offset;
                const Interval &size = info.size;
                int64_t w = static_cast<int64_t>(width);
                bool mustOob = !off.isEmpty() && !size.isEmpty() &&
                    (off.hi < 0 || off.lo > size.hi - w);
                bool mayOob = !off.isEmpty() &&
                    (off.lo < 0 || size.isEmpty() || off.hi > size.lo - w);
                if (mustOob || mayOob) {
                    BoundsDirection dir = BoundsDirection::unknown;
                    bool under = off.lo < 0;
                    bool over = size.isEmpty() || off.hi > size.lo - w;
                    if (under && !over)
                        dir = BoundsDirection::underflow;
                    else if (over && !under)
                        dir = BoundsDirection::overflow;
                    if (!silent)
                        emitFinding(inst, ErrorKind::outOfBounds, access,
                                    info.storage, dir, mustOob && exclusive,
                                    std::to_string(width) +
                                        "-byte write at offset " +
                                        off.toString() + " of " + where,
                                    pathCond,
                                    off.isSingleton()
                                        ? std::optional<int64_t>(off.lo)
                                        : std::nullopt,
                                    size.isSingleton()
                                        ? std::optional<int64_t>(size.lo)
                                        : std::nullopt);
                    if (mustOob)
                        possibilityFaults = true;
                }
            }
        }
        if (possibilityFaults)
            faulting++;
        else if (access == AccessKind::read) {
            out.loaded = first ? v : joinValues(out.loaded, v);
            first = false;
        }
    }
    if (access == AccessKind::read && first && !ptr.canBeUnknown &&
        possibilities > 0) {
        // Every enumerated possibility faulted; loaded value is moot.
        out.loaded = AbstractValue::top();
    }

    out.mustFault = !ptr.canBeUnknown && possibilities > 0 &&
        faulting == possibilities;
    return out;
}

void
FunctionAnalyzer::writeTarget(const PointerTarget &t, unsigned width,
                              const AbstractValue &val, bool strong,
                              AbsState &st)
{
    if (summaryOut_ != nullptr) {
        if (ParamEffect *pe = paramEffectOf(t.obj))
            pe->pointeeWritten = true;
        const ObjectInfo &dst = objInfo_[t.obj];
        if (dst.storage == StorageKind::global && !dst.isConst)
            summaryOut_->writesGlobals = true;
        // Storing a pointer-to-parameter value somewhere the caller (or
        // external code) can reach it makes the parameter escape. Stores
        // into private locals are exempt: if the local itself escapes
        // later, markPointerEntriesEscaped records it then.
        bool shared = dst.storage == StorageKind::global ||
            dst.storage == StorageKind::heap || dst.silent ||
            st.objects[t.obj].escaped;
        if (shared && val.kind == AbstractValue::Kind::pointer) {
            for (const PointerTarget &vt : val.targets)
                if (ParamEffect *pe = paramEffectOf(vt.obj))
                    pe->escapes = true;
        }
    }
    ObjState &obj = st.objects[t.obj];
    if (obj.live == ObjState::Liveness::freed)
        return;
    if (t.offset.isSingleton()) {
        int64_t k = t.offset.lo;
        if (strong) {
            eraseOverlap(obj, k, width, st);
            MemEntry e;
            e.width = static_cast<uint8_t>(width);
            e.val = val;
            e.version = freshVersion();
            obj.contents[k] = e;
            return;
        }
        // Weak update at a known offset.
        auto it = obj.contents.find(k);
        if (it != obj.contents.end() && it->second.width == width) {
            it->second.val = joinValues(it->second.val, val);
            it->second.version = freshVersion();
            return;
        }
        bool tracked = objInfo_[t.obj].storage == StorageKind::stack ||
            objInfo_[t.obj].storage == StorageKind::heap;
        bool hadOverlap = anyOverlap(obj.contents, k, width);
        bool wasUninit = !hadOverlap && defaultMayBeUninit(obj.dflt) &&
            tracked;
        eraseOverlap(obj, k, width, st);
        MemEntry e;
        e.width = static_cast<uint8_t>(width);
        // Other instances/paths may retain the old bytes: a known value
        // only survives when the old bytes were a known default.
        if (hadOverlap)
            e.val = AbstractValue::top();
        else if (obj.dflt == ContentsDefault::zero)
            e.val = joinValues(val, zeroOfKind(val));
        else if (obj.dflt == ContentsDefault::uninit)
            e.val = val; ///< either uninit (flagged) or this value
        else
            e.val = AbstractValue::top();
        e.mayBeUninit = wasUninit;
        e.version = freshVersion();
        obj.contents[k] = e;
        obj.weaklyWritten = true;
        return;
    }
    // Unknown offset: clobber the overlap range.
    if (t.offset.isTop() || t.offset.isEmpty()) {
        for (auto &[off, entry] : obj.contents)
            markPointerEntriesEscaped(entry, st);
        obj.contents.clear();
    } else {
        int64_t lo = t.offset.lo;
        int64_t hi = t.offset.hi;
        // hi + width is bounded: offsets beyond the object fault anyway.
        eraseOverlap(obj, lo,
                     static_cast<unsigned>(
                         std::min<int64_t>(hi - lo + width, 1 << 20)),
                     st);
    }
    obj.weaklyWritten = true;
    if (obj.dflt == ContentsDefault::zero ||
        obj.dflt == ContentsDefault::uninit)
        obj.dflt = obj.dflt == ContentsDefault::uninit
            ? ContentsDefault::maybeUninit
            : ContentsDefault::unknown;
}

// --- Calls ---------------------------------------------------------------

void
FunctionAnalyzer::havocObject(unsigned obj, AbsState &st, bool escape)
{
    if (objInfo_[obj].isConst)
        return;
    if (summaryOut_ != nullptr) {
        if (ParamEffect *pe = paramEffectOf(obj)) {
            pe->pointeeWritten = true;
            if (escape)
                pe->escapes = true;
        }
        if (objInfo_[obj].storage == StorageKind::global)
            summaryOut_->writesGlobals = true;
    }
    ObjState &o = st.objects[obj];
    for (auto &[off, entry] : o.contents)
        markPointerEntriesEscaped(entry, st);
    o.contents.clear();
    o.dflt = defaultMayBeUninit(o.dflt) ? ContentsDefault::maybeUninit
                                        : ContentsDefault::unknown;
    o.weaklyWritten = true;
    if (escape)
        o.escaped = true;
}

/**
 * Clobbers @p seeds and everything transitively reachable from pointers
 * stored inside them, marking every visited object escaped.
 */
void
FunctionAnalyzer::havocReachableFrom(std::vector<unsigned> seeds,
                                     AbsState &st)
{
    std::vector<unsigned> work;
    std::vector<bool> seen(objInfo_.size(), false);
    auto seed = [&](unsigned obj) {
        if (!seen[obj]) {
            seen[obj] = true;
            work.push_back(obj);
        }
    };
    for (unsigned obj : seeds)
        seed(obj);
    while (!work.empty()) {
        unsigned obj = work.back();
        work.pop_back();
        // Walk pointers stored inside before clobbering.
        for (const auto &[off, entry] : st.objects[obj].contents)
            if (entry.val.kind == AbstractValue::Kind::pointer)
                for (const PointerTarget &t : entry.val.targets)
                    seed(t.obj);
        havocObject(obj, st, /*escape=*/true);
    }
}

/**
 * Transfer of a call whose effects we cannot model: clobber everything
 * reachable from the arguments, the non-const globals and previously
 * escaped objects. Liveness is deliberately never touched — the
 * documented unsoundness is that callees are assumed not to free their
 * arguments (DESIGN.md).
 */
void
FunctionAnalyzer::havocUnknownCall(const Instruction &inst, AbsState &st)
{
    if (summaryOut_ != nullptr) {
        // The unknown callee may write any global (and anything
        // reachable from one), so the caller of *this* function must
        // havoc its own globals too.
        summaryOut_->writesGlobals = true;
    }
    std::vector<unsigned> seeds;
    for (size_t i = 1; i < inst.operands().size(); i++) {
        AbstractValue v = evalValue(inst.operand(i), st);
        if (v.kind == AbstractValue::Kind::pointer)
            for (const PointerTarget &t : v.targets)
                seeds.push_back(t.obj);
    }
    for (const auto &[g, id] : globalObj_)
        if (!g->isConst())
            seeds.push_back(id);
    for (unsigned i = 0; i < st.objects.size(); i++)
        if (st.objects[i].escaped)
            seeds.push_back(i);
    havocReachableFrom(std::move(seeds), st);
}

void
FunctionAnalyzer::freePointer(const Instruction &inst,
                              const AbstractValue &ptr, AbsState &st,
                              bool viaRealloc)
{
    if (ptr.kind != AbstractValue::Kind::pointer)
        return;
    // free(NULL) is a no-op; it contributes a non-faulting possibility.
    unsigned possibilities = (ptr.canBeNull ? 1 : 0) +
        (ptr.canBeUnknown ? 1 : 0) +
        static_cast<unsigned>(ptr.targets.size());
    bool exclusive = possibilities == 1;
    const char *what = viaRealloc ? "realloc" : "free";

    for (const PointerTarget &t : ptr.targets) {
        const ObjectInfo &info = objInfo_[t.obj];
        ObjState &obj = st.objects[t.obj];
        if (info.silent) {
            // A parameter pseudo object: whether the free is valid
            // depends on the caller's argument. Record the effect and
            // judge nothing here.
            if (ParamEffect *pe = paramEffectOf(t.obj))
                pe->mayFree = true;
            obj.live = joinLiveness(obj.live, ObjState::Liveness::maybeFreed);
            continue;
        }
        std::string where = describeObject(t.obj);
        std::string pathCond = "offset " + t.offset.toString() + " of " +
            where;
        if (info.storage != StorageKind::heap) {
            emitFinding(inst, ErrorKind::invalidFree, AccessKind::free,
                        info.storage, BoundsDirection::unknown, exclusive,
                        std::string(what) + "() of non-heap " + where,
                        pathCond);
            continue;
        }
        // The managed heap checks the interior-pointer case before the
        // freed case, and reports realloc() of a freed block as a
        // use-after-free rather than a double free; mirror both so the
        // replay and the dynamic oracle confirm the same kind.
        if (!t.offset.contains(0)) {
            emitFinding(inst, ErrorKind::invalidFree, AccessKind::free,
                        info.storage, BoundsDirection::unknown, exclusive,
                        std::string(what) + "() of interior pointer (offset " +
                            t.offset.toString() + ") into " + where,
                        pathCond);
            continue;
        }
        ErrorKind freedKind = viaRealloc ? ErrorKind::useAfterFree
                                         : ErrorKind::doubleFree;
        if (obj.live == ObjState::Liveness::freed) {
            emitFinding(inst, freedKind, AccessKind::free, info.storage,
                        BoundsDirection::unknown,
                        exclusive && !info.multiInstance &&
                            t.offset.isSingleton(),
                        std::string(what) + "() of already freed " + where,
                        pathCond);
            continue;
        }
        if (obj.live == ObjState::Liveness::maybeFreed) {
            emitFinding(inst, freedKind, AccessKind::free, info.storage,
                        BoundsDirection::unknown, false,
                        std::string(what) + "() of possibly freed " + where,
                        pathCond);
        }
        if (!t.offset.isSingleton() || t.offset.lo != 0) {
            emitFinding(inst, ErrorKind::invalidFree, AccessKind::free,
                        info.storage, BoundsDirection::unknown, false,
                        std::string(what) +
                            "() of possibly interior pointer into " + where,
                        pathCond);
        }
        bool strong = exclusive && t.offset.isSingleton() &&
            t.offset.lo == 0 && !info.multiInstance &&
            obj.live == ObjState::Liveness::live;
        obj.live = strong ? ObjState::Liveness::freed
                          : ObjState::Liveness::maybeFreed;
    }
}

void
FunctionAnalyzer::transferIntrinsic(const Instruction &inst,
                                    const Function &callee, AbsState &st,
                                    bool &stop)
{
    const std::string &name = callee.name();
    auto argVal = [&](size_t i) {
        return i + 1 < inst.operands().size()
            ? evalValue(inst.operand(i + 1), st)
            : AbstractValue::top();
    };
    auto argInterval = [&](size_t i) {
        AbstractValue v = argVal(i);
        return v.isInt() ? v.ival : Interval::top();
    };
    auto freshAllocation = [&](ContentsDefault dflt, const Interval &size) {
        auto it = siteObj_.find(&inst);
        if (it == siteObj_.end()) {
            setSlot(st, inst, AbstractValue::unknownPointer());
            return;
        }
        unsigned id = it->second;
        objInfo_[id].size = objInfo_[id].size.join(size);
        ObjState fresh;
        fresh.dflt = dflt;
        if (objInfo_[id].multiInstance) {
            // The site object summarizes many instances: keep the old
            // ones in the summary.
            mergeObjInto(st.objects[id], fresh, /*widen=*/false);
            st.objects[id].live =
                joinLiveness(st.objects[id].live, ObjState::Liveness::live);
        } else {
            st.objects[id] = fresh;
        }
        setSlot(st, inst, AbstractValue::pointerTo(id));
    };

    if (name == "malloc") {
        freshAllocation(ContentsDefault::uninit, argInterval(0));
    } else if (name == "calloc") {
        freshAllocation(ContentsDefault::zero,
                        intervalMul(argInterval(0), argInterval(1)));
    } else if (name == "realloc") {
        AbstractValue old = argVal(0);
        Interval newSize = argInterval(1);
        // realloc(NULL, n) is malloc(n); otherwise the old object is
        // freed and its prefix copied.
        freePointer(inst, old, st, /*viaRealloc=*/true);
        auto it = siteObj_.find(&inst);
        if (it != siteObj_.end()) {
            unsigned id = it->second;
            objInfo_[id].size = objInfo_[id].size.join(newSize);
            ObjState fresh;
            // The copied prefix is old contents; the tail is zero-backed
            // in the managed engine and marked initialized.
            fresh.dflt = ContentsDefault::unknown;
            if (old.targets.size() == 1 && !old.canBeUnknown &&
                !old.canBeNull && old.targets[0].offset.isSingleton() &&
                old.targets[0].offset.lo == 0) {
                const ObjState &src = st.objects[old.targets[0].obj];
                fresh.contents = src.contents;
                for (auto &[off, entry] : fresh.contents) {
                    if (entry.mayBeUninit) {
                        entry.val = joinValues(entry.val,
                                               zeroOfKind(entry.val));
                        entry.mayBeUninit = false;
                    }
                    entry.version = freshVersion();
                }
                fresh.dflt = src.dflt == ContentsDefault::uninit ||
                        src.dflt == ContentsDefault::maybeUninit ||
                        src.dflt == ContentsDefault::zero
                    ? ContentsDefault::zero
                    : ContentsDefault::unknown;
                fresh.weaklyWritten = src.weaklyWritten;
            }
            if (old.canBeNull && fresh.dflt == ContentsDefault::unknown &&
                old.targets.empty())
                fresh.dflt = ContentsDefault::zero; // pure malloc path
            if (objInfo_[id].multiInstance) {
                mergeObjInto(st.objects[id], fresh, false);
                st.objects[id].live = joinLiveness(
                    st.objects[id].live, ObjState::Liveness::live);
            } else {
                st.objects[id] = fresh;
            }
            setSlot(st, inst, AbstractValue::pointerTo(id));
        } else {
            setSlot(st, inst, AbstractValue::unknownPointer());
        }
    } else if (name == "free") {
        freePointer(inst, argVal(0), st, false);
    } else if (name == "__sys_exit") {
        stop = true;
    } else if (name == "__sys_write") {
        AbstractValue buf = argVal(1);
        Interval len = argInterval(2);
        if (buf.kind == AbstractValue::Kind::pointer && len.lo > 0) {
            if (buf.isMustNull()) {
                emitFinding(inst, ErrorKind::nullDeref, AccessKind::read,
                            StorageKind::unknown, BoundsDirection::unknown,
                            true, "write() from a NULL buffer",
                            "buffer is null, length > 0");
                stop = true;
            } else if (buf.canBeNull) {
                emitFinding(inst, ErrorKind::nullDeref, AccessKind::read,
                            StorageKind::unknown, BoundsDirection::unknown,
                            false, "write() from a possibly NULL buffer",
                            "buffer may be null");
            }
            // Spatial checks on the buffered read: maybe-tier only (the
            // replay confirms concrete cases).
            for (const PointerTarget &t : buf.targets) {
                const ObjectInfo &info = objInfo_[t.obj];
                if (!info.silent && !info.size.isEmpty() &&
                    !t.offset.isEmpty() &&
                    (t.offset.lo < 0 ||
                     t.offset.hi > info.size.lo - len.lo)) {
                    emitFinding(inst, ErrorKind::outOfBounds,
                                AccessKind::read, info.storage,
                                BoundsDirection::unknown, false,
                                "write() of " + len.toString() +
                                    " bytes may overrun " +
                                    describeObject(t.obj),
                                "offset " + t.offset.toString());
                }
            }
        }
        setSlot(st, inst, AbstractValue::ofInterval(
                              Interval::range(-1, INT32_MAX)));
    } else if (name == "__sys_getchar") {
        setSlot(st, inst, AbstractValue::ofInterval(Interval::range(-1, 255)));
    } else if (name == "__sys_alloc_size") {
        AbstractValue p = argVal(0);
        if (p.kind == AbstractValue::Kind::pointer && p.isMustNull()) {
            setSlot(st, inst, AbstractValue::ofInt(0));
        } else if (p.kind == AbstractValue::Kind::pointer &&
                   p.targets.size() == 1 && !p.canBeNull &&
                   !p.canBeUnknown &&
                   objInfo_[p.targets[0].obj].size.isSingleton()) {
            setSlot(st, inst, AbstractValue::ofInterval(
                                  objInfo_[p.targets[0].obj].size));
        } else {
            setSlot(st, inst, AbstractValue::ofInterval(
                                  Interval::range(0, INT64_MAX)));
        }
    } else if (name == "__va_start" || name == "__va_arg_ptr") {
        // Varargs objects are not abstracted; a missing-argument
        // access is only found by the replay.
        setSlot(st, inst, AbstractValue::unknownPointer());
    } else if (name == "__va_count") {
        setSlot(st, inst, AbstractValue::ofInterval(
                              Interval::range(0, INT32_MAX)));
    } else if (name == "__va_end") {
        // No effect.
    } else {
        // Math intrinsics et al.: pure, float result.
        setSlot(st, inst, typedTop(inst.type()));
    }
}

namespace
{

bool
isReadOnlyLibc(const std::string &name)
{
    static const std::set<std::string> kReadOnly = {
        // ctype
        "isalpha", "isdigit", "isalnum", "isspace", "isupper", "islower",
        "ispunct", "isprint", "isxdigit", "iscntrl", "isgraph", "toupper",
        "tolower",
        // string scanning
        "strlen", "strcmp", "strncmp", "strchr", "strrchr", "strstr",
        "strspn", "strcspn", "strpbrk", "memcmp", "memchr",
        // conversions / math
        "atoi", "atol", "atoll", "abs", "labs", "llabs",
        // output (guest-visible writes go to the host io channel only)
        "printf", "puts", "putchar", "fputs", "fputc", "fprintf",
        // PRNG state is libc-private
        "rand", "srand",
        // input without guest-memory writes
        "getchar", "getc", "fgetc",
    };
    return kReadOnly.count(name) > 0;
}

bool
isDstWriteLibc(const std::string &name)
{
    static const std::set<std::string> kDstWrite = {
        "strcpy", "strncpy", "strcat", "strncat", "memcpy", "memmove",
        "memset", "sprintf", "snprintf",
    };
    return kDstWrite.count(name) > 0;
}

} // namespace

/// strlen/memset concrete walks; returns false to fall through to the
/// havoc fallbacks.
bool
FunctionAnalyzer::transferLibcSummary(const Instruction &inst,
                                      const Function &callee, AbsState &st)
{
    const std::string &name = callee.name();
    auto argVal = [&](size_t i) {
        return i + 1 < inst.operands().size()
            ? evalValue(inst.operand(i + 1), st)
            : AbstractValue::top();
    };
    // A pointer we can walk concretely: one live target at a known
    // non-negative offset of an object of known size.
    auto concrete = [&](const AbstractValue &v, unsigned &obj,
                        int64_t &off) {
        if (v.kind != AbstractValue::Kind::pointer || v.canBeNull ||
            v.canBeUnknown || v.targets.size() != 1 ||
            !v.targets[0].offset.isSingleton() ||
            v.targets[0].offset.lo < 0)
            return false;
        obj = v.targets[0].obj;
        off = v.targets[0].offset.lo;
        return st.objects[obj].live == ObjState::Liveness::live &&
            objInfo_[obj].size.isSingleton();
    };
    auto knownByte = [&](unsigned obj, int64_t off, int64_t &out) {
        const ObjState &o = st.objects[obj];
        auto it = o.contents.find(off);
        if (it != o.contents.end() && it->second.width == 1 &&
            !it->second.mayBeUninit) {
            return it->second.val.isConstInt(out);
        }
        if (it == o.contents.end() && !anyOverlap(o.contents, off, 1) &&
            o.dflt == ContentsDefault::zero && !o.weaklyWritten &&
            !o.escaped) {
            out = 0;
            return true;
        }
        return false;
    };

    if (name == "strlen") {
        unsigned obj;
        int64_t off;
        if (!concrete(argVal(0), obj, off))
            return false;
        int64_t size = objInfo_[obj].size.lo;
        for (int64_t i = 0; i < 4096; i++) {
            if (off + i >= size) {
                emitFinding(inst, ErrorKind::outOfBounds, AccessKind::read,
                            objInfo_[obj].storage, BoundsDirection::overflow,
                            false,
                            "strlen() runs past the end of " +
                                describeObject(obj) +
                                " (no terminating NUL)",
                            "scan from offset " + std::to_string(off),
                            off + i, size);
                setSlot(st, inst, AbstractValue::ofInterval(
                                      Interval::range(0, INT64_MAX)));
                return true;
            }
            int64_t b;
            if (!knownByte(obj, off + i, b))
                return false;
            if (b == 0) {
                setSlot(st, inst, AbstractValue::ofInt(i));
                return true;
            }
        }
        return false;
    }

    if (name == "memset") {
        unsigned obj;
        int64_t off;
        AbstractValue n = argVal(2);
        AbstractValue c = argVal(1);
        int64_t len, fill;
        if (!concrete(argVal(0), obj, off) || !n.isConstInt(len) ||
            !c.isConstInt(fill) || len < 0 || len > 4096)
            return false;
        int64_t size = objInfo_[obj].size.lo;
        if (off + len > size) {
            emitFinding(inst, ErrorKind::outOfBounds, AccessKind::write,
                        objInfo_[obj].storage, BoundsDirection::overflow,
                        false,
                        "memset() of " + std::to_string(len) +
                            " bytes overruns " + describeObject(obj),
                        "start offset " + std::to_string(off), off, size);
            return false; // fall through to the dst havoc
        }
        bool strong = !objInfo_[obj].multiInstance;
        AbstractValue byte =
            AbstractValue::ofInt(static_cast<int8_t>(fill));
        PointerTarget t{obj, Interval::of(0)};
        for (int64_t i = 0; i < len; i++) {
            t.offset = Interval::of(off + i);
            writeTarget(t, 1, byte, strong, st);
        }
        setSlot(st, inst, argVal(0));
        return true;
    }

    return false;
}

void
FunctionAnalyzer::transferCall(const Instruction &inst, AbsState &st,
                               bool &stop)
{
    const auto *callee = inst.operands().empty()
        ? nullptr
        : dynamic_cast<const Function *>(inst.operand(0));
    if (callee == nullptr) {
        // Indirect call through a function pointer value: when every
        // type-compatible address-taken candidate has a usable summary,
        // their join is a sound transfer function for the site.
        if (callgraph_ != nullptr && summaries_ != nullptr) {
            std::vector<const Function *> cands = callgraph_->mayCall(inst);
            bool usable = !cands.empty();
            FunctionSummary merged;
            for (const Function *c : cands) {
                if (!usable)
                    break;
                const FunctionSummary &cs = (*summaries_)[c->id()];
                if (!cs.computed || cs.pessimistic) {
                    usable = false;
                    break;
                }
                joinSummaryInto(merged, cs, /*widen=*/false);
            }
            if (usable && merged.computed && !merged.pessimistic) {
                applySummary(inst, merged, st, stop);
                return;
            }
        }
        havocUnknownCall(inst, st);
        setSlot(st, inst, typedTop(inst.type()));
        return;
    }
    if (callee->isIntrinsic()) {
        transferIntrinsic(inst, *callee, st, stop);
        return;
    }
    if (callee->isDeclaration()) {
        // Unresolved external: the engines raise an engine-error, so no
        // path continues past this call.
        stop = true;
        return;
    }
    const std::string &name = callee->name();
    bool isLibc = callee->sourceFile().rfind("libc/", 0) == 0;
    if (isLibc) {
        if (name == "exit" || name == "abort" || name == "_exit") {
            stop = true;
            return;
        }
        if (isReadOnlyLibc(name)) {
            setSlot(st, inst, typedTop(inst.type()));
            return;
        }
        if (transferLibcSummary(inst, *callee, st))
            return;
        if (isDstWriteLibc(name)) {
            // Only the destination buffer is written; it does not
            // escape through these calls.
            AbstractValue dst = inst.operands().size() > 1
                ? evalValue(inst.operand(1), st)
                : AbstractValue::top();
            if (dst.kind == AbstractValue::Kind::pointer) {
                for (const PointerTarget &t : dst.targets)
                    havocObject(t.obj, st, /*escape=*/false);
                setSlot(st, inst,
                        inst.type() != nullptr && inst.type()->isPointer()
                            ? dst
                            : typedTop(inst.type()));
                return;
            }
        }
    }
    // Interprocedural: a completed, bounded callee summary replaces the
    // havoc-everything fallback. Libc definitions are never summarized
    // (userCodeOnly skips them), so their `computed` flag stays false
    // and they keep the PR-4 treatment above.
    if (summaries_ != nullptr) {
        const FunctionSummary &sum = (*summaries_)[callee->id()];
        if (sum.computed && !sum.pessimistic) {
            applySummary(inst, sum, st, stop);
            return;
        }
    }
    havocUnknownCall(inst, st);
    setSlot(st, inst, typedTop(inst.type()));
}

void
FunctionAnalyzer::applySummary(const Instruction &inst,
                               const FunctionSummary &sum, AbsState &st,
                               bool &stop)
{
    if (collect_)
        summariesApplied_++;
    size_t nargs = inst.operands().empty() ? 0 : inst.operands().size() - 1;

    // Per-argument pointee effects.
    for (size_t i = 0; i < nargs; i++) {
        AbstractValue v = evalValue(inst.operand(i + 1), st);
        if (v.kind != AbstractValue::Kind::pointer)
            continue;
        ParamEffect e;
        if (i < sum.params.size()) {
            e = sum.params[i];
        } else {
            // Varargs beyond the formals: assume the worst.
            e.pointeeWritten = e.escapes = e.mayFree = true;
        }
        for (const PointerTarget &t : v.targets) {
            if (e.mayFree) {
                // Callee may free() the block (never "must": the
                // summary joins every path).
                if (objInfo_[t.obj].storage == StorageKind::heap ||
                    objInfo_[t.obj].silent) {
                    ObjState &o = st.objects[t.obj];
                    o.live = joinLiveness(o.live,
                                          ObjState::Liveness::maybeFreed);
                }
                if (ParamEffect *pe = paramEffectOf(t.obj))
                    pe->mayFree = true;
            }
            if (e.pointeeWritten) {
                havocObject(t.obj, st, /*escape=*/e.escapes);
            } else if (e.escapes) {
                st.objects[t.obj].escaped = true;
                if (ParamEffect *pe = paramEffectOf(t.obj))
                    pe->escapes = true;
            }
        }
    }

    if (sum.writesGlobals) {
        std::vector<unsigned> seeds;
        for (const auto &[g, id] : globalObj_)
            if (!g->isConst())
                seeds.push_back(id);
        for (unsigned i = 0; i < st.objects.size(); i++)
            if (st.objects[i].escaped)
                seeds.push_back(i);
        havocReachableFrom(std::move(seeds), st);
    }

    if (sum.neverReturns) {
        stop = true;
        return;
    }

    switch (sum.ret) {
      case Ret::none:
        // void return.
        setSlot(st, inst, typedTop(inst.type()));
        break;
      case Ret::interval: {
        Interval r = Interval::empty();
        if (sum.hasAffine && sum.affineArg < nargs) {
            AbstractValue a =
                evalValue(inst.operand(sum.affineArg + 1), st);
            if (a.isInt())
                r = affineApply(sum, a.ival);
        }
        if (r.isEmpty())
            r = sum.retInterval;
        setSlot(st, inst,
                r.isEmpty() ? typedTop(inst.type())
                            : AbstractValue::ofInterval(r));
        break;
      }
      case Ret::freshHeap: {
        auto it = siteObj_.find(&inst);
        if (it == siteObj_.end()) {
            setSlot(st, inst, AbstractValue::unknownPointer());
            break;
        }
        unsigned id = it->second;
        objInfo_[id].size = objInfo_[id].size.join(sum.allocSize);
        ObjState fresh;
        fresh.dflt = sum.allocContents;
        if (objInfo_[id].multiInstance) {
            mergeObjInto(st.objects[id], fresh, /*widen=*/false);
            st.objects[id].live = joinLiveness(st.objects[id].live,
                                               ObjState::Liveness::live);
        } else {
            st.objects[id] = fresh;
        }
        AbstractValue p = AbstractValue::pointerTo(id);
        p.canBeNull = sum.retMayBeNull;
        setSlot(st, inst, p);
        break;
      }
      case Ret::unknown:
        setSlot(st, inst, typedTop(inst.type()));
        break;
    }
}

void
FunctionAnalyzer::recordReturn(const Instruction &inst, AbsState &st)
{
    FunctionSummary &s = *summaryOut_;
    s.neverReturns = false;
    if (inst.operands().empty())
        return; // void: Ret::none stays the bottom of the lattice
    AbstractValue v = evalValue(inst.operand(0), st);
    auto degrade = [&s] { s.ret = Ret::unknown; };

    if (v.isInt()) {
        if (s.ret == Ret::none) {
            s.ret = Ret::interval;
            s.retInterval = v.ival;
        } else if (s.ret == Ret::interval) {
            s.retInterval = s.retInterval.join(v.ival);
        } else {
            degrade();
        }
        return;
    }
    if (v.kind == AbstractValue::Kind::pointer && !v.canBeUnknown) {
        // Fresh-heap recognition: every non-null possibility is a live,
        // unescaped heap allocation of this function, returned at its
        // start. Anything else (stack/global/parameter pointers,
        // interior pointers, escaped or freed blocks) degrades.
        Interval size = Interval::empty();
        ContentsDefault contents = ContentsDefault::unknown;
        bool first = true;
        for (const PointerTarget &t : v.targets) {
            const ObjState &o = st.objects[t.obj];
            if (objInfo_[t.obj].storage != StorageKind::heap ||
                !t.offset.isSingleton() || t.offset.lo != 0 ||
                o.live != ObjState::Liveness::live || o.escaped) {
                degrade();
                return;
            }
            // Bytes the callee wrote individually are initialized but
            // unknown to the caller; the rest keep the block's default.
            ContentsDefault d = o.contents.empty()
                ? o.dflt
                : joinDefault(o.dflt, ContentsDefault::unknown);
            size = size.join(objInfo_[t.obj].size);
            contents = first ? d : joinDefault(contents, d);
            first = false;
        }
        if (s.ret == Ret::none) {
            s.ret = Ret::freshHeap;
            s.allocSize = size;
            s.allocContents = v.targets.empty()
                ? ContentsDefault::unknown
                : contents;
            s.retMayBeNull = v.canBeNull;
        } else if (s.ret == Ret::freshHeap) {
            s.allocSize = s.allocSize.join(size);
            if (!v.targets.empty())
                s.allocContents = joinDefault(s.allocContents, contents);
            s.retMayBeNull = s.retMayBeNull || v.canBeNull;
        } else {
            degrade();
        }
        return;
    }
    degrade();
}

// --- Branch refinement ---------------------------------------------------

/**
 * Peels the codegen's `icmp ne/eq (zext (icmp ...)), 0` chains down to
 * the innermost icmp. @p polarity starts as the branch truth and flips
 * on every `eq ..., 0` layer.
 */
const Instruction *
FunctionAnalyzer::resolveCondChain(const Value *cond, bool &polarity) const
{
    const auto *inst = dynamic_cast<const Instruction *>(cond);
    while (inst != nullptr && inst->op() == Opcode::icmp) {
        IntPred pred = inst->intPred();
        if (pred != IntPred::eq && pred != IntPred::ne)
            return inst;
        const auto *rhs =
            dynamic_cast<const ConstantInt *>(inst->operand(1));
        if (rhs == nullptr || rhs->value() != 0 ||
            !inst->operand(0)->type()->isInteger())
            return inst;
        const auto *src =
            dynamic_cast<const Instruction *>(inst->operand(0));
        while (src != nullptr &&
               (src->op() == Opcode::zext || src->op() == Opcode::sext))
            src = dynamic_cast<const Instruction *>(src->operand(0));
        if (src == nullptr || src->op() != Opcode::icmp)
            return inst;
        // `x != 0` keeps the truth of x, `x == 0` negates it.
        if (pred == IntPred::eq)
            polarity = !polarity;
        inst = src;
    }
    return nullptr;
}

void
FunctionAnalyzer::writeRefinedInt(AbsState &st, const Value *v,
                                  const Interval &refined)
{
    int slot = -1;
    if (v->valueKind() == ValueKind::argument)
        slot = static_cast<int>(static_cast<const Argument *>(v)->index());
    else if (v->valueKind() == ValueKind::instruction)
        slot = static_cast<const Instruction *>(v)->slot();
    if (slot >= 0 && st.slots[slot].isInt()) {
        Interval met = st.slots[slot].ival.meet(refined);
        if (!met.isEmpty())
            st.slots[slot].ival = met;
    }
    const auto *inst = dynamic_cast<const Instruction *>(v);
    if (inst == nullptr)
        return;
    switch (inst->op()) {
      case Opcode::sext:
        // Canonical values are sign-extended: the mapping is identity.
        writeRefinedInt(st, inst->operand(0), refined);
        return;
      case Opcode::zext: {
        const Type *srcType = inst->operand(0)->type();
        if (!srcType->isInteger())
            return;
        unsigned srcBits = srcType->intBits();
        if (srcBits >= 64) {
            writeRefinedInt(st, inst->operand(0), refined);
            return;
        }
        int64_t half = int64_t{1} << (srcBits - 1);
        int64_t full = int64_t{1} << srcBits;
        if (refined.lo >= 0 && refined.hi < half) {
            writeRefinedInt(st, inst->operand(0), refined);
        } else if (refined.lo >= half && refined.hi < full) {
            writeRefinedInt(st, inst->operand(0),
                            Interval::range(refined.lo - full,
                                            refined.hi - full));
        }
        return;
      }
      case Opcode::load: {
        if (inst->slot() < 0)
            return;
        const Origin &origin = origins_[inst->slot()];
        if (origin.obj < 0)
            return;
        auto it = st.objects[origin.obj].contents.find(origin.off);
        if (it == st.objects[origin.obj].contents.end() ||
            it->second.width != origin.width ||
            it->second.version != origin.version)
            return; // memory may have changed since the load
        if (it->second.val.isInt()) {
            Interval met = it->second.val.ival.meet(refined);
            if (!met.isEmpty())
                it->second.val.ival = met;
        }
        return;
      }
      default:
        return;
    }
}

void
FunctionAnalyzer::writeRefinedPointer(AbsState &st, const Value *v,
                                      const AbstractValue &refined)
{
    int slot = -1;
    if (v->valueKind() == ValueKind::argument)
        slot = static_cast<int>(static_cast<const Argument *>(v)->index());
    else if (v->valueKind() == ValueKind::instruction)
        slot = static_cast<const Instruction *>(v)->slot();
    if (slot >= 0 && st.slots[slot].isPointer())
        st.slots[slot] = refined;
    const auto *inst = dynamic_cast<const Instruction *>(v);
    if (inst == nullptr || inst->op() != Opcode::load || inst->slot() < 0)
        return;
    const Origin &origin = origins_[inst->slot()];
    if (origin.obj < 0)
        return;
    auto it = st.objects[origin.obj].contents.find(origin.off);
    if (it == st.objects[origin.obj].contents.end() ||
        it->second.width != origin.width ||
        it->second.version != origin.version)
        return;
    if (it->second.val.isPointer())
        it->second.val = refined;
}

namespace
{

IntPred
negatePred(IntPred pred)
{
    switch (pred) {
      case IntPred::eq:  return IntPred::ne;
      case IntPred::ne:  return IntPred::eq;
      case IntPred::slt: return IntPred::sge;
      case IntPred::sle: return IntPred::sgt;
      case IntPred::sgt: return IntPred::sle;
      case IntPred::sge: return IntPred::slt;
      case IntPred::ult: return IntPred::uge;
      case IntPred::ule: return IntPred::ugt;
      case IntPred::ugt: return IntPred::ule;
      case IntPred::uge: return IntPred::ult;
    }
    return pred;
}

Interval
belowStrict(int64_t hi)
{
    if (hi == INT64_MIN)
        return Interval::empty();
    return Interval::range(INT64_MIN, hi - 1);
}

Interval
aboveStrict(int64_t lo)
{
    if (lo == INT64_MAX)
        return Interval::empty();
    return Interval::range(lo + 1, INT64_MAX);
}

} // namespace

/** Narrows operand values along a branch edge; false = edge infeasible. */
bool
FunctionAnalyzer::applyRefinement(AbsState &st, const Instruction &cmp,
                                  bool truth)
{
    const Value *a = cmp.operand(0);
    const Value *b = cmp.operand(1);
    IntPred pred = truth ? cmp.intPred() : negatePred(cmp.intPred());

    if (a->type()->isPointer()) {
        // Only the null test is refined; object identity is not.
        if (pred != IntPred::eq && pred != IntPred::ne)
            return true;
        AbstractValue av = evalValue(a, st);
        AbstractValue bv = evalValue(b, st);
        auto refineNull = [&](const Value *side, const AbstractValue &val,
                              bool mustBeNull) -> bool {
            if (val.kind != AbstractValue::Kind::pointer)
                return true;
            if (mustBeNull) {
                if (!val.canBeNull)
                    return false; // never null: edge infeasible
                writeRefinedPointer(st, side, AbstractValue::nullPointer());
                return true;
            }
            AbstractValue refined = val;
            refined.canBeNull = false;
            if (refined.targets.empty() && !refined.canBeUnknown)
                return false; // must-null pointer on a non-null edge
            writeRefinedPointer(st, side, refined);
            return true;
        };
        bool eq = pred == IntPred::eq;
        if (bv.isMustNull() || b->valueKind() == ValueKind::constantNull)
            return refineNull(a, av, eq);
        if (av.isMustNull() || a->valueKind() == ValueKind::constantNull)
            return refineNull(b, bv, eq);
        return true;
    }
    if (!a->type()->isInteger())
        return true;

    AbstractValue av = evalValue(a, st);
    AbstractValue bv = evalValue(b, st);
    if (!av.isInt() || !bv.isInt())
        return true;
    Interval ai = av.ival;
    Interval bi = bv.ival;
    Interval newA = ai;
    Interval newB = bi;

    switch (pred) {
      case IntPred::eq:
        newA = newB = ai.meet(bi);
        break;
      case IntPred::ne:
        if (bi.isSingleton()) {
            if (ai.lo == bi.lo)
                newA = aboveStrict(ai.lo).meet(ai);
            if (ai.hi == bi.lo)
                newA = newA.meet(belowStrict(ai.hi));
        }
        if (ai.isSingleton()) {
            if (bi.lo == ai.lo)
                newB = aboveStrict(bi.lo).meet(bi);
            if (bi.hi == ai.lo)
                newB = newB.meet(belowStrict(bi.hi));
        }
        if (ai.isSingleton() && bi.isSingleton() && ai.lo == bi.lo)
            return false; // equal constants on a != edge
        break;
      case IntPred::slt:
        newA = ai.meet(belowStrict(bi.hi));
        newB = bi.meet(aboveStrict(ai.lo));
        break;
      case IntPred::sle:
        newA = ai.meet(Interval::range(INT64_MIN, bi.hi));
        newB = bi.meet(Interval::range(ai.lo, INT64_MAX));
        break;
      case IntPred::sgt:
        newA = ai.meet(aboveStrict(bi.lo));
        newB = bi.meet(belowStrict(ai.hi));
        break;
      case IntPred::sge:
        newA = ai.meet(Interval::range(bi.lo, INT64_MAX));
        newB = bi.meet(Interval::range(INT64_MIN, ai.hi));
        break;
      case IntPred::ult:
        // unsigned(a) < b with b's sign known non-negative bounds a to
        // [0, b.hi-1]: any signed-negative a is a huge unsigned value.
        if (bi.lo >= 0)
            newA = ai.meet(Interval::range(0, bi.hi - 1));
        if (ai.lo >= 0 && bi.lo >= 0)
            newB = bi.meet(aboveStrict(ai.lo));
        break;
      case IntPred::ule:
        if (bi.lo >= 0)
            newA = ai.meet(Interval::range(0, bi.hi));
        if (ai.lo >= 0 && bi.lo >= 0)
            newB = bi.meet(Interval::range(ai.lo, INT64_MAX));
        break;
      case IntPred::ugt:
        if (ai.lo >= 0 && bi.lo >= 0)
            newA = ai.meet(aboveStrict(bi.lo));
        if (bi.lo >= 0 && ai.lo >= 0)
            newB = bi.meet(belowStrict(ai.hi));
        break;
      case IntPred::uge:
        if (ai.lo >= 0 && bi.lo >= 0) {
            newA = ai.meet(Interval::range(bi.lo, INT64_MAX));
            newB = bi.meet(Interval::range(INT64_MIN, ai.hi));
        }
        break;
    }
    if (newA.isEmpty() || newB.isEmpty())
        return false;
    if (newA != ai)
        writeRefinedInt(st, a, newA);
    if (newB != bi)
        writeRefinedInt(st, b, newB);
    return true;
}

// --- Transfer ------------------------------------------------------------

namespace
{

/// i1 result interval of `icmp pred a, b` at @p bits operand width.
Interval
cmpIntervals(IntPred pred, const Interval &a, const Interval &b,
             unsigned bits)
{
    if (a.isEmpty() || b.isEmpty())
        return Interval::range(0, 1);
    bool canTrue = true;
    bool canFalse = true;
    auto signedCase = [&](IntPred p) {
        switch (p) {
          case IntPred::slt:
            canTrue = a.lo < b.hi;
            canFalse = a.hi >= b.lo;
            break;
          case IntPred::sle:
            canTrue = a.lo <= b.hi;
            canFalse = a.hi > b.lo;
            break;
          case IntPred::sgt:
            canTrue = a.hi > b.lo;
            canFalse = a.lo <= b.hi;
            break;
          case IntPred::sge:
            canTrue = a.hi >= b.lo;
            canFalse = a.lo < b.hi;
            break;
          default:
            break;
        }
    };
    switch (pred) {
      case IntPred::eq:
        canTrue = !a.meet(b).isEmpty();
        canFalse = !(a.isSingleton() && b.isSingleton() && a.lo == b.lo);
        break;
      case IntPred::ne:
        canFalse = !a.meet(b).isEmpty();
        canTrue = !(a.isSingleton() && b.isSingleton() && a.lo == b.lo);
        break;
      case IntPred::slt:
      case IntPred::sle:
      case IntPred::sgt:
      case IntPred::sge:
        signedCase(pred);
        break;
      case IntPred::ult:
      case IntPred::ule:
      case IntPred::ugt:
      case IntPred::uge: {
        if (a.lo >= 0 && b.lo >= 0) {
            // Same order as signed for non-negative values.
            IntPred s = pred == IntPred::ult ? IntPred::slt
                : pred == IntPred::ule      ? IntPred::sle
                : pred == IntPred::ugt      ? IntPred::sgt
                                            : IntPred::sge;
            signedCase(s);
        } else if (a.isSingleton() && b.isSingleton()) {
            uint64_t mask = bits >= 64 ? ~uint64_t{0}
                                       : (uint64_t{1} << bits) - 1;
            uint64_t ua = static_cast<uint64_t>(a.lo) & mask;
            uint64_t ub = static_cast<uint64_t>(b.lo) & mask;
            bool r = pred == IntPred::ult ? ua < ub
                : pred == IntPred::ule   ? ua <= ub
                : pred == IntPred::ugt   ? ua > ub
                                         : ua >= ub;
            canTrue = r;
            canFalse = !r;
        }
        break;
      }
    }
    if (canTrue && !canFalse)
        return Interval::of(1);
    if (!canTrue && canFalse)
        return Interval::of(0);
    return Interval::range(0, 1);
}

bool
mustNonNull(const AbstractValue &v)
{
    return v.isPointer() && !v.canBeNull &&
        (v.canBeUnknown || !v.targets.empty());
}

} // namespace

void
FunctionAnalyzer::joinInto(unsigned block, const AbsState &state)
{
    if (collect_)
        return;
    if (!blockIn_[block].has_value()) {
        blockIn_[block] = state;
        worklist_.insert({cfg_.rpoIndex(block), block});
        return;
    }
    AbsState merged = *blockIn_[block];
    bool widen = visits_[block] >= options_.widenAfter;
    mergeStateInto(merged, state, widen);
    if (!(merged == *blockIn_[block])) {
        blockIn_[block] = std::move(merged);
        worklist_.insert({cfg_.rpoIndex(block), block});
    }
}

std::string
FunctionAnalyzer::describeObject(unsigned obj) const
{
    const ObjectInfo &info = objInfo_[obj];
    std::string out;
    if (info.size.isSingleton())
        out += std::to_string(info.size.lo) + "-byte ";
    switch (info.storage) {
      case StorageKind::stack:
        out += "stack object";
        break;
      case StorageKind::heap:
        out += "heap object";
        break;
      case StorageKind::global:
        out += "global";
        break;
      case StorageKind::mainArgs:
        out += "argv object";
        break;
      case StorageKind::unknown:
        out += "object";
        break;
    }
    if (!info.name.empty())
        out += " '" + info.name + "'";
    return out;
}

void
FunctionAnalyzer::emitFinding(const Instruction &inst, ErrorKind kind,
                              AccessKind access, StorageKind storage,
                              BoundsDirection direction, bool definite,
                              const std::string &detail,
                              const std::string &pathCondition,
                              std::optional<int64_t> offset,
                              std::optional<int64_t> objectSize)
{
    if (!collect_ || out_ == nullptr)
        return;
    StaticFinding f;
    f.kind = kind;
    f.access = access;
    f.storage = storage;
    f.direction = direction;
    f.confidence = definite && !abandoned_ ? Confidence::definite
                                           : Confidence::maybe;
    f.function = fn_.name();
    f.blockIndex = inst.parent()->index();
    f.instIndex = curInstIndex_;
    f.loc = inst.loc();
    f.detail = detail;
    f.pathCondition = pathCondition;
    f.offset = offset;
    f.objectSize = objectSize;
    auto key = std::make_tuple(f.blockIndex, f.instIndex,
                               static_cast<int>(kind));
    auto [it, fresh] = emitted_.emplace(key, out_->size());
    if (fresh) {
        out_->push_back(std::move(f));
    } else if (f.confidence == Confidence::definite &&
               (*out_)[it->second].confidence == Confidence::maybe) {
        (*out_)[it->second] = std::move(f);
    }
}

void
FunctionAnalyzer::transferBlock(unsigned b, AbsState st)
{
    std::fill(origins_.begin(), origins_.end(), Origin{});
    const BasicBlock &bb = *fn_.blocks()[b];
    const auto &insts = bb.insts();
    for (size_t idx = 0; idx < insts.size(); idx++) {
        const Instruction &inst = *insts[idx];
        curInstIndex_ = static_cast<unsigned>(idx);
        switch (inst.op()) {
          case Opcode::alloca_: {
            auto it = siteObj_.find(&inst);
            if (it == siteObj_.end())
                break;
            unsigned id = it->second;
            ObjState fresh;
            fresh.dflt = ContentsDefault::uninit;
            if (objInfo_[id].multiInstance) {
                mergeObjInto(st.objects[id], fresh, false);
                st.objects[id].live = joinLiveness(
                    st.objects[id].live, ObjState::Liveness::live);
            } else {
                st.objects[id] = fresh;
            }
            setSlot(st, inst, AbstractValue::pointerTo(id));
            break;
          }
          case Opcode::load: {
            AbstractValue ptr = evalValue(inst.operand(0), st);
            unsigned width =
                static_cast<unsigned>(inst.accessType()->size());
            AccessOutcome out = checkAccess(inst, AccessKind::read, ptr,
                                            width, inst.accessType(), st);
            if (out.mustFault)
                return;
            setSlot(st, inst, out.loaded);
            break;
          }
          case Opcode::store: {
            AbstractValue val = evalValue(inst.operand(0), st);
            AbstractValue ptr = evalValue(inst.operand(1), st);
            unsigned width =
                static_cast<unsigned>(inst.accessType()->size());
            AccessOutcome out = checkAccess(inst, AccessKind::write, ptr,
                                            width, inst.accessType(), st);
            if (out.mustFault)
                return;
            if (ptr.kind != AbstractValue::Kind::pointer ||
                ptr.canBeUnknown) {
                // The store may hit any object we track.
                for (unsigned i = 0; i < st.objects.size(); i++)
                    havocObject(i, st, /*escape=*/false);
                break;
            }
            bool strong = ptr.targets.size() == 1 && !ptr.canBeNull &&
                ptr.targets[0].offset.isSingleton() &&
                !objInfo_[ptr.targets[0].obj].multiInstance &&
                st.objects[ptr.targets[0].obj].live ==
                    ObjState::Liveness::live;
            for (const PointerTarget &t : ptr.targets)
                writeTarget(t, width, val, strong, st);
            break;
          }
          case Opcode::gep: {
            AbstractValue base = evalValue(inst.operand(0), st);
            Interval add = Interval::of(inst.gepConstOffset());
            if (inst.operands().size() > 1) {
                AbstractValue idxV = evalValue(inst.operand(1), st);
                Interval idx = idxV.isInt() ? idxV.ival : Interval::top();
                add = intervalAdd(
                    add,
                    intervalMul(idx, Interval::of(static_cast<int64_t>(
                                         inst.gepScale()))));
            }
            if (base.kind != AbstractValue::Kind::pointer) {
                setSlot(st, inst, AbstractValue::unknownPointer());
                break;
            }
            AbstractValue out = base;
            for (PointerTarget &t : out.targets)
                t.offset = intervalAdd(t.offset, add);
            setSlot(st, inst, out);
            break;
          }
          case Opcode::add:
          case Opcode::sub:
          case Opcode::mul: {
            AbstractValue av = evalValue(inst.operand(0), st);
            AbstractValue bv = evalValue(inst.operand(1), st);
            unsigned bits = inst.type()->intBits();
            if (!av.isInt() || !bv.isInt()) {
                setSlot(st, inst,
                        AbstractValue::ofInterval(intervalOfWidth(bits)));
                break;
            }
            Interval r = inst.op() == Opcode::add
                ? intervalAdd(av.ival, bv.ival)
                : inst.op() == Opcode::sub
                    ? intervalSub(av.ival, bv.ival)
                    : intervalMul(av.ival, bv.ival);
            setSlot(st, inst,
                    AbstractValue::ofInterval(intervalWrap(r, bits)));
            break;
          }
          case Opcode::sdiv:
          case Opcode::udiv:
          case Opcode::srem:
          case Opcode::urem:
          case Opcode::and_:
          case Opcode::or_:
          case Opcode::xor_:
          case Opcode::shl:
          case Opcode::lshr:
          case Opcode::ashr: {
            AbstractValue av = evalValue(inst.operand(0), st);
            AbstractValue bv = evalValue(inst.operand(1), st);
            unsigned bits = inst.type()->intBits();
            uint64_t mask = bits >= 64 ? ~uint64_t{0}
                                       : (uint64_t{1} << bits) - 1;
            int64_t ca = 0, cb = 0;
            bool exact = av.isConstInt(ca) && bv.isConstInt(cb);
            Interval r = intervalOfWidth(bits);
            if (exact) {
                uint64_t ua = static_cast<uint64_t>(ca) & mask;
                uint64_t ub = static_cast<uint64_t>(cb) & mask;
                unsigned sh = static_cast<unsigned>(
                    static_cast<uint64_t>(cb) & (bits - 1));
                bool ok = true;
                int64_t v = 0;
                switch (inst.op()) {
                  case Opcode::sdiv:
                    if (cb == 0)
                        ok = false;
                    else if (ca == INT64_MIN && cb == -1)
                        v = INT64_MIN;
                    else
                        v = ca / cb;
                    break;
                  case Opcode::udiv:
                    if (ub == 0)
                        ok = false;
                    else
                        v = static_cast<int64_t>(ua / ub);
                    break;
                  case Opcode::srem:
                    if (cb == 0)
                        ok = false;
                    else if (ca == INT64_MIN && cb == -1)
                        v = 0;
                    else
                        v = ca % cb;
                    break;
                  case Opcode::urem:
                    if (ub == 0)
                        ok = false;
                    else
                        v = static_cast<int64_t>(ua % ub);
                    break;
                  case Opcode::and_:
                    v = ca & cb;
                    break;
                  case Opcode::or_:
                    v = ca | cb;
                    break;
                  case Opcode::xor_:
                    v = ca ^ cb;
                    break;
                  case Opcode::shl:
                    v = static_cast<int64_t>(ua << sh);
                    break;
                  case Opcode::lshr:
                    v = static_cast<int64_t>(ua >> sh);
                    break;
                  case Opcode::ashr:
                    v = ca >> sh;
                    break;
                  default:
                    ok = false;
                    break;
                }
                if (ok)
                    r = intervalWrap(Interval::of(v), bits);
            } else if (inst.op() == Opcode::and_) {
                // a & m with a non-negative mask is within [0, m].
                if (bv.isConstInt(cb) && cb >= 0)
                    r = Interval::range(0, cb);
                else if (av.isConstInt(ca) && ca >= 0)
                    r = Interval::range(0, ca);
            } else if (inst.op() == Opcode::urem && bv.isConstInt(cb) &&
                       cb > 0 && av.isInt() && av.ival.lo >= 0) {
                r = Interval::range(0, cb - 1);
            } else if (inst.op() == Opcode::sdiv && bv.isConstInt(cb) &&
                       cb > 1 && av.isInt() && av.ival.lo >= 0 &&
                       !av.ival.isTop()) {
                r = Interval::range(av.ival.lo / cb, av.ival.hi / cb);
            }
            setSlot(st, inst, AbstractValue::ofInterval(r));
            break;
          }
          case Opcode::fadd:
          case Opcode::fsub:
          case Opcode::fmul:
          case Opcode::fdiv:
          case Opcode::frem:
          case Opcode::fneg:
            setSlot(st, inst, AbstractValue::anyFloat());
            break;
          case Opcode::icmp: {
            AbstractValue av = evalValue(inst.operand(0), st);
            AbstractValue bv = evalValue(inst.operand(1), st);
            Interval r = Interval::range(0, 1);
            if (av.isInt() && bv.isInt()) {
                unsigned bits = inst.operand(0)->type()->isInteger()
                    ? inst.operand(0)->type()->intBits()
                    : 64;
                r = cmpIntervals(inst.intPred(), av.ival, bv.ival, bits);
            } else if (av.isPointer() || bv.isPointer()) {
                IntPred pred = inst.intPred();
                if (pred == IntPred::eq || pred == IntPred::ne) {
                    bool knownEq = av.isMustNull() && bv.isMustNull();
                    bool knownNe = (av.isMustNull() && mustNonNull(bv)) ||
                        (bv.isMustNull() && mustNonNull(av));
                    if (knownEq)
                        r = Interval::of(pred == IntPred::eq ? 1 : 0);
                    else if (knownNe)
                        r = Interval::of(pred == IntPred::eq ? 0 : 1);
                }
            }
            setSlot(st, inst, AbstractValue::ofInterval(r));
            break;
          }
          case Opcode::fcmp:
            setSlot(st, inst,
                    AbstractValue::ofInterval(Interval::range(0, 1)));
            break;
          case Opcode::trunc: {
            AbstractValue av = evalValue(inst.operand(0), st);
            unsigned bits = inst.type()->intBits();
            setSlot(st, inst,
                    AbstractValue::ofInterval(
                        av.isInt() ? intervalWrap(av.ival, bits)
                                   : intervalOfWidth(bits)));
            break;
          }
          case Opcode::zext: {
            AbstractValue av = evalValue(inst.operand(0), st);
            const Type *srcType = inst.operand(0)->type();
            unsigned srcBits =
                srcType->isInteger() ? srcType->intBits() : 64;
            Interval r = intervalOfWidth(inst.type()->intBits());
            if (av.isInt()) {
                if (av.ival.lo >= 0) {
                    r = av.ival;
                } else if (av.ival.isSingleton() && srcBits < 64) {
                    uint64_t m = (uint64_t{1} << srcBits) - 1;
                    r = Interval::of(static_cast<int64_t>(
                        static_cast<uint64_t>(av.ival.lo) & m));
                } else if (srcBits < 64) {
                    r = Interval::range(0,
                                        static_cast<int64_t>(
                                            (uint64_t{1} << srcBits) - 1));
                }
            }
            setSlot(st, inst, AbstractValue::ofInterval(r));
            break;
          }
          case Opcode::sext: {
            AbstractValue av = evalValue(inst.operand(0), st);
            setSlot(st, inst,
                    av.isInt() ? av
                               : AbstractValue::ofInterval(
                                     intervalOfWidth(
                                         inst.type()->intBits())));
            break;
          }
          case Opcode::fptosi:
          case Opcode::fptoui:
          case Opcode::ptrtoint:
            setSlot(st, inst,
                    AbstractValue::ofInterval(
                        intervalOfWidth(inst.type()->intBits())));
            break;
          case Opcode::sitofp:
          case Opcode::uitofp:
          case Opcode::fpext:
          case Opcode::fptrunc:
            setSlot(st, inst, AbstractValue::anyFloat());
            break;
          case Opcode::inttoptr:
            setSlot(st, inst, AbstractValue::unknownPointer());
            break;
          case Opcode::select: {
            AbstractValue cond = evalValue(inst.operand(0), st);
            int64_t c;
            if (cond.isConstInt(c)) {
                setSlot(st, inst,
                        evalValue(inst.operand(c != 0 ? 1 : 2), st));
            } else {
                setSlot(st, inst,
                        joinValues(evalValue(inst.operand(1), st),
                                   evalValue(inst.operand(2), st)));
            }
            break;
          }
          case Opcode::call: {
            bool stop = false;
            transferCall(inst, st, stop);
            if (stop)
                return;
            break;
          }
          case Opcode::br:
            joinInto(inst.target(0)->index(), st);
            return;
          case Opcode::condbr: {
            AbstractValue cond = evalValue(inst.operand(0), st);
            int64_t c;
            if (cond.isConstInt(c)) {
                joinInto(inst.target(c != 0 ? 0 : 1)->index(), st);
                return;
            }
            for (unsigned edge = 0; edge < 2; edge++) {
                bool truth = edge == 0;
                AbsState branch = st;
                bool polarity = truth;
                const Instruction *cmp =
                    resolveCondChain(inst.operand(0), polarity);
                bool feasible = true;
                if (cmp != nullptr)
                    feasible = applyRefinement(branch, *cmp, polarity);
                if (feasible)
                    joinInto(inst.target(edge)->index(), branch);
            }
            return;
          }
          case Opcode::ret:
            if (collect_ && summaryOut_ != nullptr)
                recordReturn(inst, st);
            return;
          case Opcode::unreachable_:
            return;
          default:
            // Tier-2 pseudo-ops never appear in analyzable IR.
            setSlot(st, inst, AbstractValue::top());
            break;
        }
    }
}

bool
FunctionAnalyzer::run(std::vector<StaticFinding> &findings)
{
    size_t n = cfg_.numBlocks();
    if (n == 0)
        return true;
    blockIn_.assign(n, std::nullopt);
    visits_.assign(n, 0);
    origins_.assign(fn_.numSlots(), Origin{});
    unsigned entry = fn_.entry()->index();
    blockIn_[entry] = entryState();
    worklist_.insert({cfg_.rpoIndex(entry), entry});
    while (!worklist_.empty()) {
        auto it = worklist_.begin();
        unsigned b = it->second;
        worklist_.erase(it);
        if (++visits_[b] > options_.maxBlockVisits) {
            abandoned_ = true;
            break;
        }
        transferBlock(b, *blockIn_[b]);
    }
    collect_ = true;
    out_ = &findings;
    for (unsigned b : cfg_.reversePostOrder()) {
        if (blockIn_[b].has_value())
            transferBlock(b, *blockIn_[b]);
    }
    collect_ = false;
    out_ = nullptr;
    return !abandoned_;
}

// --- Affine return detection ---------------------------------------------

/**
 * Syntactic recognition of `return m*x + k` shapes over one integer
 * argument in straight-line functions. The unoptimized codegen spills
 * every argument to an alloca and splits the body over an
 * unconditional entry -> body chain, so the recognizer concatenates
 * that chain (bailing at any conditional branch) and allows the value
 * chain to pass through one load of an alloca that is stored exactly
 * once — from the argument, before the load — and never otherwise
 * referenced.
 *
 * Records the composed (mul, add) after every chain step as an
 * AffineStep prefix; affineApply() later refuses the chain whenever any
 * prefix's image over the call-site argument interval leaves its wrap
 * width, which keeps the transfer sound under two's-complement wrap.
 */
void
detectAffineReturn(const Function &fn, FunctionSummary &s)
{
    if (s.ret != Ret::interval || fn.blocks().empty())
        return;
    // Straight-line region: follow unconditional branches from the
    // entry. Every reachable block lies on this chain (a conditional
    // branch bails out), so blocks off the chain are dead and the
    // concatenation is the execution order.
    std::vector<const Instruction *> insts;
    const Instruction *term = nullptr;
    const BasicBlock *bb = fn.blocks().front().get();
    for (size_t guard = fn.blocks().size(); bb != nullptr && guard > 0;
         guard--) {
        const BasicBlock *next = nullptr;
        for (const auto &inst : bb->insts()) {
            switch (inst->op()) {
              case Opcode::br:
                next = inst->target(0);
                break;
              case Opcode::ret:
                term = inst.get();
                break;
              case Opcode::condbr:
              case Opcode::unreachable_:
                return;
              default:
                insts.push_back(inst.get());
                break;
            }
        }
        if (term != nullptr)
            break;
        bb = next;
    }
    if (term == nullptr || term->operands().empty())
        return;

    constexpr int64_t kCoefLimit = int64_t{1} << 31;
    struct RawStep
    {
        int64_t mul = 1;
        int64_t add = 0;
        unsigned bits = 64;
    };
    std::vector<RawStep> ops; ///< outermost op first
    const Value *v = term->operand(0);
    int argIndex = -1;
    unsigned argBits = 64;

    while (argIndex < 0) {
        if (v->valueKind() == ValueKind::argument) {
            const auto *a = static_cast<const Argument *>(v);
            if (!a->type()->isInteger())
                return;
            argIndex = static_cast<int>(a->index());
            argBits = a->type()->intBits();
            break;
        }
        const auto *inst = dynamic_cast<const Instruction *>(v);
        if (inst == nullptr)
            return;
        if (inst->op() == Opcode::sext) {
            // Value-preserving widening.
            v = inst->operand(0);
            continue;
        }
        if (inst->op() == Opcode::add || inst->op() == Opcode::sub ||
            inst->op() == Opcode::mul) {
            if (inst->type() == nullptr || !inst->type()->isInteger())
                return;
            const auto *c0 =
                dynamic_cast<const ConstantInt *>(inst->operand(0));
            const auto *c1 =
                dynamic_cast<const ConstantInt *>(inst->operand(1));
            if ((c0 == nullptr) == (c1 == nullptr))
                return; // need exactly one constant side
            int64_t c = c0 != nullptr ? c0->value() : c1->value();
            if (c > kCoefLimit || c < -kCoefLimit)
                return;
            RawStep step;
            step.bits = inst->type()->intBits();
            switch (inst->op()) {
              case Opcode::add:
                step.mul = 1;
                step.add = c;
                break;
              case Opcode::sub:
                if (c1 != nullptr) { // x - c
                    step.mul = 1;
                    step.add = -c;
                } else { // c - x
                    step.mul = -1;
                    step.add = c;
                }
                break;
              default: // mul
                step.mul = c;
                step.add = 0;
                break;
            }
            ops.push_back(step);
            v = c0 != nullptr ? inst->operand(1) : inst->operand(0);
            continue;
        }
        if (inst->op() == Opcode::load) {
            const auto *addr =
                dynamic_cast<const Instruction *>(inst->operand(0));
            if (addr == nullptr || addr->op() != Opcode::alloca_)
                return;
            const Argument *spilled = nullptr;
            size_t storePos = insts.size();
            size_t loadPos = insts.size();
            int stores = 0;
            for (size_t i = 0; i < insts.size(); i++) {
                const Instruction *cur = insts[i];
                if (cur == inst)
                    loadPos = i;
                if (cur == addr)
                    continue;
                bool refs = false;
                for (size_t oi = 0; oi < cur->operands().size(); oi++)
                    if (cur->operand(oi) == addr)
                        refs = true;
                if (!refs)
                    continue;
                if (cur->op() == Opcode::store &&
                    cur->operand(1) == addr &&
                    cur->operand(0) != addr) {
                    stores++;
                    storePos = i;
                    spilled =
                        dynamic_cast<const Argument *>(cur->operand(0));
                } else if (cur->op() == Opcode::load &&
                           cur->operand(0) == addr) {
                    // Reads are harmless.
                } else {
                    return; // the address escapes; value not tracked
                }
            }
            if (stores != 1 || spilled == nullptr ||
                !spilled->type()->isInteger() || storePos > loadPos)
                return;
            argIndex = static_cast<int>(spilled->index());
            argBits = spilled->type()->intBits();
            break;
        }
        return;
    }

    // Compose innermost-first, recording every prefix.
    int64_t mul = 1;
    int64_t add = 0;
    std::vector<AffineStep> prefixes;
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        __int128 nm = static_cast<__int128>(it->mul) * mul;
        __int128 na = static_cast<__int128>(it->mul) * add + it->add;
        if (nm > kCoefLimit || nm < -kCoefLimit || na > kCoefLimit ||
            na < -kCoefLimit)
            return;
        mul = static_cast<int64_t>(nm);
        add = static_cast<int64_t>(na);
        prefixes.push_back({mul, add, it->bits});
    }
    if (prefixes.empty()) // `return x` verbatim
        prefixes.push_back({1, 0, argBits});
    s.hasAffine = true;
    s.affineArg = static_cast<unsigned>(argIndex);
    s.prefixes = std::move(prefixes);
}

} // namespace

AnalysisReport
analyzeModule(const Module &module, const AnalysisOptions &options)
{
    MS_TRACE_SPAN("analysis.module");
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    AnalysisReport report;

    auto analyzable = [&options](const Function &fn) {
        if (fn.isDeclaration() || fn.isIntrinsic())
            return false;
        if (options.userCodeOnly && fn.sourceFile().rfind("libc/", 0) == 0)
            return false;
        return true;
    };

    // Interprocedural scaffolding: the call graph's SCC condensation
    // orders the per-function analyses bottom-up (callees before
    // callers), so a call site always sees its callees' completed
    // summaries. SCCs of equal depth are pairwise unreachable and run
    // in parallel when options.jobs > 1; results are keyed by function
    // id and assembled in module order, so the output is identical for
    // every job count.
    CallGraph graph = CallGraph::build(module);
    SccInfo sccs = condense(graph);
    report.sccCount = static_cast<unsigned>(sccs.sccs.size());

    const bool useSummaries = options.summaries;
    size_t n = graph.size();
    SummaryDb summaries(n);
    std::vector<std::vector<StaticFinding>> fnFindings(n);
    std::vector<uint8_t> fnComplete(n, 1);
    std::vector<uint8_t> fnAnalyzed(n, 0);
    std::vector<uint64_t> fnVisits(n, 0);
    std::vector<unsigned> fnApplied(n, 0);

    auto runScc = [&](const Scc &scc) {
        std::vector<const Function *> members;
        for (unsigned id : scc.members) {
            const Function *fn = graph.node(id).fn;
            if (fn != nullptr && analyzable(*fn))
                members.push_back(fn);
        }
        if (members.empty())
            return;
        if (useSummaries && scc.recursive) {
            // Optimistic bottom: no effects, no returns. Iterate to a
            // widened fixpoint; an unstable SCC degrades to pessimistic
            // so call sites fall back to havocking.
            for (const Function *fn : members) {
                FunctionSummary init;
                init.computed = true;
                init.ret = Ret::none;
                init.neverReturns = true;
                init.params.assign(fn->numArgs(), ParamEffect{});
                summaries[fn->id()] = init;
            }
            bool stable = false;
            for (unsigned round = 0;
                 round < options.summaryDepth && !stable; round++) {
                stable = true;
                for (const Function *fn : members) {
                    FunctionSummary fresh;
                    std::vector<StaticFinding> scratch;
                    FunctionAnalyzer a(module, *fn, options, &graph,
                                       &summaries, &fresh);
                    bool complete = a.run(scratch);
                    fresh.computed = true;
                    if (!complete)
                        fresh = FunctionSummary::makePessimistic(
                            fn->numArgs());
                    if (joinSummaryInto(summaries[fn->id()], fresh,
                                        /*widen=*/round >= 1))
                        stable = false;
                }
            }
            if (!stable) {
                for (const Function *fn : members)
                    summaries[fn->id()] =
                        FunctionSummary::makePessimistic(fn->numArgs());
            }
        }
        // Findings pass over the (now stable) summaries; singletons
        // compute their summary in the same run.
        for (const Function *fn : members) {
            unsigned id = fn->id();
            // Optimistic bottom, like the recursive init: recordReturn
            // raises `ret` from none and clears neverReturns at the
            // first executed `ret` site. (The default-constructed
            // summary starts at Ret::unknown — the lattice top — which
            // recordReturn can never improve.)
            FunctionSummary fresh;
            fresh.ret = Ret::none;
            fresh.neverReturns = true;
            FunctionAnalyzer a(module, *fn, options,
                               useSummaries ? &graph : nullptr,
                               useSummaries ? &summaries : nullptr,
                               useSummaries ? &fresh : nullptr);
            bool complete = a.run(fnFindings[id]);
            fnAnalyzed[id] = 1;
            fnComplete[id] = complete ? 1 : 0;
            fnVisits[id] = a.blockVisitsTotal();
            fnApplied[id] = a.summariesApplied();
            if (useSummaries && !scc.recursive) {
                fresh.computed = true;
                if (!complete) {
                    fresh = FunctionSummary::makePessimistic(fn->numArgs());
                } else {
                    if (fresh.params.size() < fn->numArgs())
                        fresh.params.resize(fn->numArgs());
                    detectAffineReturn(*fn, fresh);
                }
                summaries[id] = std::move(fresh);
            }
        }
    };

    // Schedule by SCC depth: within one level, SCCs are independent.
    std::vector<std::vector<unsigned>> byDepth(sccs.maxDepth + 1);
    for (unsigned i = 0; i < sccs.sccs.size(); i++)
        byDepth[sccs.sccs[i].depth].push_back(i);
    unsigned jobs = std::max(1u, options.jobs);
    std::optional<ThreadPool> pool;
    for (const auto &level : byDepth) {
        if (jobs > 1 && level.size() > 1) {
            if (!pool.has_value())
                pool.emplace(jobs);
            std::vector<std::future<void>> pending;
            for (unsigned si : level)
                pending.push_back(pool->submit(
                    [&runScc, &sccs, si] { runScc(sccs.sccs[si]); }));
            for (std::future<void> &f : pending)
                f.get();
        } else {
            for (unsigned si : level)
                runScc(sccs.sccs[si]);
        }
    }

    // Deterministic assembly in module function order.
    for (const auto &fn : module.functions()) {
        unsigned id = fn->id();
        if (id >= n || !fnAnalyzed[id])
            continue;
        reg.counter("analysis.functions").inc();
        if (fnVisits[id] != 0)
            reg.counter("analysis.fixpoint.block_visits").inc(fnVisits[id]);
        report.incomplete = report.incomplete || !fnComplete[id];
        report.functionsAnalyzed++;
        report.summariesApplied += fnApplied[id];
        for (StaticFinding &f : fnFindings[id])
            report.findings.push_back(std::move(f));
    }
    reg.counter("analysis.callgraph.functions").inc(graph.size());
    reg.counter("analysis.callgraph.sccs").inc(report.sccCount);
    if (report.summariesApplied != 0)
        reg.counter("analysis.summary.applied").inc(report.summariesApplied);

    // Constraint-based refutation: try to prove each bounds/null finding
    // infeasible along every witness path. A proof drops the finding
    // with a certificate; everything else continues to the replayer.
    if (options.solver && !report.findings.empty()) {
        MS_TRACE_SPAN("analysis.solver");
        std::map<std::string, std::unique_ptr<PathRefuter>> refuters;
        std::vector<StaticFinding> kept;
        kept.reserve(report.findings.size());
        for (StaticFinding &f : report.findings) {
            bool eligible = f.kind == ErrorKind::outOfBounds ||
                f.kind == ErrorKind::nullDeref;
            const Function *fn =
                eligible ? module.findFunction(f.function) : nullptr;
            if (fn == nullptr || fn->isDeclaration()) {
                kept.push_back(std::move(f));
                continue;
            }
            std::unique_ptr<PathRefuter> &refuter = refuters[f.function];
            if (refuter == nullptr)
                refuter = std::make_unique<PathRefuter>(module, *fn);
            RefutationCheck check = refuter->check(f);
            report.solverChecked++;
            switch (check.verdict) {
              case RefuteVerdict::provenInfeasible: {
                Refutation ref;
                ref.function = f.function;
                ref.blockIndex = f.blockIndex;
                ref.instIndex = f.instIndex;
                ref.kind = f.kind;
                ref.certificate = check.certificate;
                report.refutations.push_back(std::move(ref));
                reg.counter("analysis.solver.refuted").inc();
                break;
              }
              case RefuteVerdict::feasible:
                reg.counter("analysis.solver.feasible").inc();
                kept.push_back(std::move(f));
                break;
              case RefuteVerdict::unknown:
                report.solverUnknown++;
                reg.counter("analysis.solver.unknown").inc();
                kept.push_back(std::move(f));
                break;
            }
        }
        report.findings = std::move(kept);
        if (report.solverChecked != 0)
            reg.counter("analysis.solver.checked").inc(report.solverChecked);
    }

    auto countFindings = [&reg, &report] {
        uint64_t definite = 0;
        uint64_t maybe = 0;
        for (const StaticFinding &f : report.findings)
            (f.confidence == Confidence::definite ? definite : maybe)++;
        if (definite != 0)
            reg.counter("analysis.findings.definite").inc(definite);
        if (maybe != 0)
            reg.counter("analysis.findings.maybe").inc(maybe);
    };

    if (!options.refute) {
        countFindings();
        return report;
    }

    const Function *main = module.findFunction("main");
    if (main == nullptr || main->isDeclaration()) {
        // Nothing to replay: nothing can stay definite.
        for (StaticFinding &f : report.findings)
            f.confidence = Confidence::maybe;
        countFindings();
        return report;
    }

    MS_TRACE_SPAN("analysis.refute");
    ReplayResult replay = replayModule(module, options);
    report.replayRan = true;
    switch (replay.end) {
      case ReplayEnd::fault:
        report.replayOutcome = "fault";
        break;
      case ReplayEnd::exit:
        report.replayOutcome = "exit";
        break;
      case ReplayEnd::inconclusive:
        report.replayOutcome = replay.reason.empty()
            ? "inconclusive"
            : "inconclusive: " + replay.reason;
        break;
    }

    bool matched = false;
    uint64_t confirmed = 0;
    uint64_t demoted = 0;
    for (StaticFinding &f : report.findings) {
        bool confirms = replay.end == ReplayEnd::fault &&
            replay.fault.has_value() &&
            replay.fault->function == f.function &&
            replay.fault->blockIndex == f.blockIndex &&
            replay.fault->instIndex == f.instIndex &&
            replay.fault->kind == f.kind;
        if (confirms) {
            f.confidence = Confidence::definite;
            f.replayConfirmed = true;
            // Prefer the concrete details the replay established.
            if (replay.fault->offset.has_value())
                f.offset = replay.fault->offset;
            if (replay.fault->objectSize.has_value())
                f.objectSize = replay.fault->objectSize;
            matched = true;
            confirmed++;
        } else {
            if (f.confidence == Confidence::definite)
                demoted++;
            f.confidence = Confidence::maybe;
        }
    }
    if (replay.end == ReplayEnd::fault && replay.fault.has_value() &&
        !matched) {
        report.findings.push_back(*replay.fault);
        reg.counter("analysis.refute.promoted").inc();
    }
    if (confirmed != 0)
        reg.counter("analysis.refute.confirmed").inc(confirmed);
    if (demoted != 0)
        reg.counter("analysis.refute.demoted").inc(demoted);
    countFindings();
    return report;
}

} // namespace sulong
