/**
 * @file
 * Whole-program call graph with Tarjan SCC condensation.
 *
 * The interprocedural layer's scheduling backbone: direct calls are
 * resolved exactly from the IR; indirect calls (through function
 * pointers) conservatively may-call every *address-taken* function whose
 * type is compatible with the call site. Tarjan's algorithm condenses
 * the graph into strongly connected components emitted callee-first
 * (bottom-up), and each SCC is assigned a depth — the longest path from
 * the leaves — so that SCCs at the same depth are pairwise unreachable
 * from one another and can be summarized in parallel.
 */

#ifndef MS_ANALYSIS_CALLGRAPH_H
#define MS_ANALYSIS_CALLGRAPH_H

#include <vector>

#include "ir/module.h"

namespace sulong
{

/** The may-call graph of one Module, nodes indexed by Function::id(). */
class CallGraph
{
  public:
    struct Node
    {
        const Function *fn = nullptr;
        /// Callee function ids, deduplicated, in ascending id order.
        std::vector<unsigned> callees;
        /// True when the function contains an indirect call for which no
        /// type-compatible address-taken candidate exists: the call can
        /// reach code the graph does not model.
        bool hasUnresolvedIndirect = false;
    };

    /** Build the graph over every function definition in @p module. */
    static CallGraph build(const Module &module);

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(unsigned fn_id) const { return nodes_[fn_id]; }
    size_t size() const { return nodes_.size(); }

    /**
     * The functions a call instruction may invoke, in ascending id
     * order. Direct calls yield exactly the callee; indirect calls
     * yield every address-taken definition whose type is compatible
     * with the call site (argument count matching modulo varargs,
     * scalar-kind-compatible parameter and return types). An empty
     * result means the target is entirely unknown.
     */
    std::vector<const Function *> mayCall(const Instruction &call) const;

    /** True when @p fn has its address taken (stored, passed, or named
     *  in a global initializer) and may therefore be an indirect-call
     *  target. */
    bool addressTaken(const Function &fn) const
    {
        return addressTaken_[fn.id()];
    }

  private:
    const Module *module_ = nullptr;
    std::vector<Node> nodes_;
    std::vector<bool> addressTaken_;
};

/** One strongly connected component of the call graph. */
struct Scc
{
    /// Member function ids, ascending.
    std::vector<unsigned> members;
    /// Longest path (in SCC-DAG edges) from a leaf SCC to this one.
    /// All SCCs of equal depth are pairwise unreachable.
    unsigned depth = 0;
    /// True for multi-member SCCs and single functions that call
    /// themselves: their summaries need a fixpoint iteration.
    bool recursive = false;
};

/** The condensation of a CallGraph, SCCs in bottom-up (callee-first)
 *  order as Tarjan emits them. */
struct SccInfo
{
    std::vector<Scc> sccs;
    /// Function id -> index into sccs.
    std::vector<unsigned> sccOf;
    /// Largest depth value present (0 for an empty graph).
    unsigned maxDepth = 0;
};

/** Condense @p graph with Tarjan's algorithm. */
SccInfo condense(const CallGraph &graph);

} // namespace sulong

#endif // MS_ANALYSIS_CALLGRAPH_H
