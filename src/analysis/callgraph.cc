#include "analysis/callgraph.h"

#include <algorithm>

#include "ir/instruction.h"

namespace sulong
{

namespace
{

/** Scalar-kind compatibility for indirect-call candidate matching:
 *  widths are allowed to differ (mini-C promotes freely), but an int
 *  cannot stand in for a pointer or a float. */
bool
kindCompatible(const Type *a, const Type *b)
{
    if (a == nullptr || b == nullptr)
        return true;
    if (a->isVoid() || b->isVoid())
        return true;
    if (a->isInteger() && b->isInteger())
        return true;
    if (a->isFloat() && b->isFloat())
        return true;
    if (a->isPointer() && b->isPointer())
        return true;
    return a == b;
}

/** Can @p fn be the target of @p call, judged by shape alone? */
bool
callCompatible(const Instruction &call, const Function &fn)
{
    size_t args = call.numOperands() == 0 ? 0 : call.numOperands() - 1;
    const Type *fnType = fn.fnType();
    size_t params = fnType->paramTypes().size();
    if (fnType->isVarArg()) {
        if (args < params)
            return false;
    } else if (args != params) {
        return false;
    }
    for (size_t i = 0; i < params; i++) {
        if (!kindCompatible(call.operand(i + 1)->type(),
                            fnType->paramTypes()[i]))
            return false;
    }
    return kindCompatible(call.type(), fnType->returnType());
}

/** Collect every function named by @p init (transitively). */
void
collectInitFunctions(const Initializer &init, std::vector<bool> &taken)
{
    if (init.kind == Initializer::Kind::functionRef &&
        init.function != nullptr)
        taken[init.function->id()] = true;
    for (const Initializer &elem : init.elems)
        collectInitFunctions(elem, taken);
}

} // namespace

CallGraph
CallGraph::build(const Module &module)
{
    CallGraph graph;
    graph.module_ = &module;
    graph.nodes_.resize(module.functions().size());
    graph.addressTaken_.assign(module.functions().size(), false);

    for (const auto &fn : module.functions())
        graph.nodes_[fn->id()].fn = fn.get();

    // Address-taken pass: a function is a potential indirect-call target
    // when it appears as a non-callee operand of any instruction, or in
    // a global initializer.
    for (const auto &global : module.globals())
        collectInitFunctions(global->init(), graph.addressTaken_);
    for (const auto &fn : module.functions()) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                size_t first = inst->op() == Opcode::call ? 1 : 0;
                for (size_t i = first; i < inst->numOperands(); i++) {
                    const auto *target =
                        dynamic_cast<const Function *>(inst->operand(i));
                    if (target != nullptr)
                        graph.addressTaken_[target->id()] = true;
                }
            }
        }
    }

    // Edge pass.
    for (const auto &fn : module.functions()) {
        Node &node = graph.nodes_[fn->id()];
        if (fn->isDeclaration())
            continue;
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() != Opcode::call)
                    continue;
                std::vector<const Function *> targets =
                    graph.mayCall(*inst);
                if (targets.empty() &&
                    dynamic_cast<const Function *>(
                        inst->numOperands() ? inst->operand(0)
                                            : nullptr) == nullptr)
                    node.hasUnresolvedIndirect = true;
                for (const Function *target : targets)
                    node.callees.push_back(target->id());
            }
        }
        std::sort(node.callees.begin(), node.callees.end());
        node.callees.erase(std::unique(node.callees.begin(),
                                       node.callees.end()),
                           node.callees.end());
    }
    return graph;
}

std::vector<const Function *>
CallGraph::mayCall(const Instruction &call) const
{
    std::vector<const Function *> out;
    if (call.numOperands() == 0)
        return out;
    const auto *direct = dynamic_cast<const Function *>(call.operand(0));
    if (direct != nullptr) {
        out.push_back(direct);
        return out;
    }
    // Indirect: every address-taken definition the call could be typed
    // against. Declarations are excluded — a summary cannot be computed
    // for them, and the analyzer havocs unknown targets anyway.
    for (const auto &fn : module_->functions()) {
        if (fn->isDeclaration() || !addressTaken_[fn->id()])
            continue;
        if (callCompatible(call, *fn))
            out.push_back(fn.get());
    }
    return out;
}

SccInfo
condense(const CallGraph &graph)
{
    // Iterative Tarjan. Emission order is callee-first (bottom-up),
    // which is exactly the summary-computation order.
    const size_t n = graph.size();
    SccInfo info;
    info.sccOf.assign(n, 0);

    std::vector<unsigned> index(n, 0), lowlink(n, 0);
    std::vector<bool> visited(n, false), onStack(n, false);
    std::vector<unsigned> stack;
    unsigned counter = 0;

    struct Frame
    {
        unsigned v;
        size_t child;
    };
    std::vector<Frame> work;

    for (unsigned root = 0; root < n; root++) {
        if (visited[root])
            continue;
        work.push_back({root, 0});
        while (!work.empty()) {
            Frame &frame = work.back();
            unsigned v = frame.v;
            if (frame.child == 0) {
                visited[v] = true;
                index[v] = lowlink[v] = counter++;
                stack.push_back(v);
                onStack[v] = true;
            }
            const auto &callees = graph.node(v).callees;
            if (frame.child < callees.size()) {
                unsigned w = callees[frame.child++];
                if (!visited[w])
                    work.push_back({w, 0});
                else if (onStack[w])
                    lowlink[v] = std::min(lowlink[v], index[w]);
                continue;
            }
            if (lowlink[v] == index[v]) {
                Scc scc;
                unsigned w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    info.sccOf[w] =
                        static_cast<unsigned>(info.sccs.size());
                    scc.members.push_back(w);
                } while (w != v);
                std::sort(scc.members.begin(), scc.members.end());
                info.sccs.push_back(std::move(scc));
            }
            work.pop_back();
            if (!work.empty()) {
                Frame &parent = work.back();
                lowlink[parent.v] =
                    std::min(lowlink[parent.v], lowlink[v]);
            }
        }
    }

    // Depth + recursiveness. Tarjan emitted callees before callers, so
    // one forward pass over the emission order sees every callee SCC's
    // depth before it is needed.
    for (unsigned s = 0; s < info.sccs.size(); s++) {
        Scc &scc = info.sccs[s];
        scc.recursive = scc.members.size() > 1;
        for (unsigned member : scc.members) {
            for (unsigned callee : graph.node(member).callees) {
                unsigned calleeScc = info.sccOf[callee];
                if (calleeScc == s) {
                    scc.recursive = true;
                    continue;
                }
                scc.depth = std::max(scc.depth,
                                     info.sccs[calleeScc].depth + 1);
            }
        }
        info.maxDepth = std::max(info.maxDepth, scc.depth);
    }
    return info;
}

} // namespace sulong
