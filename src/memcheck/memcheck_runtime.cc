#include "memcheck/memcheck_runtime.h"

namespace sulong
{

MemcheckRuntime::MemcheckRuntime(MemcheckOptions options)
    : options_(options)
{}

void
MemcheckRuntime::checkAccess(uint64_t addr, unsigned size, bool is_write,
                             const SourceLoc &loc)
{
    // Like real Memcheck, the A-bit map is consulted for every byte of
    // every access; it only ever contains object bounds for the heap
    // (runtime binary instrumentation has no bounds for stack/global
    // data), so only heap accesses can be flagged.
    for (unsigned i = 0; i < size; i++) {
        uint64_t a = addr + i;
        uint8_t raw = abits_.get(a);
        if (a < NativeLayout::heapBase || a >= NativeLayout::heapMax)
            continue;
        ABits bits = static_cast<ABits>(raw);
        if (bits == ABits::allocated)
            continue;
        BugReport rep;
        rep.access = is_write ? AccessKind::write : AccessKind::read;
        rep.storage = StorageKind::heap;
        if (bits == ABits::freed) {
            rep.kind = ErrorKind::useAfterFree;
            rep.detail = "invalid " + std::string(accessKindName(rep.access)) +
                " of size " + std::to_string(size) +
                " inside a block that was free'd, at " + loc.toString();
        } else {
            rep.kind = ErrorKind::outOfBounds;
            rep.direction = BoundsDirection::unknown;
            rep.detail = "invalid " + std::string(accessKindName(rep.access)) +
                " of size " + std::to_string(size) + " at address " +
                std::to_string(a) + " (not within a malloc'd block), at " +
                loc.toString();
        }
        throw MemoryErrorException(std::move(rep));
    }
}

void
MemcheckRuntime::onLoad(NativeMemory &mem, uint64_t addr, unsigned size,
                        const SourceLoc &loc)
{
    (void)mem;
    checkAccess(addr, size, false, loc);
}

void
MemcheckRuntime::onStore(NativeMemory &mem, uint64_t addr, unsigned size,
                         const SourceLoc &loc)
{
    (void)mem;
    checkAccess(addr, size, true, loc);
}

uint64_t
MemcheckRuntime::onMalloc(NativeMemory &mem, uint64_t size)
{
    uint64_t rz = options_.redzone;
    uint64_t base = mem.heapAlloc(size + 2 * rz);
    uint64_t user = base + rz;
    abits_.set(base, rz, static_cast<uint8_t>(ABits::noAccess));
    abits_.set(user, size, static_cast<uint8_t>(ABits::allocated));
    abits_.set(user + size, rz, static_cast<uint8_t>(ABits::noAccess));
    if (options_.trackUninit)
        vbits_.set(user, size, 1); // fresh heap memory is undefined
    live_[user] = size;
    return user;
}

void
MemcheckRuntime::releaseOldest(NativeMemory &mem)
{
    if (quarantine_.empty())
        return;
    auto [user, size] = quarantine_.front();
    quarantine_.pop_front();
    abits_.set(user, size, static_cast<uint8_t>(ABits::noAccess));
    mem.heapFree(user - options_.redzone);
}

void
MemcheckRuntime::onFree(NativeMemory &mem, uint64_t addr,
                        const SourceLoc &loc)
{
    if (addr == 0)
        return;
    auto it = live_.find(addr);
    if (it == live_.end()) {
        bool in_quarantine = false;
        for (const auto &[user, size] : quarantine_) {
            if (user == addr) {
                in_quarantine = true;
                break;
            }
        }
        BugReport rep;
        rep.kind = in_quarantine ? ErrorKind::doubleFree
                                 : ErrorKind::invalidFree;
        rep.access = AccessKind::free;
        rep.storage = addr >= NativeLayout::heapBase &&
                addr < NativeLayout::heapMax
            ? StorageKind::heap
            : (addr >= NativeLayout::stackBase ? StorageKind::stack
                                               : StorageKind::global);
        rep.detail = std::string(in_quarantine
            ? "Invalid free() / double free"
            : "Invalid free() of a non-heap or interior pointer") +
            " at " + loc.toString();
        throw MemoryErrorException(std::move(rep));
    }
    uint64_t size = it->second;
    live_.erase(it);
    abits_.set(addr, size, static_cast<uint8_t>(ABits::freed));
    quarantine_.emplace_back(addr, size);
    while (quarantine_.size() > options_.quarantineBlocks)
        releaseOldest(mem);
}

uint64_t
MemcheckRuntime::onRealloc(NativeMemory &mem, uint64_t addr, uint64_t size)
{
    if (addr == 0)
        return onMalloc(mem, size);
    auto it = live_.find(addr);
    uint64_t old_size = it != live_.end() ? it->second : 0;
    uint64_t fresh = onMalloc(mem, size);
    uint64_t copy = std::min(old_size, size);
    if (copy > 0) {
        std::vector<uint8_t> tmp(copy);
        mem.readBytes(addr, tmp.data(), copy);
        mem.writeBytes(fresh, tmp.data(), copy);
        for (uint64_t i = 0; i < copy; i++)
            vbits_.set(fresh + i, 1, vbits_.get(addr + i));
    }
    onFree(mem, addr, SourceLoc{});
    return fresh;
}

bool
MemcheckRuntime::loadDefined(NativeMemory &mem, uint64_t addr,
                             unsigned size)
{
    (void)mem;
    for (unsigned i = 0; i < size; i++) {
        if (vbits_.get(addr + i) != 0)
            return false;
    }
    return true;
}

void
MemcheckRuntime::storeDefined(NativeMemory &mem, uint64_t addr,
                              unsigned size, bool defined)
{
    (void)mem;
    vbits_.set(addr, size, defined ? 0 : 1);
}

void
MemcheckRuntime::onUndefinedUse(const SourceLoc &loc)
{
    // Valgrind detects magic constants that point towards word-wise
    // strlen/strcmp implementations and disables checks for those code
    // blocks (paper Section 2.3/P4): suppress reports from the
    // optimized string routines only.
    if (loc.file == "libc/string_opt.c")
        return;
    BugReport rep;
    rep.kind = ErrorKind::uninitRead;
    rep.access = AccessKind::read;
    rep.detail = "Conditional jump or move depends on uninitialised "
        "value(s) at " + loc.toString();
    throw MemoryErrorException(std::move(rep));
}

void
MemcheckRuntime::onStackAlloc(NativeMemory &mem, uint64_t addr,
                              uint64_t size)
{
    (void)mem;
    if (options_.trackUninit)
        vbits_.set(addr, size, 1); // fresh stack memory is undefined
}

void
MemcheckRuntime::onFrameExit(NativeMemory &mem, uint64_t lo, uint64_t hi)
{
    (void)mem;
    if (options_.trackUninit && hi > lo)
        vbits_.set(lo, hi - lo, 1);
}

} // namespace sulong
