/**
 * @file
 * The Memcheck/Valgrind-style runtime-instrumentation tool (paper
 * Section 2.2, "dynamic instrumentation").
 *
 * Checks every memory access of every function (including libc — binary
 * instrumentation sees all code), but its addressability tracking (the
 * A-bits) only covers the heap: stack and global accesses that stay
 * inside mapped memory are never flagged, which is why the paper finds
 * that "Valgrind reliably detects only out-of-bounds accesses to the
 * heap". Definedness tracking (the V-bits) gives the unreliable indirect
 * detection of stack out-of-bounds *reads* the paper mentions.
 */

#ifndef MS_MEMCHECK_MEMCHECK_RUNTIME_H
#define MS_MEMCHECK_MEMCHECK_RUNTIME_H

#include <deque>

#include "native/hooks.h"
#include "sanitizer/shadow.h"

namespace sulong
{

struct MemcheckOptions
{
    /// Redzone bytes around heap blocks.
    uint64_t redzone = 16;
    /// Freed blocks held in the free-list before reuse.
    size_t quarantineBlocks = 1024;
    /// Track definedness (V-bits); reports on condition/syscall use.
    bool trackUninit = true;
    /// Report never-freed heap blocks at exit (--leak-check analogue).
    bool detectLeaks = false;
};

class MemcheckRuntime : public NativeHooks
{
  public:
    explicit MemcheckRuntime(MemcheckOptions options = {});

    void
    onRunStart() override
    {
        abits_ = ShadowMap{};
        vbits_ = ShadowMap{};
        live_.clear();
        quarantine_.clear();
    }

    bool checksEveryAccess() const override { return true; }
    void onLoad(NativeMemory &mem, uint64_t addr, unsigned size,
                const SourceLoc &loc) override;
    void onStore(NativeMemory &mem, uint64_t addr, unsigned size,
                 const SourceLoc &loc) override;

    uint64_t onMalloc(NativeMemory &mem, uint64_t size) override;
    void onFree(NativeMemory &mem, uint64_t addr,
                const SourceLoc &loc) override;
    uint64_t onRealloc(NativeMemory &mem, uint64_t addr,
                       uint64_t size) override;

    bool
    reportLeaks(BugReport &report) override
    {
        if (!options_.detectLeaks || live_.empty())
            return false;
        int64_t bytes = 0;
        for (const auto &[user, size] : live_)
            bytes += static_cast<int64_t>(size);
        report.kind = ErrorKind::memoryLeak;
        report.storage = StorageKind::heap;
        report.detail = std::to_string(live_.size()) +
            " heap block(s), " + std::to_string(bytes) +
            " byte(s) definitely lost";
        return true;
    }

    bool tracksDefinedness() const override
    {
        return options_.trackUninit;
    }
    bool loadDefined(NativeMemory &mem, uint64_t addr,
                     unsigned size) override;
    void storeDefined(NativeMemory &mem, uint64_t addr, unsigned size,
                      bool defined) override;
    void onUndefinedUse(const SourceLoc &loc) override;
    void onStackAlloc(NativeMemory &mem, uint64_t addr,
                      uint64_t size) override;
    void onFrameExit(NativeMemory &mem, uint64_t lo, uint64_t hi) override;

  private:
    /// A-bit values for heap addresses.
    enum class ABits : uint8_t
    {
        noAccess = 0,   ///< never allocated / redzone
        allocated = 1,
        freed = 2,
    };

    void checkAccess(uint64_t addr, unsigned size, bool is_write,
                     const SourceLoc &loc);
    void releaseOldest(NativeMemory &mem);

    MemcheckOptions options_;
    ShadowMap abits_;
    /// V-bits: 1 = undefined (default 0 = defined, so globals and the
    /// args region start defined like initialized data).
    ShadowMap vbits_;
    std::map<uint64_t, uint64_t> live_; ///< user addr -> size
    std::deque<std::pair<uint64_t, uint64_t>> quarantine_;
};

} // namespace sulong

#endif // MS_MEMCHECK_MEMCHECK_RUNTIME_H
