#include "tools/bench_json.h"

#include <cstdio>
#include <sstream>

namespace sulong
{

namespace
{

/** Minimal JSON string escape (the fields are ASCII identifiers, but
 *  quoting mistakes in a gate file are not worth the shortcut). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
managedConfigString(const ManagedOptions &options)
{
    std::ostringstream os;
    os << "tier2=" << (options.enableTier2 ? "on" : "off")
       << " threshold=" << options.compileThreshold
       << " inlining=" << (options.enableInlining ? "on" : "off")
       << " inline-budget=" << options.inlineBudget
       << " inline-min=" << options.inlineSiteMin
       << " check-elision=" << (options.enableCheckElision ? "on" : "off");
    return os.str();
}

bool
writeBenchJson(const std::string &path,
               const std::vector<BenchRecord> &records)
{
    std::ostringstream os;
    os.precision(15);
    os << "{\n  \"schema\": \"BENCH_tier2.json/v1\",\n  \"records\": [";
    for (size_t i = 0; i < records.size(); i++) {
        const BenchRecord &r = records[i];
        os << (i ? "," : "") << "\n    {\"bench\": \"" << jsonEscape(r.bench)
           << "\", \"engine\": \"" << jsonEscape(r.engine)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"ns_per_op\": " << r.nsPerOp
           << ", \"steps_per_op\": " << r.stepsPerOp << "}";
    }
    os << "\n  ]\n}\n";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = os.str();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace sulong
