#include "tools/bench_json.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace sulong
{

// Bench/config strings come from user-controlled flags, so escaping
// uses the shared strict escaper (controls + non-ASCII as \u00XX)
// rather than a local identifiers-are-ASCII shortcut.
using obs::jsonEscape;

std::string
managedConfigString(const ManagedOptions &options)
{
    std::ostringstream os;
    os << "tier2=" << (options.enableTier2 ? "on" : "off")
       << " threshold=" << options.compileThreshold
       << " inlining=" << (options.enableInlining ? "on" : "off")
       << " inline-budget=" << options.inlineBudget
       << " inline-min=" << options.inlineSiteMin
       << " check-elision=" << (options.enableCheckElision ? "on" : "off")
       << " tier3=" << (options.enableTier3 ? "on" : "off")
       << " tier3-threshold=" << options.tier3Threshold
       << " fusion=" << (options.enableFusion ? "on" : "off")
       << " tier3-osr=" << (options.tier3Osr ? "on" : "off")
       << " tier3-osr-threshold=" << options.tier3OsrThreshold;
    return os.str();
}

bool
writeBenchJson(const std::string &path,
               const std::vector<BenchRecord> &records)
{
    std::ostringstream os;
    os.precision(15);
    os << "{\n  \"schema\": \"BENCH_tier2.json/v1\",\n  \"records\": [";
    for (size_t i = 0; i < records.size(); i++) {
        const BenchRecord &r = records[i];
        os << (i ? "," : "") << "\n    {\"bench\": \"" << jsonEscape(r.bench)
           << "\", \"engine\": \"" << jsonEscape(r.engine)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"ns_per_op\": " << r.nsPerOp
           << ", \"steps_per_op\": " << r.stepsPerOp << "}";
    }
    os << "\n  ]\n}\n";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = os.str();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size();
    return std::fclose(f) == 0 && ok;
}

bool
writeTier3BenchJson(const std::string &path,
                    const std::vector<Tier3Record> &records)
{
    std::ostringstream os;
    os.precision(15);
    os << "{\n  \"schema\": \"BENCH_tier3.json/v1\",\n  \"records\": [";
    for (size_t i = 0; i < records.size(); i++) {
        const Tier3Record &r = records[i];
        double speedup =
            r.tier3NsPerOp > 0 ? r.tier2NsPerOp / r.tier3NsPerOp : 0;
        os << (i ? "," : "") << "\n    {\"bench\": \"" << jsonEscape(r.bench)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"tier2_ns_per_op\": " << r.tier2NsPerOp
           << ", \"tier3_ns_per_op\": " << r.tier3NsPerOp
           << ", \"speedup\": " << speedup
           << ", \"tier2_steps\": " << r.tier2Steps
           << ", \"tier3_steps\": " << r.tier3Steps
           << ", \"t3_compiles\": " << r.compiles
           << ", \"t3_superblocks\": " << r.superblocks
           << ", \"t3_osr_entries\": " << r.osrEntries
           << ", \"t3_deopt_mega\": " << r.deoptMega
           << ", \"t3_deopt_shape\": " << r.deoptShape
           << ", \"t3_deopt_steps\": " << r.deoptSteps
           << ", \"t3_deopt_bug\": " << r.deoptBug << "}";
    }
    os << "\n  ]\n}\n";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = os.str();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace sulong
