#include "tools/bench_json.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace sulong
{

// Bench/config strings come from user-controlled flags, so escaping
// uses the shared strict escaper (controls + non-ASCII as \u00XX)
// rather than a local identifiers-are-ASCII shortcut.
using obs::jsonEscape;

std::string
managedConfigString(const ManagedOptions &options)
{
    std::ostringstream os;
    os << "tier2=" << (options.enableTier2 ? "on" : "off")
       << " threshold=" << options.compileThreshold
       << " inlining=" << (options.enableInlining ? "on" : "off")
       << " inline-budget=" << options.inlineBudget
       << " inline-min=" << options.inlineSiteMin
       << " check-elision=" << (options.enableCheckElision ? "on" : "off");
    return os.str();
}

bool
writeBenchJson(const std::string &path,
               const std::vector<BenchRecord> &records)
{
    std::ostringstream os;
    os.precision(15);
    os << "{\n  \"schema\": \"BENCH_tier2.json/v1\",\n  \"records\": [";
    for (size_t i = 0; i < records.size(); i++) {
        const BenchRecord &r = records[i];
        os << (i ? "," : "") << "\n    {\"bench\": \"" << jsonEscape(r.bench)
           << "\", \"engine\": \"" << jsonEscape(r.engine)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"ns_per_op\": " << r.nsPerOp
           << ", \"steps_per_op\": " << r.stepsPerOp << "}";
    }
    os << "\n  ]\n}\n";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = os.str();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace sulong
