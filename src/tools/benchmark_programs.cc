#include "tools/benchmark_programs.h"

namespace sulong
{

namespace
{

const char *FANNKUCHREDUX = R"C(
/* fannkuch-redux: count pancake flips over all permutations of n. */
static int perm[16];
static int perm1[16];
static int count[16];

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 7;
    int max_flips = 0;
    int checksum = 0;
    int perm_count = 0;
    for (int i = 0; i < n; i++)
        perm1[i] = i;
    int r = n;
    while (1) {
        while (r != 1) {
            count[r - 1] = r;
            r--;
        }
        for (int i = 0; i < n; i++)
            perm[i] = perm1[i];
        int flips = 0;
        int k = perm[0];
        while (k != 0) {
            int half = (k + 1) / 2;
            for (int i = 0; i < half; i++) {
                int t = perm[i];
                perm[i] = perm[k - i];
                perm[k - i] = t;
            }
            flips++;
            k = perm[0];
        }
        if (flips > max_flips)
            max_flips = flips;
        checksum += (perm_count % 2 == 0) ? flips : -flips;
        perm_count++;
        while (1) {
            if (r == n) {
                printf("%d\nPfannkuchen(%d) = %d\n", checksum, n,
                       max_flips);
                return 0;
            }
            int first = perm1[0];
            for (int i = 0; i < r; i++)
                perm1[i] = perm1[i + 1];
            perm1[r] = first;
            count[r] = count[r] - 1;
            if (count[r] > 0)
                break;
            r++;
        }
    }
})C";

const char *FASTA = R"C(
/* fasta: generate DNA sequences with weighted random selection. */
static unsigned long seed = 42;

static double gen_random(double max) {
    seed = (seed * 3877 + 29573) % 139968;
    return max * (double)seed / 139968.0;
}

struct amino { char c; double p; };

static struct amino iub[15] = {
    {'a', 0.27}, {'c', 0.12}, {'g', 0.12}, {'t', 0.27}, {'B', 0.02},
    {'D', 0.02}, {'H', 0.02}, {'K', 0.02}, {'M', 0.02}, {'N', 0.02},
    {'R', 0.02}, {'S', 0.02}, {'V', 0.02}, {'W', 0.02}, {'Y', 0.02}
};

static struct amino homo[4] = {
    {'a', 0.3029549426680}, {'c', 0.1979883004921},
    {'g', 0.1975473066391}, {'t', 0.3015094502008}
};

static void make_cumulative(struct amino *table, int n) {
    double acc = 0;
    for (int i = 0; i < n; i++) {
        acc += table[i].p;
        table[i].p = acc;
    }
}

static void random_fasta(const char *id, const char *desc,
                         struct amino *table, int n, int count) {
    printf(">%s %s\n", id, desc);
    int col = 0;
    char line[64];
    for (int i = 0; i < count; i++) {
        double r = gen_random(1.0);
        int k = 0;
        while (k < n - 1 && table[k].p < r)
            k++;
        line[col] = table[k].c;
        col++;
        if (col == 60) {
            line[col] = 0;
            puts(line);
            col = 0;
        }
    }
    if (col > 0) {
        line[col] = 0;
        puts(line);
    }
}

static const char *alu =
    "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA"
    "TCACCTGAGGTCAGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACT"
    "AAAAATACAAAAATTAGCCGGGCGTGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAG"
    "GCTGAGGCAGGAGAATCGCTTGAACCCGGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCG"
    "CCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA";

static void repeat_fasta(const char *id, const char *desc, int count) {
    printf(">%s %s\n", id, desc);
    int len = (int)strlen(alu);
    int pos = 0;
    int col = 0;
    char line[64];
    for (int i = 0; i < count; i++) {
        line[col] = alu[pos];
        col++;
        pos++;
        if (pos == len)
            pos = 0;
        if (col == 60) {
            line[col] = 0;
            puts(line);
            col = 0;
        }
    }
    if (col > 0) {
        line[col] = 0;
        puts(line);
    }
}

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 600;
    make_cumulative(iub, 15);
    make_cumulative(homo, 4);
    repeat_fasta("ONE", "Homo sapiens alu", n * 2);
    random_fasta("TWO", "IUB ambiguity codes", iub, 15, n * 3);
    random_fasta("THREE", "Homo sapiens frequency", homo, 4, n * 5);
    return 0;
})C";

const char *FASTAREDUX = R"C(
/* fasta-redux: lookup-table variant. Includes the fix for the rounding
 * bug the paper's authors found (probabilities must end exactly at the
 * table size, or the lookup runs out of bounds). */
static unsigned long seed = 42;
static double gen_random(void) {
    seed = (seed * 3877 + 29573) % 139968;
    return (double)seed / 139968.0;
}

struct amino { char c; double p; };
static struct amino homo[4] = {
    {'a', 0.3029549426680}, {'c', 0.1979883004921},
    {'g', 0.1975473066391}, {'t', 0.3015094502008}
};

enum { LOOKUP_SIZE = 256 };
static char lookup[256];

static void build_lookup(void) {
    double acc = 0;
    int slot = 0;
    for (int i = 0; i < 4; i++) {
        acc += homo[i].p;
        int end;
        if (i == 3)
            end = LOOKUP_SIZE; /* the fix: force the last slot */
        else
            end = (int)(acc * LOOKUP_SIZE);
        while (slot < end) {
            lookup[slot] = homo[i].c;
            slot++;
        }
    }
}

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 3000;
    build_lookup();
    char line[64];
    int col = 0;
    printf(">THREE Homo sapiens frequency\n");
    for (int i = 0; i < n; i++) {
        int idx = (int)(gen_random() * LOOKUP_SIZE);
        line[col] = lookup[idx];
        col++;
        if (col == 60) {
            line[col] = 0;
            puts(line);
            col = 0;
        }
    }
    if (col > 0) {
        line[col] = 0;
        puts(line);
    }
    return 0;
})C";

const char *MANDELBROT = R"C(
/* mandelbrot: render the set and print a byte checksum. */
int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 80;
    int checksum = 0;
    int bit = 0;
    int byte_acc = 0;
    for (int y = 0; y < n; y++) {
        double ci = 2.0 * y / n - 1.0;
        for (int x = 0; x < n; x++) {
            double cr = 2.0 * x / n - 1.5;
            double zr = 0, zi = 0;
            int i = 0;
            int in_set = 1;
            while (i < 50) {
                double zr2 = zr * zr - zi * zi + cr;
                double zi2 = 2.0 * zr * zi + ci;
                zr = zr2;
                zi = zi2;
                if (zr * zr + zi * zi > 4.0) {
                    in_set = 0;
                    break;
                }
                i++;
            }
            byte_acc = byte_acc * 2 + in_set;
            bit++;
            if (bit == 8) {
                checksum = (checksum * 31 + byte_acc) % 1000000007;
                byte_acc = 0;
                bit = 0;
            }
        }
        if (bit != 0) {
            checksum = (checksum * 31 + byte_acc) % 1000000007;
            byte_acc = 0;
            bit = 0;
        }
    }
    printf("mandelbrot(%d) checksum=%d\n", n, checksum);
    return 0;
})C";

const char *METEOR = R"C(
/* meteor (reduced): exact-cover packing of a 5x4 board with five
 * tetromino shapes via recursive backtracking over bitboards — the same
 * algorithmic skeleton as the benchmarks-game pentomino solver. */
enum { W = 5, H = 4, CELLS = 20, NSHAPES = 5, NVAR = 8 };

static unsigned int variants[5][8];
static int variant_count[5];

static void add_variant(int shape, unsigned int mask) {
    /* Translate the mask to every position on the board. */
    (void)shape; (void)mask;
}

static unsigned int place(int cells0, int cells1, int cells2, int cells3) {
    return (1u << cells0) | (1u << cells1) | (1u << cells2) | (1u << cells3);
}

static int solutions = 0;

static void build(void) {
    /* Shape 0: square; 1: line; 2: S; 3: L; 4: T (one orientation each,
     * all translations generated at solve time). */
    variants[0][0] = place(0, 1, W, W + 1);
    variant_count[0] = 1;
    variants[1][0] = place(0, 1, 2, 3);
    variants[1][1] = place(0, W, 2 * W, 3 * W);
    variant_count[1] = 2;
    variants[2][0] = place(1, 2, W, W + 1);
    variants[2][1] = place(0, W, W + 1, 2 * W + 1);
    variant_count[2] = 2;
    variants[3][0] = place(0, W, 2 * W, 2 * W + 1);
    variants[3][1] = place(0, 1, 2, W);
    variant_count[3] = 2;
    variants[4][0] = place(0, 1, 2, W + 1);
    variants[4][1] = place(1, W, W + 1, W + 2);
    variant_count[4] = 2;
}

static int fits(unsigned int board, unsigned int piece) {
    return (board & piece) == 0;
}

static unsigned int shifted(unsigned int mask, int dx, int dy) {
    /* Shift without wrapping across rows: check column extents. */
    unsigned int out = 0;
    for (int c = 0; c < CELLS; c++) {
        if ((mask & (1u << c)) != 0) {
            int x = c % W + dx;
            int y = c / W + dy;
            if (x < 0 || x >= W || y < 0 || y >= H)
                return 0xffffffffu; /* invalid */
            out |= 1u << (y * W + x);
        }
    }
    return out;
}

static void solve(unsigned int board, unsigned int used) {
    if (used == (1u << NSHAPES) - 1) {
        solutions++;
        return;
    }
    /* Find the first free cell; some shape must cover it. */
    int cell = 0;
    while (cell < CELLS && (board & (1u << cell)) != 0)
        cell++;
    if (cell == CELLS)
        return;
    for (int s = 0; s < NSHAPES; s++) {
        if ((used & (1u << s)) != 0)
            continue;
        for (int v = 0; v < variant_count[s]; v++) {
            for (int dy = 0; dy < H; dy++) {
                for (int dx = 0; dx < W; dx++) {
                    unsigned int piece = shifted(variants[s][v], dx, dy);
                    if (piece == 0xffffffffu)
                        continue;
                    if ((piece & (1u << cell)) == 0)
                        continue;
                    if (fits(board, piece))
                        solve(board | piece, used | (1u << s));
                }
            }
        }
    }
}

int main(int argc, char **argv) {
    int iterations = argc > 1 ? atoi(argv[1]) : 1;
    for (int i = 0; i < iterations; i++) {
        solutions = 0;
        build();
        solve(0, 0);
    }
    printf("%d solutions found\n", solutions);
    return 0;
})C";

const char *NBODY = R"C(
/* n-body: Jovian planet simulation. */
enum { N = 5 };
static double x[5], y[5], z[5], vx[5], vy[5], vz[5], mass[5];

static const double PI = 3.141592653589793;
static const double SOLAR_MASS = 4.0 * 3.141592653589793 *
    3.141592653589793;
static const double DAYS = 365.24;

static void setup(void) {
    /* Sun. */
    x[0] = 0; y[0] = 0; z[0] = 0; vx[0] = 0; vy[0] = 0; vz[0] = 0;
    mass[0] = SOLAR_MASS;
    /* Jupiter. */
    x[1] = 4.84143144246472090;
    y[1] = -1.16032004402742839;
    z[1] = -0.103622044471123109;
    vx[1] = 0.00166007664274403694 * DAYS;
    vy[1] = 0.00769901118419740425 * DAYS;
    vz[1] = -0.0000690460016972063023 * DAYS;
    mass[1] = 0.000954791938424326609 * SOLAR_MASS;
    /* Saturn. */
    x[2] = 8.34336671824457987;
    y[2] = 4.12479856412430479;
    z[2] = -0.403523417114321381;
    vx[2] = -0.00276742510726862411 * DAYS;
    vy[2] = 0.00499852801234917238 * DAYS;
    vz[2] = 0.0000230417297573763929 * DAYS;
    mass[2] = 0.000285885980666130812 * SOLAR_MASS;
    /* Uranus. */
    x[3] = 12.8943695621391310;
    y[3] = -15.1111514016986312;
    z[3] = -0.223307578892655734;
    vx[3] = 0.00296460137564761618 * DAYS;
    vy[3] = 0.00237847173959480950 * DAYS;
    vz[3] = -0.0000296589568540237556 * DAYS;
    mass[3] = 0.0000436624404335156298 * SOLAR_MASS;
    /* Neptune. */
    x[4] = 15.3796971148509165;
    y[4] = -25.9193146099879641;
    z[4] = 0.179258772950371181;
    vx[4] = 0.00268067772490389322 * DAYS;
    vy[4] = 0.00162824170038242295 * DAYS;
    vz[4] = -0.0000951592254519715870 * DAYS;
    mass[4] = 0.0000515138902046611451 * SOLAR_MASS;
    /* Offset the sun's momentum. */
    double px = 0, py = 0, pz = 0;
    for (int i = 0; i < N; i++) {
        px += vx[i] * mass[i];
        py += vy[i] * mass[i];
        pz += vz[i] * mass[i];
    }
    vx[0] = -px / SOLAR_MASS;
    vy[0] = -py / SOLAR_MASS;
    vz[0] = -pz / SOLAR_MASS;
}

static double energy(void) {
    double e = 0;
    for (int i = 0; i < N; i++) {
        e += 0.5 * mass[i] *
            (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
        for (int j = i + 1; j < N; j++) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double dz = z[i] - z[j];
            e -= mass[i] * mass[j] / sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return e;
}

static void advance(double dt) {
    for (int i = 0; i < N; i++) {
        for (int j = i + 1; j < N; j++) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double dz = z[i] - z[j];
            double d2 = dx * dx + dy * dy + dz * dz;
            double mag = dt / (d2 * sqrt(d2));
            vx[i] -= dx * mass[j] * mag;
            vy[i] -= dy * mass[j] * mag;
            vz[i] -= dz * mass[j] * mag;
            vx[j] += dx * mass[i] * mag;
            vy[j] += dy * mass[i] * mag;
            vz[j] += dz * mass[i] * mag;
        }
    }
    for (int i = 0; i < N; i++) {
        x[i] += dt * vx[i];
        y[i] += dt * vy[i];
        z[i] += dt * vz[i];
    }
}

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 20000;
    setup();
    printf("%.9f\n", energy());
    for (int i = 0; i < n; i++)
        advance(0.01);
    printf("%.9f\n", energy());
    return 0;
})C";

const char *SPECTRALNORM = R"C(
/* spectral-norm: power iteration on the infinite matrix A. */
static double eval_a(int i, int j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}

static void mul_av(const double *v, double *out, int n) {
    for (int i = 0; i < n; i++) {
        double acc = 0;
        for (int j = 0; j < n; j++)
            acc += eval_a(i, j) * v[j];
        out[i] = acc;
    }
}

static void mul_atv(const double *v, double *out, int n) {
    for (int i = 0; i < n; i++) {
        double acc = 0;
        for (int j = 0; j < n; j++)
            acc += eval_a(j, i) * v[j];
        out[i] = acc;
    }
}

static void mul_atav(const double *v, double *out, double *tmp, int n) {
    mul_av(v, tmp, n);
    mul_atv(tmp, out, n);
}

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 60;
    double *u = malloc(sizeof(double) * n);
    double *v = malloc(sizeof(double) * n);
    double *tmp = malloc(sizeof(double) * n);
    for (int i = 0; i < n; i++)
        u[i] = 1.0;
    for (int i = 0; i < 10; i++) {
        mul_atav(u, v, tmp, n);
        mul_atav(v, u, tmp, n);
    }
    double vbv = 0, vv = 0;
    for (int i = 0; i < n; i++) {
        vbv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    printf("%.9f\n", sqrt(vbv / vv));
    free(u);
    free(v);
    free(tmp);
    return 0;
})C";

const char *BINARYTREES = R"C(
/* binary-trees: allocation-heavy tree build/check/free. */
struct tree { struct tree *left; struct tree *right; };

static struct tree *bottom_up(int depth) {
    struct tree *node = malloc(sizeof(struct tree));
    if (depth > 0) {
        node->left = bottom_up(depth - 1);
        node->right = bottom_up(depth - 1);
    } else {
        node->left = 0;
        node->right = 0;
    }
    return node;
}

static int check(struct tree *node) {
    if (node->left == 0)
        return 1;
    return 1 + check(node->left) + check(node->right);
}

static void destroy(struct tree *node) {
    if (node->left != 0) {
        destroy(node->left);
        destroy(node->right);
    }
    free(node);
}

int main(int argc, char **argv) {
    int max_depth = argc > 1 ? atoi(argv[1]) : 10;
    int min_depth = 4;
    int stretch = max_depth + 1;
    struct tree *t = bottom_up(stretch);
    printf("stretch tree of depth %d\t check: %d\n", stretch, check(t));
    destroy(t);
    struct tree *long_lived = bottom_up(max_depth);
    for (int depth = min_depth; depth <= max_depth; depth += 2) {
        int iterations = 1 << (max_depth - depth + min_depth);
        int total = 0;
        for (int i = 0; i < iterations; i++) {
            struct tree *tmp = bottom_up(depth);
            total += check(tmp);
            destroy(tmp);
        }
        printf("%d\t trees of depth %d\t check: %d\n", iterations, depth,
               total);
    }
    printf("long lived tree of depth %d\t check: %d\n", max_depth,
           check(long_lived));
    destroy(long_lived);
    return 0;
})C";

const char *WHETSTONE = R"C(
/* whetstone: the classic synthetic mix of floating-point modules. */
static double e1[4];
static double t = 0.499975;
static double t1 = 0.50025;
static double t2 = 2.0;

static void pa(double *e) {
    for (int j = 0; j < 6; j++) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    }
}

static void p3(double px, double py, double *z) {
    double x1 = t * (px + py);
    double y1 = t * (x1 + py);
    *z = (x1 + y1) / t2;
}

int main(int argc, char **argv) {
    int loop = argc > 1 ? atoi(argv[1]) : 50;
    double x1 = 1.0, x2 = -1.0, x3 = -1.0, x4 = -1.0;
    double x = 0, y = 0, z = 0;

    /* Module 1: simple identifiers. */
    for (int i = 0; i < 10 * loop; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }
    /* Module 2: array elements. */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (int i = 0; i < 12 * loop; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
    /* Module 3: procedure calls with an array parameter. */
    for (int i = 0; i < 14 * loop; i++)
        pa(e1);
    /* Module 4: trig functions. */
    x = 0.5;
    y = 0.5;
    for (int i = 1; i <= 2 * loop; i++) {
        x = t * atan(t2 * sin(x) * cos(x) /
                     (cos(x + y) + cos(x - y) - 1.0));
        y = t * atan(t2 * sin(y) * cos(y) /
                     (cos(x + y) + cos(x - y) - 1.0));
    }
    /* Module 5: procedure calls with scalars. */
    x = 1.0;
    y = 1.0;
    z = 1.0;
    for (int i = 0; i < 12 * loop; i++)
        p3(x, y, &z);
    /* Module 6: standard functions. */
    x = 0.75;
    for (int i = 0; i < 10 * loop; i++)
        x = sqrt(exp(log(x) / t1));
    printf("%.6f %.6f %.6f %.6f\n", x1, e1[0], y, x);
    printf("%.6f %.6f\n", z, t);
    return 0;
})C";

const char *CALLTOWER = R"C(
/* calltower: towers of tiny function calls — the call-dispatch stress
   workload behind the tier-2 inlining and call-inline-cache numbers. */
static int leaf_inc(int x) { return x + 1; }
static int leaf_mix(int x) { return (x ^ 29) - (x >> 3); }
static int step_a(int x) { return leaf_inc(x) + leaf_mix(x); }
static int step_b(int x) { return leaf_mix(leaf_inc(x)) - leaf_inc(x >> 1); }
static int tower(int x) { return step_a(step_b(x)) + step_b(step_a(x)); }

static unsigned int chunk(unsigned int acc, int base) {
    for (int i = 0; i < 500; i++)
        acc = acc * 31 + (unsigned int)tower((base + i) & 0xffff);
    return acc;
}

int main(int argc, char **argv) {
    int n = argc > 1 ? atoi(argv[1]) : 60000;
    unsigned int acc = 1;
    for (int base = 0; base < n; base += 500)
        acc = chunk(acc, base);
    printf("calltower(%d) = %u\n", n, acc);
    return 0;
})C";

const char *POINTERCHASE = R"C(
/* pointerchase: repeated traversal of a linked structure with field
   loads and stores on every node — the aggregate-walk workload behind
   the tier-2 redundant-check-elision numbers. */
struct node {
    int value;
    int visits;
    struct node *next;
};

static long traverse(struct node *head) {
    long sum = 0;
    for (struct node *p = head; p; p = p->next) {
        p->visits = p->visits + 1;
        sum += p->value + (p->visits & 1);
    }
    return sum;
}

int main(int argc, char **argv) {
    int rounds = argc > 1 ? atoi(argv[1]) : 300;
    struct node *head = 0;
    for (int i = 0; i < 512; i++) {
        struct node *n = malloc(sizeof(struct node));
        n->value = i & 63;
        n->visits = 0;
        n->next = head;
        head = n;
    }
    long sum = 0;
    for (int round = 0; round < rounds; round++)
        sum += traverse(head);
    printf("pointerchase(%d) = %ld\n", rounds, sum);
    while (head) {
        struct node *next = head->next;
        free(head);
        head = next;
    }
    return 0;
})C";

} // namespace

const std::vector<BenchmarkProgram> &
benchmarkPrograms()
{
    static const std::vector<BenchmarkProgram> programs = [] {
        std::vector<BenchmarkProgram> out;
        out.push_back({"fannkuchredux", FANNKUCHREDUX, {"7"}, false});
        out.push_back({"fasta", FASTA, {"600"}, false});
        out.push_back({"fastaredux", FASTAREDUX, {"3000"}, false});
        out.push_back({"mandelbrot", MANDELBROT, {"80"}, false});
        out.push_back({"meteor", METEOR, {"3"}, false});
        out.push_back({"nbody", NBODY, {"20000"}, false});
        out.push_back({"spectralnorm", SPECTRALNORM, {"60"}, false});
        out.push_back({"whetstone", WHETSTONE, {"50"}, false});
        out.push_back({"binarytrees", BINARYTREES, {"10"}, true});
        // Tier-2 perf-gate workloads (not in the paper's Fig. 16):
        // call-heavy and pointer-chasing kernels whose speedup the CI
        // bench gate tracks across optimizing-tier configurations.
        out.push_back({"calltower", CALLTOWER, {"60000"}, false});
        out.push_back({"pointerchase", POINTERCHASE, {"300"}, false});
        return out;
    }();
    return programs;
}

const BenchmarkProgram *
findBenchmark(const std::string &name)
{
    for (const auto &program : benchmarkPrograms()) {
        if (program.name == name)
            return &program;
    }
    return nullptr;
}

} // namespace sulong
