#include "tools/compile_cache.h"

#include "frontend/compiler.h"
#include "ir/clone.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/passes.h"
#include "sanitizer/asan_pass.h"

namespace sulong
{

uint64_t
CompileCache::hashSources(const std::vector<SourceFile> &sources)
{
    uint64_t hash = 1469598103934665603ull; // FNV offset basis
    auto mix = [&hash](const std::string &text) {
        for (unsigned char c : text) {
            hash ^= c;
            hash *= 1099511628211ull; // FNV prime
        }
        hash ^= 0xff; // separator so ("ab","c") != ("a","bc")
        hash *= 1099511628211ull;
    };
    for (const SourceFile &src : sources) {
        mix(src.name);
        mix(src.text);
    }
    return hash;
}

std::shared_ptr<const CompileCache::Entry>
CompileCache::getOrCompile(const std::vector<SourceFile> &user_sources,
                           LibcVariant variant, int opt_level,
                           bool instrumented)
{
    Key key{hashSources(user_sources), variant, opt_level, instrumented};

    std::shared_ptr<Slot> slot;
    bool created = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = slots_.find(key);
        if (it == slots_.end()) {
            it = slots_.emplace(key, std::make_shared<Slot>()).first;
            lru_.push_front(key);
            it->second->lruPos = lru_.begin();
            created = true;
            enforceCapacityLocked();
        } else {
            lru_.splice(lru_.begin(), lru_, it->second->lruPos);
        }
        slot = it->second;
        // A hit may still have to wait for the compiling thread below,
        // but it never repeats the work.
        (created ? stats_.misses : stats_.hits)++;
    }
    obs::MetricsRegistry::global()
        .counter(created ? "compile_cache.misses" : "compile_cache.hits")
        .inc();

    std::call_once(slot->once, [&]() {
        MS_TRACE_SPAN("compile_cache.compile");
        auto entry = std::make_shared<Entry>();
        if (instrumented) {
            // Copy-on-instrument: the pass runs on a private clone of the
            // plain stage, never on a module other keys hand out.
            auto base = getOrCompile(user_sources, variant, opt_level,
                                     /*instrumented=*/false);
            if (!base->ok()) {
                entry->errors = base->errors;
            } else {
                std::unique_ptr<Module> module = cloneModule(*base->prototype);
                runAsanPass(*module);
                entry->prototype = std::move(module);
            }
            slot->entry = std::move(entry);
            return;
        }

        std::vector<SourceFile> sources = libcSources(variant);
        for (const SourceFile &src : user_sources)
            sources.push_back(src);

        CompileResult compiled = compileC(sources);
        if (!compiled.ok()) {
            entry->errors = compiled.errors;
        } else {
            if (opt_level >= 3)
                runO3Pipeline(*compiled.module);
            else if (opt_level >= 0)
                runO0Pipeline(*compiled.module);
            entry->prototype = std::move(compiled.module);
        }
        slot->entry = std::move(entry);
    });
    return slot->entry;
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    lru_.clear();
}

void
CompileCache::setCapacity(size_t max_entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = max_entries;
    enforceCapacityLocked();
}

void
CompileCache::enforceCapacityLocked()
{
    if (capacity_ == 0)
        return;
    uint64_t evicted = 0;
    while (slots_.size() > capacity_ && !lru_.empty()) {
        // A thread still compiling into the evicted slot keeps it alive
        // through its own shared_ptr; we only drop the cache's ref.
        slots_.erase(lru_.back());
        lru_.pop_back();
        stats_.evictions++;
        evicted++;
    }
    if (evicted != 0)
        obs::MetricsRegistry::global()
            .counter("compile_cache.evictions")
            .inc(evicted);
}

} // namespace sulong
