/**
 * @file
 * Parallel batch evaluation of (program, tool) jobs.
 *
 * The paper's evaluation (Sections 4-5) is an embarrassingly parallel
 * matrix: hundreds of corpus programs times the tool configurations.
 * runBatch() prepares and executes every job on an isolated per-job
 * engine instance over a fixed worker pool, sharing front-end work
 * through a CompileCache, and returns results ordered by job index —
 * never by completion order — so a parallel detection matrix is
 * bit-identical to a serial one.
 *
 * Every job runs guarded: engines execute under the job's
 * ResourceLimits, a watchdog cancels attempts that overrun their
 * wall-clock budget, host-side exceptions become per-job
 * TerminationKind::hostFault results (optionally retried with backoff),
 * and a fail-fast mode drains the rest of the batch after the first
 * harness-level failure. One misbehaving cell can slow the batch down;
 * it can no longer wedge, OOM, or tear it down.
 *
 * This is the seam later scaling work (sharding, async clients,
 * multi-backend dispatch) plugs into: anything that can phrase itself as
 * a list of BatchJobs inherits the parallelism and the cache.
 */

#ifndef MS_TOOLS_BATCH_RUNNER_H
#define MS_TOOLS_BATCH_RUNNER_H

#include <atomic>
#include <memory>

#include "analysis/analyzer.h"
#include "tools/compile_cache.h"
#include "tools/driver.h"

namespace sulong
{

class FaultInjector;

namespace obs
{
class FlightRecorder;
}

/** One evaluation cell: a program under one tool configuration. */
struct BatchJob
{
    std::vector<SourceFile> sources;
    ToolConfig config;
    std::vector<std::string> args;
    std::string stdinData;
    /// Per-run resource budget for this job's engine; the default keeps
    /// only the step and call-depth protections.
    ResourceLimits limits;

    static BatchJob
    make(const std::string &user_source, const ToolConfig &config,
         const std::vector<std::string> &args = {},
         const std::string &stdin_data = "")
    {
        BatchJob job;
        job.sources = {SourceFile{"<input>", user_source}};
        job.config = config;
        job.args = args;
        job.stdinData = stdin_data;
        return job;
    }
};

struct BatchOptions
{
    /// Worker threads; 1 runs inline on the caller, 0 means one per
    /// hardware thread.
    unsigned jobs = 1;
    /// Share front-end/optimizer stages across jobs (identical results;
    /// see CompileCache).
    bool useCompileCache = true;
    /// Reuse an external cache across batches; null and useCompileCache
    /// means a cache private to this batch.
    CompileCache *cache = nullptr;
    /// Wall-clock execution budget per job attempt in milliseconds
    /// (compilation excluded — cancellation is polled on the guest step
    /// path); a job still executing past it is cancelled through its
    /// token and reports TerminationKind::cancelled. 0 disables the
    /// watchdog thread.
    unsigned watchdogMs = 0;
    /// Re-run a job up to this many extra times when it ends in a
    /// TerminationKind::hostFault (a harness-side exception, possibly
    /// transient). Guest bugs and resource terminations never retry.
    unsigned retries = 0;
    /// Linear backoff between retry attempts (attempt n sleeps n times
    /// this long).
    unsigned retryBackoffMs = 5;
    /// Drain the batch after the first harness-level failure (hostFault
    /// termination or ErrorKind::engineError): queued jobs are not
    /// started and report TerminationKind::cancelled, in-flight jobs are
    /// cancelled through their tokens. Trades the report's completeness
    /// (and cross-worker-count determinism) for latency.
    bool failFast = false;
    /// Chaos-testing hook: when set, every job attempt reports the site
    /// "batch.job/<index>" before preparing, letting tests inject host
    /// faults and delays into chosen jobs.
    FaultInjector *faults = nullptr;
    /// When set, every job's compiled module is also statically analyzed
    /// (before execution, on the job's worker) with these options; the
    /// job's args/stdin become the refutation replay inputs, and the
    /// findings land in the job's JobStats.
    const AnalysisOptions *analysis = nullptr;
};

struct BatchReport
{
    /// Per-job accounting, parallel to results.
    struct JobStats
    {
        /// Wall-clock total over all attempts, in milliseconds.
        double elapsedMs = 0;
        /// Attempts actually run; 0 means the job was drained before
        /// it ever started.
        unsigned attempts = 0;
        TerminationKind termination = TerminationKind::normal;
        /// Static findings for this job's module (populated only when
        /// BatchOptions::analysis is set).
        std::vector<StaticFinding> staticFindings;
        unsigned staticDefinite = 0;
        unsigned staticMaybe = 0;
    };

    /// results[i] belongs to jobs[i], whatever order workers finished in.
    std::vector<ExecutionResult> results;
    /// jobStats[i] describes how results[i] was obtained.
    std::vector<JobStats> jobStats;
    CompileCacheStats cacheStats;
    unsigned workersUsed = 0;
    /// Jobs whose final outcome was a host fault (after retries).
    unsigned hostFaults = 0;
    /// Extra attempts spent across all jobs.
    unsigned retriesUsed = 0;
    /// Jobs never started because a fail-fast drain was triggered.
    unsigned drainedJobs = 0;
};

/** Run every job and collect results deterministically by job index. */
BatchReport runBatch(const std::vector<BatchJob> &jobs,
                     const BatchOptions &options = {});

/**
 * Tracks the cancellation token of every job attempt in flight. With a
 * non-zero timeout a timer thread cancels attempts past their
 * wall-clock budget; cancelAll() serves fail-fast and service drains
 * even when no timeout is set. Shared by runBatch and the analysis
 * daemon (src/service/), which watches every request's execution with
 * one of these.
 */
class JobWatchdog
{
  public:
    explicit JobWatchdog(unsigned timeout_ms);
    ~JobWatchdog();

    JobWatchdog(const JobWatchdog &) = delete;
    JobWatchdog &operator=(const JobWatchdog &) = delete;

    /** Start the budget clock for attempt @p id. */
    void watch(size_t id, CancellationToken token);
    void release(size_t id);

    /**
     * Cancel every attempt currently in flight. With @p sticky, also
     * cancel every attempt registered from now on — the service drain
     * uses this so a job that was still compiling when the drain began
     * is cancelled the moment it reaches its execution phase.
     */
    void cancelAll(bool sticky = false);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The per-job slice of BatchOptions: how one guarded attempt sequence
 * behaves. runBatch derives one from its BatchOptions; the daemon
 * builds one per request.
 */
struct GuardedJobOptions
{
    /// Extra attempts after a TerminationKind::hostFault outcome.
    unsigned retries = 0;
    /// Linear backoff between retry attempts.
    unsigned retryBackoffMs = 5;
    /// Chaos hook: each attempt reports "<faultSitePrefix><index>"
    /// before preparing ("batch.job/3", "service.job/17").
    FaultInjector *faults = nullptr;
    const char *faultSitePrefix = "batch.job/";
    /// Static analysis alongside execution (findings land in JobStats).
    const AnalysisOptions *analysis = nullptr;
    /// When set, the attempt sequence narrates itself into this ring
    /// (attempt starts, compile/analysis milestones, host faults,
    /// retries, the final termination) so the owner can dump a
    /// postmortem if the job dies. Strictly out-of-band.
    obs::FlightRecorder *recorder = nullptr;
};

/**
 * Run one job fully isolated: any exception that escapes preparation or
 * execution becomes a hostFault result (and may be retried). When
 * @p drain is set, a job that has not started reports cancelled without
 * running, and a job between retry attempts stops retrying and keeps
 * the termination of its last real attempt — the drain never erases
 * what actually happened to the job.
 */
ExecutionResult runGuardedJob(const BatchJob &job, size_t index,
                              CompileCache *cache,
                              const GuardedJobOptions &options,
                              const std::atomic<bool> &drain,
                              JobWatchdog &watchdog,
                              BatchReport::JobStats &stats);

} // namespace sulong

#endif // MS_TOOLS_BATCH_RUNNER_H
