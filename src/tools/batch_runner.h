/**
 * @file
 * Parallel batch evaluation of (program, tool) jobs.
 *
 * The paper's evaluation (Sections 4-5) is an embarrassingly parallel
 * matrix: hundreds of corpus programs times the tool configurations.
 * runBatch() prepares and executes every job on an isolated per-job
 * engine instance over a fixed worker pool, sharing front-end work
 * through a CompileCache, and returns results ordered by job index —
 * never by completion order — so a parallel detection matrix is
 * bit-identical to a serial one.
 *
 * This is the seam later scaling work (sharding, async clients,
 * multi-backend dispatch) plugs into: anything that can phrase itself as
 * a list of BatchJobs inherits the parallelism and the cache.
 */

#ifndef MS_TOOLS_BATCH_RUNNER_H
#define MS_TOOLS_BATCH_RUNNER_H

#include "tools/compile_cache.h"
#include "tools/driver.h"

namespace sulong
{

/** One evaluation cell: a program under one tool configuration. */
struct BatchJob
{
    std::vector<SourceFile> sources;
    ToolConfig config;
    std::vector<std::string> args;
    std::string stdinData;

    static BatchJob
    make(const std::string &user_source, const ToolConfig &config,
         const std::vector<std::string> &args = {},
         const std::string &stdin_data = "")
    {
        BatchJob job;
        job.sources = {SourceFile{"<input>", user_source}};
        job.config = config;
        job.args = args;
        job.stdinData = stdin_data;
        return job;
    }
};

struct BatchOptions
{
    /// Worker threads; 1 runs inline on the caller, 0 means one per
    /// hardware thread.
    unsigned jobs = 1;
    /// Share front-end/optimizer stages across jobs (identical results;
    /// see CompileCache).
    bool useCompileCache = true;
    /// Reuse an external cache across batches; null and useCompileCache
    /// means a cache private to this batch.
    CompileCache *cache = nullptr;
};

struct BatchReport
{
    /// results[i] belongs to jobs[i], whatever order workers finished in.
    std::vector<ExecutionResult> results;
    CompileCacheStats cacheStats;
    unsigned workersUsed = 0;
};

/** Run every job and collect results deterministically by job index. */
BatchReport runBatch(const std::vector<BatchJob> &jobs,
                     const BatchOptions &options = {});

} // namespace sulong

#endif // MS_TOOLS_BATCH_RUNNER_H
