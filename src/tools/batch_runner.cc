#include "tools/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"
#include "support/thread_pool.h"

namespace sulong
{

/**
 * Timer state behind JobWatchdog. When constructed with a non-zero
 * timeout it runs a timer thread that cancels attempts past their
 * wall-clock budget; cancelAll() serves the fail-fast/service drains
 * even when no timeout is set.
 */
struct JobWatchdog::Impl
{
    explicit Impl(unsigned timeout_ms) : timeoutMs(timeout_ms)
    {
        if (timeoutMs > 0)
            timer = std::thread([this] { loop(); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = true;
        }
        cv.notify_all();
        if (timer.joinable())
            timer.join();
    }

    void
    watch(size_t id, CancellationToken token)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (cancelNew)
            token.cancel();
        entries[id] = Entry{
            std::move(token),
            std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeoutMs),
        };
    }

    void
    release(size_t id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        entries.erase(id);
    }

    void
    cancelAll(bool sticky)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (sticky)
            cancelNew = true;
        for (auto &[id, entry] : entries)
            entry.token.cancel();
    }

    struct Entry
    {
        CancellationToken token;
        std::chrono::steady_clock::time_point deadline;
        /// The poll loop re-cancels an overrun entry every tick; count
        /// (and trace) only the first fire per attempt.
        bool fired = false;
    };

    void
    loop()
    {
        // Poll a few times per budget so cancellation lands close to the
        // deadline without a wakeup per entry.
        unsigned poll_ms =
            std::max(1u, std::min(timeoutMs / 4, 20u));
        std::unique_lock<std::mutex> lock(mutex);
        while (!stop) {
            auto now = std::chrono::steady_clock::now();
            for (auto &[id, entry] : entries) {
                if (now >= entry.deadline) {
                    entry.token.cancel();
                    if (!entry.fired) {
                        entry.fired = true;
                        obs::MetricsRegistry::global()
                            .counter("batch.watchdog.fires")
                            .inc();
                        obs::traceInstant("batch.watchdog.fire",
                                          "job " + std::to_string(id));
                    }
                }
            }
            cv.wait_for(lock, std::chrono::milliseconds(poll_ms),
                        [this] { return stop; });
        }
    }

    unsigned timeoutMs;
    std::mutex mutex;
    std::condition_variable cv;
    std::map<size_t, Entry> entries;
    bool stop = false;
    /// Sticky cancel: tokens registered after a cancelAll(sticky) are
    /// cancelled on arrival (service drain).
    bool cancelNew = false;
    std::thread timer;
};

JobWatchdog::JobWatchdog(unsigned timeout_ms)
    : impl_(std::make_unique<Impl>(timeout_ms))
{}

JobWatchdog::~JobWatchdog() = default;

void
JobWatchdog::watch(size_t id, CancellationToken token)
{
    impl_->watch(id, std::move(token));
}

void
JobWatchdog::release(size_t id)
{
    impl_->release(id);
}

void
JobWatchdog::cancelAll(bool sticky)
{
    impl_->cancelAll(sticky);
}

namespace
{

/** Would this job's outcome trigger a fail-fast drain? Guest bugs are
 *  the harness working as intended; only harness-level failures count. */
bool
isHarnessFailure(const ExecutionResult &result)
{
    return result.termination == TerminationKind::hostFault ||
        result.bug.kind == ErrorKind::engineError;
}

} // namespace

ExecutionResult
runGuardedJob(const BatchJob &job, size_t index, CompileCache *cache,
              const GuardedJobOptions &options,
              const std::atomic<bool> &drain, JobWatchdog &watchdog,
              BatchReport::JobStats &stats)
{
    MS_TRACE_SPAN("batch.job", "job " + std::to_string(index));
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("batch.jobs").inc();
    obs::FlightRecorder *rec = options.recorder;
    auto note = [rec](const char *name, std::string detail = "") {
        if (rec != nullptr)
            rec->note(name, std::move(detail));
    };
    auto start = std::chrono::steady_clock::now();
    ExecutionResult result;
    for (;;) {
        if (drain.load(std::memory_order_relaxed) && stats.attempts == 0) {
            result.termination = TerminationKind::cancelled;
            result.terminationDetail =
                "batch drained before the job started (fail-fast)";
            note("job.drained");
            break;
        }
        stats.attempts++;
        note("job.attempt", "attempt " + std::to_string(stats.attempts));
        CancellationToken token;
        try {
            if (options.faults != nullptr)
                options.faults->at(options.faultSitePrefix +
                                   std::to_string(index));
            PreparedProgram prepared =
                prepareProgram(job.sources, job.config, cache);
            note("job.compile",
                 prepared.ok() ? "ok" : prepared.compileErrors);
            if (prepared.ok() && options.analysis != nullptr) {
                // Analyzed before execution so findings survive even a
                // cancelled run; the analyzer replays this job's inputs.
                AnalysisOptions analysis_options = *options.analysis;
                analysis_options.replayArgs = job.args;
                analysis_options.replayStdin = job.stdinData;
                AnalysisReport analysis =
                    analyzeModule(*prepared.module, analysis_options);
                stats.staticDefinite = analysis.definiteCount();
                stats.staticMaybe = analysis.maybeCount();
                stats.staticFindings = std::move(analysis.findings);
                note("job.analysis",
                     std::to_string(stats.staticDefinite) + " definite, " +
                         std::to_string(stats.staticMaybe) + " maybe");
            }
            if (prepared.ok()) {
                prepared.engine->limits() = job.limits;
                prepared.engine->setCancellationToken(token);
                // Watch execution only: cancellation is polled on the
                // guest step path, and a budget that included compile
                // time would cancel healthy jobs on a slow host.
                watchdog.watch(index, token);
                note("job.execute");
            }
            result = prepared.run(job.args, job.stdinData);
        } catch (const std::exception &e) {
            result = ExecutionResult{};
            result.termination = TerminationKind::hostFault;
            result.terminationDetail =
                std::string("batch job threw: ") + e.what();
            note("job.host_fault", e.what());
        } catch (...) {
            result = ExecutionResult{};
            result.termination = TerminationKind::hostFault;
            result.terminationDetail =
                "batch job threw a non-standard exception";
            note("job.host_fault", "non-standard exception");
        }
        watchdog.release(index);
        if (result.termination == TerminationKind::hostFault &&
            stats.attempts <= options.retries) {
            // A drain that fires between attempts ends the retry loop
            // but must not erase the outcome: the stats keep the
            // hostFault termination and the attempts actually spent.
            // (Burning another attempt here used to let a drain-time
            // cancellation overwrite the real TerminationKind.)
            if (drain.load(std::memory_order_relaxed))
                break;
            reg.counter("batch.retries").inc();
            obs::traceInstant("batch.retry",
                              "job " + std::to_string(index));
            note("job.retry",
                 "after attempt " + std::to_string(stats.attempts));
            if (options.retryBackoffMs > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    options.retryBackoffMs * stats.attempts));
            }
            continue;
        }
        break;
    }
    stats.termination = result.termination;
    note("job.done", terminationKindName(result.termination));
    stats.elapsedMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    // Wall-clock only ever feeds histograms, never counters — counter
    // totals stay identical across worker counts (determinism test).
    reg.histogram("batch.job.ms")
        .record(static_cast<uint64_t>(stats.elapsedMs));
    return result;
}

BatchReport
runBatch(const std::vector<BatchJob> &jobs, const BatchOptions &options)
{
    MS_TRACE_SPAN("batch.run",
                  std::to_string(jobs.size()) + " job(s)");
    BatchReport report;
    report.results.resize(jobs.size());
    report.jobStats.resize(jobs.size());

    CompileCache localCache;
    CompileCache *cache = nullptr;
    if (options.useCompileCache)
        cache = options.cache != nullptr ? options.cache : &localCache;

    unsigned workers = options.jobs == 0 ? ThreadPool::hardwareWorkers()
                                         : options.jobs;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, std::max<size_t>(jobs.size(), 1)));
    report.workersUsed = workers;

    std::atomic<bool> drain{false};
    JobWatchdog watchdog(options.watchdogMs);
    GuardedJobOptions job_options;
    job_options.retries = options.retries;
    job_options.retryBackoffMs = options.retryBackoffMs;
    job_options.faults = options.faults;
    job_options.analysis = options.analysis;
    auto onJobDone = [&](const ExecutionResult &result) {
        if (options.failFast && isHarnessFailure(result)) {
            drain.store(true, std::memory_order_relaxed);
            watchdog.cancelAll();
        }
    };

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); i++) {
            report.results[i] = runGuardedJob(
                jobs[i], i, cache, job_options, drain, watchdog,
                report.jobStats[i]);
            onJobDone(report.results[i]);
        }
    } else {
        ThreadPool pool(workers);
        std::vector<std::future<ExecutionResult>> futures;
        futures.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); i++) {
            const BatchJob &job = jobs[i];
            BatchReport::JobStats &stats = report.jobStats[i];
            futures.push_back(pool.submit(
                [&job, i, cache, &job_options, &drain, &watchdog, &stats,
                 &onJobDone]() {
                    ExecutionResult result = runGuardedJob(
                        job, i, cache, job_options, drain, watchdog,
                        stats);
                    onJobDone(result);
                    return result;
                }));
        }
        // Collecting by index — not by completion — keeps the report
        // deterministic under any scheduling.
        for (size_t i = 0; i < futures.size(); i++)
            report.results[i] = futures[i].get();
    }

    for (size_t i = 0; i < jobs.size(); i++) {
        const BatchReport::JobStats &stats = report.jobStats[i];
        if (stats.termination == TerminationKind::hostFault)
            report.hostFaults++;
        if (stats.attempts > 1)
            report.retriesUsed += stats.attempts - 1;
        if (stats.attempts == 0)
            report.drainedJobs++;
    }
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    if (report.hostFaults != 0)
        reg.counter("batch.host_faults").inc(report.hostFaults);
    if (report.drainedJobs != 0)
        reg.counter("batch.drained").inc(report.drainedJobs);

    if (cache != nullptr)
        report.cacheStats = cache->stats();
    return report;
}

} // namespace sulong
