#include "tools/batch_runner.h"

#include <algorithm>

#include "support/thread_pool.h"

namespace sulong
{

namespace
{

ExecutionResult
runOneJob(const BatchJob &job, CompileCache *cache)
{
    PreparedProgram prepared = prepareProgram(job.sources, job.config, cache);
    return prepared.run(job.args, job.stdinData);
}

} // namespace

BatchReport
runBatch(const std::vector<BatchJob> &jobs, const BatchOptions &options)
{
    BatchReport report;
    report.results.resize(jobs.size());

    CompileCache localCache;
    CompileCache *cache = nullptr;
    if (options.useCompileCache)
        cache = options.cache != nullptr ? options.cache : &localCache;

    unsigned workers = options.jobs == 0 ? ThreadPool::hardwareWorkers()
                                         : options.jobs;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, std::max<size_t>(jobs.size(), 1)));
    report.workersUsed = workers;

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); i++)
            report.results[i] = runOneJob(jobs[i], cache);
    } else {
        ThreadPool pool(workers);
        std::vector<std::future<ExecutionResult>> futures;
        futures.reserve(jobs.size());
        for (const BatchJob &job : jobs) {
            futures.push_back(
                pool.submit([&job, cache]() { return runOneJob(job, cache); }));
        }
        // Collecting by index — not by completion — keeps the report
        // deterministic under any scheduling.
        for (size_t i = 0; i < futures.size(); i++) {
            try {
                report.results[i] = futures[i].get();
            } catch (const std::exception &e) {
                // Engines report guest misbehaviour through results, so
                // an exception here is a harness bug; surface it as an
                // engine error instead of tearing down the whole batch.
                report.results[i].bug.kind = ErrorKind::engineError;
                report.results[i].bug.detail =
                    std::string("batch job threw: ") + e.what();
            }
        }
    }

    if (cache != nullptr)
        report.cacheStats = cache->stats();
    return report;
}

} // namespace sulong
