#include "tools/driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ir/clone.h"
#include "obs/expo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/passes.h"
#include "sanitizer/asan_pass.h"
#include "support/string_utils.h"
#include "tools/compile_cache.h"

namespace sulong
{

namespace
{

/** The front-end/optimizer stage a tool kind shares with its peers. */
struct PipelineStage
{
    LibcVariant variant;
    /// -1: run the IR as the front end produced it (Safe Sulong).
    int optLevel;
};

PipelineStage
stageFor(const ToolConfig &config)
{
    // Safe Sulong interprets its safety-first libc; native tools run the
    // performance-optimized one (word-wise strlen etc.), like real
    // precompiled libcs.
    if (config.kind == ToolKind::safeSulong)
        return {LibcVariant::safe, -1};
    return {LibcVariant::nativeOptimized, config.optLevel >= 3 ? 3 : 0};
}

} // namespace

std::string
ToolConfig::toString() const
{
    switch (kind) {
      case ToolKind::safeSulong:
        return "Safe Sulong";
      case ToolKind::clang:
        return optLevel >= 3 ? "Clang -O3" : "Clang -O0";
      case ToolKind::asan:
        return optLevel >= 3 ? "ASan -O3" : "ASan -O0";
      case ToolKind::memcheck:
        return optLevel >= 3 ? "Valgrind -O3" : "Valgrind -O0";
    }
    return "unknown";
}

PreparedProgram
prepareProgram(const std::vector<SourceFile> &user_sources,
               const ToolConfig &config, CompileCache *cache)
{
    PreparedProgram prepared;
    PipelineStage stage = stageFor(config);
    bool instrumented = config.kind == ToolKind::asan;

    if (cache != nullptr) {
        // Tool kinds that share a pipeline stage reuse one cached
        // prototype directly — engines treat modules as read-only, and
        // the ASan pass ran on the cache's private clone, so nothing
        // this job does can touch another job's module.
        auto entry = cache->getOrCompile(user_sources, stage.variant,
                                         stage.optLevel, instrumented);
        if (!entry->ok()) {
            prepared.compileErrors = entry->errors;
            return prepared;
        }
        prepared.module = entry->prototype;
    } else {
        std::vector<SourceFile> sources = libcSources(stage.variant);
        for (const auto &src : user_sources)
            sources.push_back(src);

        CompileResult compiled = compileC(sources);
        if (!compiled.ok()) {
            prepared.compileErrors = compiled.errors;
            return prepared;
        }
        std::unique_ptr<Module> module = std::move(compiled.module);
        {
            MS_TRACE_SPAN("pipeline.optimize");
            if (stage.optLevel >= 3)
                runO3Pipeline(*module);
            else if (stage.optLevel >= 0)
                runO0Pipeline(*module);
        }
        // Like real ASan, instrumentation runs after optimization: what
        // the optimizer deleted can no longer be checked (P2).
        if (instrumented) {
            MS_TRACE_SPAN("pipeline.instrument");
            runAsanPass(*module);
        }
        prepared.module = std::move(module);
    }

    switch (config.kind) {
      case ToolKind::safeSulong:
        // No unsafe optimization: the managed engine executes the IR as
        // the front end produced it (Fig. 4 pipeline).
        prepared.engine = std::make_unique<ManagedEngine>(config.managed);
        break;
      case ToolKind::clang:
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString());
        break;
      case ToolKind::asan:
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString(),
            std::make_shared<AsanRuntime>(config.asan));
        break;
      case ToolKind::memcheck:
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString(),
            std::make_shared<MemcheckRuntime>(config.memcheck));
        break;
    }
    return prepared;
}

PreparedProgram
prepareProgram(const std::string &user_source, const ToolConfig &config,
               CompileCache *cache)
{
    return prepareProgram(
        std::vector<SourceFile>{SourceFile{"<input>", user_source}}, config,
        cache);
}

ExecutionResult
runUnderTool(const std::string &user_source, const ToolConfig &config,
             const std::vector<std::string> &args,
             const std::string &stdin_data, CompileCache *cache)
{
    PreparedProgram prepared = prepareProgram(user_source, config, cache);
    return prepared.run(args, stdin_data);
}

namespace
{

/**
 * Shared strict numeric-flag decode. Every caller is a CLI entry point,
 * so a malformed value ("--max-steps=1e9", "-j -4", an overflowing
 * count) is a usage error: diagnose it clearly on stderr and exit(2)
 * rather than silently falling back — silent truncation of a resource
 * limit is exactly the failure mode the daemon's admission control must
 * not have.
 */
uint64_t
parseFlagValueOrDie(const char *flag_name, const char *text)
{
    uint64_t value = 0;
    std::string why;
    if (!parseUint64Strict(text, &value, &why)) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for %s: %s\n", text,
                     flag_name, why.c_str());
        std::exit(2);
    }
    return value;
}

} // namespace

unsigned
parseJobsFlag(int argc, char **argv, unsigned fallback)
{
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
            if (i + 1 < argc)
                value = argv[i + 1];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            value = arg + 2;
        }
        if (value == nullptr)
            continue;
        uint64_t parsed = parseFlagValueOrDie("--jobs", value);
        if (parsed > UINT32_MAX) {
            std::fprintf(stderr,
                         "error: invalid value '%s' for --jobs: "
                         "exceeds the worker-count range\n", value);
            std::exit(2);
        }
        return static_cast<unsigned>(parsed);
    }
    return fallback;
}

uint64_t
parseUint64Flag(int argc, char **argv, const char *name, uint64_t fallback)
{
    std::string flag = std::string("--") + name;
    std::string flag_eq = flag + "=";
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (flag == arg) {
            if (i + 1 < argc)
                value = argv[i + 1];
        } else if (std::strncmp(arg, flag_eq.c_str(), flag_eq.size()) == 0) {
            value = arg + flag_eq.size();
        }
        if (value == nullptr)
            continue;
        return parseFlagValueOrDie(flag.c_str(), value);
    }
    return fallback;
}

ResourceLimits
parseLimitFlags(int argc, char **argv, ResourceLimits base)
{
    base.maxSteps = parseUint64Flag(argc, argv, "max-steps", base.maxSteps);
    base.maxHeapBytes =
        parseUint64Flag(argc, argv, "heap-limit", base.maxHeapBytes);
    base.maxOutputBytes =
        parseUint64Flag(argc, argv, "output-limit", base.maxOutputBytes);
    base.deadlineMs =
        parseUint64Flag(argc, argv, "deadline-ms", base.deadlineMs);
    return base;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; i++) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

std::string
parseStringFlag(int argc, char **argv, const char *name,
                const std::string &fallback)
{
    std::string flag = std::string("--") + name;
    std::string flag_eq = flag + "=";
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (flag == arg) {
            if (i + 1 < argc)
                return argv[i + 1];
            return fallback;
        }
        if (std::strncmp(arg, flag_eq.c_str(), flag_eq.size()) == 0)
            return arg + flag_eq.size();
    }
    return fallback;
}

namespace
{

/**
 * Strict parsing for the tier-tuning surface: a typo'd `--tier*` /
 * `--no-tier*` flag used to be silently ignored (and so silently
 * benchmarked the wrong configuration). Unknown spellings and value
 * flags without a value are usage errors, in parity with how
 * parseUint64Strict already rejects malformed values.
 */
void
validateTierFlags(int argc, char **argv)
{
    static const char *const switches[] = {
        "--no-tier2",
        "--no-tier3",
        "--no-tier3-osr",
    };
    static const char *const value_flags[] = {
        "--tier2-threshold",
        "--tier3-threshold",
        "--tier3-osr-threshold",
    };
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--tier", 6) != 0 &&
            std::strncmp(arg, "--no-tier", 9) != 0)
            continue;
        bool known = false;
        for (const char *flag : switches) {
            if (std::strcmp(arg, flag) == 0) {
                known = true;
                break;
            }
        }
        for (const char *flag : value_flags) {
            if (known)
                break;
            size_t len = std::strlen(flag);
            if (std::strcmp(arg, flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "error: %s requires a value\n",
                                 flag);
                    std::exit(2);
                }
                known = true;
                i++; // the next argument is this flag's value
            } else if (std::strncmp(arg, flag, len) == 0 &&
                       arg[len] == '=') {
                known = true;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "error: unknown flag '%s' (known tier flags: "
                         "--no-tier2, --tier2-threshold, --no-tier3, "
                         "--tier3-threshold, --no-tier3-osr, "
                         "--tier3-osr-threshold)\n", arg);
            std::exit(2);
        }
    }
}

/**
 * Strict parsing for the analysis surface, in parity with
 * validateTierFlags: a typo'd `--analyze*` / `--no-refute` /
 * `--no-solver` / `--no-summaries` / `--summary-depth` spelling used to
 * be silently ignored, which silently analyzed the wrong configuration
 * (e.g. an ablation run that never ablated anything).
 */
void
validateAnalysisFlags(int argc, char **argv)
{
    static const char *const switches[] = {
        "--analyze",
        "--analyze-only",
        "--analyze-libc",
        "--no-refute",
        "--no-solver",
        "--no-summaries",
    };
    static const char *const value_flags[] = {
        "--summary-depth",
        "--analysis-jobs",
        "--widen-after",
        "--replay-steps",
    };
    static const char *const prefixes[] = {
        "--analyze",
        "--analysis-",
        "--no-refute",
        "--no-solver",
        "--no-summar",
        "--summary-",
        "--widen-after",
        "--replay-steps",
    };
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        bool gated = false;
        for (const char *prefix : prefixes) {
            if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) {
                gated = true;
                break;
            }
        }
        if (!gated)
            continue;
        bool known = false;
        for (const char *flag : switches) {
            if (std::strcmp(arg, flag) == 0) {
                known = true;
                break;
            }
        }
        for (const char *flag : value_flags) {
            if (known)
                break;
            size_t len = std::strlen(flag);
            if (std::strcmp(arg, flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "error: %s requires a value\n",
                                 flag);
                    std::exit(2);
                }
                known = true;
                i++; // the next argument is this flag's value
            } else if (std::strncmp(arg, flag, len) == 0 &&
                       arg[len] == '=') {
                known = true;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "error: unknown flag '%s' (known analysis flags: "
                         "--analyze, --analyze-only, --analyze-libc, "
                         "--no-refute, --no-solver, --no-summaries, "
                         "--summary-depth, --analysis-jobs, "
                         "--widen-after, --replay-steps)\n", arg);
            std::exit(2);
        }
    }
}

} // namespace

ManagedOptions
parseManagedFlags(int argc, char **argv, ManagedOptions base)
{
    validateTierFlags(argc, argv);
    if (hasFlag(argc, argv, "no-tier2"))
        base.enableTier2 = false;
    base.compileThreshold = static_cast<unsigned>(parseUint64Flag(
        argc, argv, "tier2-threshold", base.compileThreshold));
    if (hasFlag(argc, argv, "no-inlining"))
        base.enableInlining = false;
    base.inlineBudget = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "inline-budget", base.inlineBudget));
    base.inlineSiteMin = static_cast<int>(parseUint64Flag(
        argc, argv, "inline-min",
        static_cast<uint64_t>(static_cast<int64_t>(base.inlineSiteMin))));
    if (hasFlag(argc, argv, "no-check-elision"))
        base.enableCheckElision = false;
    if (hasFlag(argc, argv, "no-tier3"))
        base.enableTier3 = false;
    base.tier3Threshold = static_cast<unsigned>(parseUint64Flag(
        argc, argv, "tier3-threshold", base.tier3Threshold));
    if (hasFlag(argc, argv, "no-fusion"))
        base.enableFusion = false;
    if (hasFlag(argc, argv, "no-tier3-osr"))
        base.tier3Osr = false;
    base.tier3OsrThreshold = static_cast<unsigned>(parseUint64Flag(
        argc, argv, "tier3-osr-threshold", base.tier3OsrThreshold));
    return base;
}

AnalysisOptions
parseAnalysisFlags(int argc, char **argv, AnalysisOptions base)
{
    validateAnalysisFlags(argc, argv);
    if (hasFlag(argc, argv, "no-refute"))
        base.refute = false;
    if (hasFlag(argc, argv, "no-solver"))
        base.solver = false;
    if (hasFlag(argc, argv, "no-summaries"))
        base.summaries = false;
    if (hasFlag(argc, argv, "analyze-libc"))
        base.userCodeOnly = false;
    base.summaryDepth = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "summary-depth", base.summaryDepth));
    base.jobs = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "analysis-jobs", base.jobs));
    base.widenAfter = static_cast<unsigned>(
        parseUint64Flag(argc, argv, "widen-after", base.widenAfter));
    base.replaySteps =
        parseUint64Flag(argc, argv, "replay-steps", base.replaySteps);
    return base;
}

AnalysisReport
analyzeSource(const std::string &user_source, const AnalysisOptions &options,
              const std::vector<std::string> &guest_args)
{
    PreparedProgram prepared =
        prepareProgram(user_source, ToolConfig::make(ToolKind::safeSulong));
    if (!prepared.ok()) {
        AnalysisReport report;
        report.replayOutcome = "compile error: " + prepared.compileErrors;
        return report;
    }
    AnalysisOptions effective = options;
    effective.replayArgs = guest_args;
    return analyzeModule(*prepared.module, effective);
}

std::vector<ToolConfig>
evaluationToolMatrix()
{
    return {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
    };
}

ObsFlags
parseObsFlags(int argc, char **argv)
{
    ObsFlags flags;
    flags.traceOut = parseStringFlag(argc, argv, "trace-out");
    flags.metricsJson = parseStringFlag(argc, argv, "metrics-json");
    flags.metricsExpo = parseStringFlag(argc, argv, "metrics-expo");
    flags.stats = hasFlag(argc, argv, "stats");
    obs::setTracingEnabled(!flags.traceOut.empty());
    obs::setMetricsEnabled(flags.metricsWanted());
    return flags;
}

bool
writeObsOutputs(const ObsFlags &flags)
{
    bool ok = true;
    std::string error;
    if (!flags.traceOut.empty() &&
        !obs::writeChromeTrace(flags.traceOut, &error)) {
        std::fprintf(stderr, "trace-out: %s\n", error.c_str());
        ok = false;
    }
    if (!flags.metricsJson.empty() &&
        !obs::writeMetricsJson(flags.metricsJson, &error)) {
        std::fprintf(stderr, "metrics-json: %s\n", error.c_str());
        ok = false;
    }
    if (!flags.metricsExpo.empty() &&
        !obs::writePrometheusText(flags.metricsExpo, &error)) {
        std::fprintf(stderr, "metrics-expo: %s\n", error.c_str());
        ok = false;
    }
    if (flags.stats) {
        obs::MetricsSnapshot snap =
            obs::MetricsRegistry::global().snapshot();
        std::printf("--- stats ---\n");
        for (const auto &[name, value] : snap.counters)
            std::printf("%-40s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
        for (const auto &[name, value] : snap.gauges)
            std::printf("%-40s %lld\n", name.c_str(),
                        static_cast<long long>(value));
        for (const auto &[name, hist] : snap.histograms)
            std::printf("%-40s count=%llu sum=%llu\n", name.c_str(),
                        static_cast<unsigned long long>(hist.count),
                        static_cast<unsigned long long>(hist.sum));
    }
    return ok;
}

} // namespace sulong
