#include "tools/driver.h"

#include "opt/passes.h"
#include "sanitizer/asan_pass.h"

namespace sulong
{

std::string
ToolConfig::toString() const
{
    switch (kind) {
      case ToolKind::safeSulong:
        return "Safe Sulong";
      case ToolKind::clang:
        return optLevel >= 3 ? "Clang -O3" : "Clang -O0";
      case ToolKind::asan:
        return optLevel >= 3 ? "ASan -O3" : "ASan -O0";
      case ToolKind::memcheck:
        return optLevel >= 3 ? "Valgrind -O3" : "Valgrind -O0";
    }
    return "unknown";
}

PreparedProgram
prepareProgram(const std::vector<SourceFile> &user_sources,
               const ToolConfig &config)
{
    PreparedProgram prepared;

    // Safe Sulong interprets its safety-first libc; native tools run the
    // performance-optimized one (word-wise strlen etc.), like real
    // precompiled libcs.
    LibcVariant variant = config.kind == ToolKind::safeSulong
        ? LibcVariant::safe : LibcVariant::nativeOptimized;
    std::vector<SourceFile> sources = libcSources(variant);
    for (const auto &src : user_sources)
        sources.push_back(src);

    CompileResult compiled = compileC(sources);
    if (!compiled.ok()) {
        prepared.compileErrors = compiled.errors;
        return prepared;
    }
    prepared.module = std::move(compiled.module);

    switch (config.kind) {
      case ToolKind::safeSulong:
        // No unsafe optimization: the managed engine executes the IR as
        // the front end produced it (Fig. 4 pipeline).
        prepared.engine = std::make_unique<ManagedEngine>(config.managed);
        break;
      case ToolKind::clang:
        if (config.optLevel >= 3)
            runO3Pipeline(*prepared.module);
        else
            runO0Pipeline(*prepared.module);
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString());
        break;
      case ToolKind::asan:
        if (config.optLevel >= 3)
            runO3Pipeline(*prepared.module);
        else
            runO0Pipeline(*prepared.module);
        // Like real ASan, instrumentation runs after optimization: what
        // the optimizer deleted can no longer be checked (P2).
        runAsanPass(*prepared.module);
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString(),
            std::make_shared<AsanRuntime>(config.asan));
        break;
      case ToolKind::memcheck:
        if (config.optLevel >= 3)
            runO3Pipeline(*prepared.module);
        else
            runO0Pipeline(*prepared.module);
        prepared.engine = std::make_unique<NativeEngine>(
            config.toString(),
            std::make_shared<MemcheckRuntime>(config.memcheck));
        break;
    }
    return prepared;
}

PreparedProgram
prepareProgram(const std::string &user_source, const ToolConfig &config)
{
    return prepareProgram(
        std::vector<SourceFile>{SourceFile{"<input>", user_source}}, config);
}

ExecutionResult
runUnderTool(const std::string &user_source, const ToolConfig &config,
             const std::vector<std::string> &args,
             const std::string &stdin_data)
{
    PreparedProgram prepared = prepareProgram(user_source, config);
    return prepared.run(args, stdin_data);
}

std::vector<ToolConfig>
evaluationToolMatrix()
{
    return {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
    };
}

} // namespace sulong
