/**
 * @file
 * Machine-readable benchmark output: the BENCH_tier2.json/v1 schema the
 * CI perf gate consumes. Each record names the benchmark, the engine it
 * ran under, the managed-engine configuration, the nanoseconds per
 * operation, and the IR instructions retired per operation — enough to
 * compare tier-2 configurations (inlining / check elision on and off)
 * run to run without re-parsing human-oriented tables.
 */

#ifndef MS_TOOLS_BENCH_JSON_H
#define MS_TOOLS_BENCH_JSON_H

#include <cstdint>
#include <string>
#include <vector>

#include "interp/managed_engine.h"

namespace sulong
{

/** One benchmark measurement. */
struct BenchRecord
{
    /// Benchmark name, e.g. "fig16.calltower" or "micro.BM_Calls".
    std::string bench;
    /// Engine display name, e.g. "SafeSulong" or "Clang -O0".
    std::string engine;
    /// Configuration summary (see managedConfigString).
    std::string config;
    /// Nanoseconds per operation (one benchmark iteration).
    double nsPerOp = 0;
    /// IR instructions retired per operation (0 when the engine does
    /// not count steps, i.e. everything but Safe Sulong).
    uint64_t stepsPerOp = 0;
};

/** One A/B measurement of tier-3 against tier-2 on the same workload
 *  (same binary, same process), for the BENCH_tier3.json/v1 schema. */
struct Tier3Record
{
    /// Benchmark name, e.g. "fig16.calltower".
    std::string bench;
    /// Configuration summary of the tier-3 run (see managedConfigString).
    std::string config;
    double tier2NsPerOp = 0;
    double tier3NsPerOp = 0;
    /// IR instructions retired by one (identical) run under each mode;
    /// the gate fails when they differ — tier-3 must do the same guest
    /// work it merely dispatches faster.
    uint64_t tier2Steps = 0;
    uint64_t tier3Steps = 0;
    // Tier-3 telemetry summed over every run of the tier-3 arm.
    uint64_t compiles = 0;
    uint64_t superblocks = 0;
    uint64_t osrEntries = 0;
    uint64_t deoptMega = 0;
    uint64_t deoptShape = 0;
    uint64_t deoptSteps = 0;
    uint64_t deoptBug = 0;
};

/** One-line summary of the tier-2/tier-3 knobs, stable across runs. */
std::string managedConfigString(const ManagedOptions &options);

/**
 * Write @p records to @p path in the BENCH_tier2.json/v1 schema:
 * `{"schema": "BENCH_tier2.json/v1", "records": [...]}`.
 * @return false when the file could not be written.
 */
bool writeBenchJson(const std::string &path,
                    const std::vector<BenchRecord> &records);

/**
 * Write @p records to @p path in the BENCH_tier3.json/v1 schema:
 * `{"schema": "BENCH_tier3.json/v1", "records": [...]}` with per-record
 * speedup and tier-3 event counters (consumed by `bench_gate.py tier3`).
 * @return false when the file could not be written.
 */
bool writeTier3BenchJson(const std::string &path,
                         const std::vector<Tier3Record> &records);

} // namespace sulong

#endif // MS_TOOLS_BENCH_JSON_H
