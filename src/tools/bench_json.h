/**
 * @file
 * Machine-readable benchmark output: the BENCH_tier2.json/v1 schema the
 * CI perf gate consumes. Each record names the benchmark, the engine it
 * ran under, the managed-engine configuration, the nanoseconds per
 * operation, and the IR instructions retired per operation — enough to
 * compare tier-2 configurations (inlining / check elision on and off)
 * run to run without re-parsing human-oriented tables.
 */

#ifndef MS_TOOLS_BENCH_JSON_H
#define MS_TOOLS_BENCH_JSON_H

#include <cstdint>
#include <string>
#include <vector>

#include "interp/managed_engine.h"

namespace sulong
{

/** One benchmark measurement. */
struct BenchRecord
{
    /// Benchmark name, e.g. "fig16.calltower" or "micro.BM_Calls".
    std::string bench;
    /// Engine display name, e.g. "SafeSulong" or "Clang -O0".
    std::string engine;
    /// Configuration summary (see managedConfigString).
    std::string config;
    /// Nanoseconds per operation (one benchmark iteration).
    double nsPerOp = 0;
    /// IR instructions retired per operation (0 when the engine does
    /// not count steps, i.e. everything but Safe Sulong).
    uint64_t stepsPerOp = 0;
};

/** One-line summary of the tier-2 knobs, stable across runs. */
std::string managedConfigString(const ManagedOptions &options);

/**
 * Write @p records to @p path in the BENCH_tier2.json/v1 schema:
 * `{"schema": "BENCH_tier2.json/v1", "records": [...]}`.
 * @return false when the file could not be written.
 */
bool writeBenchJson(const std::string &path,
                    const std::vector<BenchRecord> &records);

} // namespace sulong

#endif // MS_TOOLS_BENCH_JSON_H
