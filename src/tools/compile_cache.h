/**
 * @file
 * Shared compile cache for the evaluation pipeline.
 *
 * A detection-matrix run compiles every corpus program once per tool
 * configuration even though most cells share the identical front-end and
 * optimization work: ASan -O0, Memcheck -O0 and Clang -O0 all execute
 * the nativeOptimized libc linked with the user program and run the O0
 * pipeline; the -O3 tools share the O3 pipeline; Safe Sulong runs the
 * unoptimized IR with the safe libc. The cache keys on
 * (source-text hash, libc variant, opt level) — the pipeline *stage* a
 * tool kind maps onto — and stores one immutable prototype module per
 * stage.
 *
 * ASan's compile-time instrumentation mutates modules, so its stages are
 * cached separately (the `instrumented` key bit — effectively the tool
 * kind): the pass runs once on a private *clone* of the matching
 * uninstrumented stage (copy-on-instrument; see ir/clone.h), never on a
 * cached module. Engines treat modules as strictly read-only, so batch
 * jobs execute the shared prototypes directly, and cached runs stay
 * bit-identical to uncached ones.
 *
 * Thread safe: concurrent lookups of the same key compile once and
 * share the result; lookups of different keys compile in parallel.
 */

#ifndef MS_TOOLS_COMPILE_CACHE_H
#define MS_TOOLS_COMPILE_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "ir/module.h"
#include "libc/libc_sources.h"

namespace sulong
{

/** Hit/miss/evict counters, reported by the benches and the registry. */
struct CompileCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

class CompileCache
{
  public:
    /** A compiled-and-optimized pipeline stage (or its compile error). */
    struct Entry
    {
        /// Post-pipeline prototype; null when compilation failed.
        std::shared_ptr<const Module> prototype;
        std::string errors;

        bool ok() const { return prototype != nullptr; }
    };

    /**
     * Return the stage for @p user_sources linked against @p variant and
     * run through the given pipeline (@p opt_level: -1 none, 0, or 3),
     * compiling it on first use. With @p instrumented, the stage is the
     * ASan-instrumented clone of the corresponding plain stage. Never
     * returns null.
     */
    std::shared_ptr<const Entry>
    getOrCompile(const std::vector<SourceFile> &user_sources,
                 LibcVariant variant, int opt_level,
                 bool instrumented = false);

    CompileCacheStats stats() const;

    /** Drop all entries (counters are kept). */
    void clear();

    /**
     * Bound the cache to @p max_entries stages, evicting in LRU order
     * (0 = unbounded, the default). In-flight users of an evicted stage
     * keep it alive through their shared_ptr; eviction only drops the
     * cache's own reference.
     */
    void setCapacity(size_t max_entries);

    /** FNV-1a over names and contents of @p sources. */
    static uint64_t hashSources(const std::vector<SourceFile> &sources);

  private:
    struct Key
    {
        uint64_t sourceHash;
        LibcVariant variant;
        int optLevel;
        bool instrumented;

        bool
        operator<(const Key &other) const
        {
            if (sourceHash != other.sourceHash)
                return sourceHash < other.sourceHash;
            if (variant != other.variant)
                return variant < other.variant;
            if (optLevel != other.optLevel)
                return optLevel < other.optLevel;
            return instrumented < other.instrumented;
        }
    };

    /** One cache slot; compiled at most once via its own flag. */
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const Entry> entry;
        /// Position in lru_ for O(1) touch/evict.
        std::list<Key>::iterator lruPos;
    };

    /** Evict least-recently-used slots down to capacity_ (locked). */
    void enforceCapacityLocked();

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<Slot>> slots_;
    /// Most-recently-used keys at the front.
    std::list<Key> lru_;
    size_t capacity_ = 0;
    CompileCacheStats stats_;
};

} // namespace sulong

#endif // MS_TOOLS_COMPILE_CACHE_H
