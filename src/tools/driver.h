/**
 * @file
 * One-call driver: compile a mini-C program, link the right libc
 * variant, run the right optimization pipeline and instrumentation, and
 * execute it under the selected tool — the workflow of the paper's
 * evaluation (Section 4).
 */

#ifndef MS_TOOLS_DRIVER_H
#define MS_TOOLS_DRIVER_H

#include <memory>

#include "analysis/analyzer.h"
#include "interp/managed_engine.h"
#include "libc/libc_sources.h"
#include "memcheck/memcheck_runtime.h"
#include "native/native_engine.h"
#include "sanitizer/asan_runtime.h"
#include "tools/engine.h"

namespace sulong
{

/** The tools of the evaluation. */
enum class ToolKind : uint8_t
{
    /// The paper's system: managed interpretation + safe libc, no
    /// unsafe optimization.
    safeSulong,
    /// Plain native execution ("compiled with Clang, no tool").
    clang,
    /// Compile-time shadow-memory instrumentation (ASan-style).
    asan,
    /// Runtime instrumentation (Valgrind/Memcheck-style).
    memcheck,
};

/** Complete configuration for one tool run. */
struct ToolConfig
{
    ToolKind kind = ToolKind::safeSulong;
    /// 0 or 3; ignored for safeSulong (which runs unoptimized IR).
    int optLevel = 0;
    ManagedOptions managed;
    AsanOptions asan;
    MemcheckOptions memcheck;

    static ToolConfig
    make(ToolKind kind, int opt_level = 0)
    {
        ToolConfig config;
        config.kind = kind;
        config.optLevel = opt_level;
        return config;
    }

    /** Display name, e.g. "ASan -O3". */
    std::string toString() const;
};

class CompileCache;

/** A compiled-and-instrumented program bound to its engine. */
struct PreparedProgram
{
    /// Const and shared: cache-backed preparation hands out the cached
    /// prototype itself (engines never mutate a module), so concurrent
    /// batch jobs may all point at one module. Without a cache the
    /// program still owns its module exclusively.
    std::shared_ptr<const Module> module;
    std::unique_ptr<Engine> engine;
    std::string compileErrors;

    bool ok() const { return module != nullptr && engine != nullptr; }

    ExecutionResult
    run(const std::vector<std::string> &args = {},
        const std::string &stdin_data = "")
    {
        if (!ok()) {
            ExecutionResult result;
            result.bug.kind = ErrorKind::engineError;
            result.bug.detail = "compilation failed: " + compileErrors;
            return result;
        }
        return engine->run(*module, args, stdin_data);
    }
};

/**
 * Compile @p user_sources with the configuration's libc variant and
 * pipelines, and construct the matching engine.
 *
 * With a @p cache, the front-end/optimizer stage shared by tool kinds is
 * compiled once per (sources, libc variant, opt level) and this call
 * instruments and executes a private clone of the cached prototype
 * (copy-on-instrument), producing results identical to uncached runs.
 */
PreparedProgram prepareProgram(const std::vector<SourceFile> &user_sources,
                               const ToolConfig &config,
                               CompileCache *cache = nullptr);

/** Convenience: one anonymous source. */
PreparedProgram prepareProgram(const std::string &user_source,
                               const ToolConfig &config,
                               CompileCache *cache = nullptr);

/** Compile-and-run in one step. */
ExecutionResult runUnderTool(const std::string &user_source,
                             const ToolConfig &config,
                             const std::vector<std::string> &args = {},
                             const std::string &stdin_data = "",
                             CompileCache *cache = nullptr);

/** The seven tool configurations of the Section 4.1 comparison. */
std::vector<ToolConfig> evaluationToolMatrix();

/**
 * Parse a `--jobs N` / `--jobs=N` / `-jN` flag from a command line
 * (first match wins); returns @p fallback when absent. A present but
 * malformed value (trailing garbage, sign, overflow — see
 * parseUint64Strict) prints a clear diagnostic and exits 2.
 * 0 means "one worker per hardware thread".
 */
unsigned parseJobsFlag(int argc, char **argv, unsigned fallback = 1);

/**
 * Parse an unsigned integer flag in `--name N` / `--name=N` form (first
 * match wins); returns @p fallback when absent. A present but malformed
 * value (trailing garbage, sign, overflow) prints a clear diagnostic
 * and exits 2 — resource-limit flags must never silently truncate.
 */
uint64_t parseUint64Flag(int argc, char **argv, const char *name,
                         uint64_t fallback);

/**
 * Apply the resource-governance flags to @p base and return the result:
 * `--max-steps N`, `--heap-limit BYTES`, `--output-limit BYTES`, and
 * `--deadline-ms MS` (0 always means unlimited).
 */
ResourceLimits parseLimitFlags(int argc, char **argv,
                               ResourceLimits base = {});

/** @return true when the bare switch `--name` is present. */
bool hasFlag(int argc, char **argv, const char *name);

/**
 * Parse a string flag in `--name VALUE` / `--name=VALUE` form (first
 * match wins); returns @p fallback when absent.
 */
std::string parseStringFlag(int argc, char **argv, const char *name,
                            const std::string &fallback = {});

/**
 * Apply the tier-2 tuning/ablation flags to @p base and return the
 * result: `--no-tier2`, `--tier2-threshold N`, `--no-inlining`,
 * `--inline-budget N`, `--inline-min N`, and `--no-check-elision`.
 */
ManagedOptions parseManagedFlags(int argc, char **argv,
                                 ManagedOptions base = {});

/**
 * Apply the static-analysis flags to @p base and return the result:
 * `--no-refute` (skip the concrete replay; nothing is demoted),
 * `--no-solver` (skip the constraint-based refutation stage),
 * `--no-summaries` (havoc at every call instead of applying
 * interprocedural function summaries),
 * `--analyze-libc` (also analyze the linked libc functions),
 * `--summary-depth N` (recursive-SCC fixpoint rounds),
 * `--analysis-jobs N` (parallel SCC analysis; findings are identical
 * for every N), `--widen-after N`, and `--replay-steps N`.
 * The `--analyze` / `--analyze-only` switches themselves are mode
 * toggles for the caller (query them with hasFlag()).
 *
 * Parsing is strict: an unknown `--analyze*`-family spelling or a value
 * flag without a value is a usage error (exit 2), in parity with the
 * tier flags.
 */
AnalysisOptions parseAnalysisFlags(int argc, char **argv,
                                   AnalysisOptions base = {});

/**
 * Compile @p user_source for Safe Sulong and run the static analyzer
 * over the user functions of the resulting module, with @p guest_args
 * as the refutation stage's replayed argv. Compile errors come back as
 * an AnalysisReport whose replayOutcome holds the message.
 */
AnalysisReport analyzeSource(const std::string &user_source,
                             const AnalysisOptions &options = {},
                             const std::vector<std::string> &guest_args = {});

/** Telemetry-output selection shared by every CLI. */
struct ObsFlags
{
    /// Chrome trace-event JSON destination ("" = tracing stays off).
    std::string traceOut;
    /// obs/v1 metrics JSON destination ("" = none).
    std::string metricsJson;
    /// Prometheus text-exposition destination ("" = none).
    std::string metricsExpo;
    /// Print a human-readable stats dump (counters + cache) on exit.
    bool stats = false;

    bool
    metricsWanted() const
    {
        return stats || !metricsJson.empty() || !metricsExpo.empty();
    }
};

/**
 * Parse `--trace-out=FILE`, `--metrics-json=FILE`,
 * `--metrics-expo=FILE`, and `--stats`, and ENABLE the corresponding
 * collection globally (tracing only when a trace file was requested;
 * metrics when a metrics/expo file or --stats was). Collection stays
 * off entirely when none are given.
 */
ObsFlags parseObsFlags(int argc, char **argv);

/**
 * Write the outputs selected by @p flags: the Chrome trace, the obs/v1
 * metrics document, the Prometheus text exposition, and/or the --stats
 * text dump to stdout. Returns false (after printing a diagnostic to
 * stderr) if any write failed.
 */
bool writeObsOutputs(const ObsFlags &flags);

} // namespace sulong

#endif // MS_TOOLS_DRIVER_H
