/**
 * @file
 * The benchmark programs of the performance evaluation (Section 4.3):
 * mini-C versions of the Computer Language Benchmarks Game programs the
 * paper uses, plus whetstone. Problem sizes are scaled to interpreter
 * speeds; every engine must produce identical output (the suite doubles
 * as a cross-engine differential test).
 *
 * meteor is a reduced exact-cover puzzle of the same algorithmic shape
 * (recursive backtracking over bitboards) as the original pentomino
 * solver; fastaredux includes the cumulative-probability fix the paper's
 * authors submitted upstream (their footnote [46]).
 */

#ifndef MS_TOOLS_BENCHMARK_PROGRAMS_H
#define MS_TOOLS_BENCHMARK_PROGRAMS_H

#include <string>
#include <vector>

namespace sulong
{

/** One benchmark program. */
struct BenchmarkProgram
{
    std::string name;
    std::string source;
    /// Default command-line arguments (problem size).
    std::vector<std::string> args;
    /// Allocation-intensive (binarytrees): reported separately like the
    /// paper, which excluded it from the plot.
    bool allocationIntensive = false;
};

/** All benchmark programs, in the paper's Fig. 16 order. */
const std::vector<BenchmarkProgram> &benchmarkPrograms();

/** Look up by name (nullptr when unknown). */
const BenchmarkProgram *findBenchmark(const std::string &name);

} // namespace sulong

#endif // MS_TOOLS_BENCHMARK_PROGRAMS_H
