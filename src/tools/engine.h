/**
 * @file
 * The common execution-engine interface.
 *
 * Every tool in the evaluation — Safe Sulong (managed), plain native
 * ("Clang"), ASan-style shadow memory, and Memcheck-style runtime
 * instrumentation — implements this interface, so the corpus harness and
 * the benchmarks drive them uniformly.
 */

#ifndef MS_TOOLS_ENGINE_H
#define MS_TOOLS_ENGINE_H

#include <string>
#include <vector>

#include "ir/module.h"
#include "support/error.h"

namespace sulong
{

/** Guest stdin/stdout/stderr plumbing shared by all engines. */
struct GuestIO
{
    std::string input;
    size_t inputPos = 0;
    std::string output;
    std::string errOutput;

    int
    getChar()
    {
        if (inputPos >= input.size())
            return -1; // EOF
        return static_cast<unsigned char>(input[inputPos++]);
    }

    void
    write(int fd, const char *data, size_t len)
    {
        (fd == 2 ? errOutput : output).append(data, len);
    }
};

/** Per-run limits so buggy guests cannot wedge the host. */
struct RunLimits
{
    /// Maximum number of executed IR instructions (0 = unlimited).
    uint64_t maxSteps = 500'000'000;
    /// Maximum guest call depth. Guest calls nest host-interpreter
    /// frames, so this also protects the host stack.
    unsigned maxCallDepth = 3'000;
};

/**
 * A bug-finding (or plain) execution environment for IR modules.
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Short tool name ("SafeSulong", "ASan", "Memcheck", "Native"). */
    virtual std::string name() const = 0;

    /**
     * Execute @p module's main() with the given command line and stdin.
     * Never throws for guest misbehaviour: bugs, traps, and engine
     * errors are reported through the ExecutionResult.
     */
    virtual ExecutionResult run(const Module &module,
                                const std::vector<std::string> &args,
                                const std::string &stdin_data) = 0;

    ExecutionResult
    run(const Module &module, const std::vector<std::string> &args = {})
    {
        return run(module, args, "");
    }

    RunLimits &limits() { return limits_; }

  protected:
    RunLimits limits_;
};

} // namespace sulong

#endif // MS_TOOLS_ENGINE_H
