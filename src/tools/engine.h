/**
 * @file
 * The common execution-engine interface.
 *
 * Every tool in the evaluation — Safe Sulong (managed), plain native
 * ("Clang"), ASan-style shadow memory, and Memcheck-style runtime
 * instrumentation — implements this interface, so the corpus harness and
 * the benchmarks drive them uniformly.
 */

#ifndef MS_TOOLS_ENGINE_H
#define MS_TOOLS_ENGINE_H

#include <string>
#include <vector>

#include "ir/module.h"
#include "support/error.h"
#include "support/limits.h"

namespace sulong
{

/** Guest stdin/stdout/stderr plumbing shared by all engines. */
struct GuestIO
{
    std::string input;
    size_t inputPos = 0;
    std::string output;
    std::string errOutput;
    /// When set, every write is metered against the output-bytes limit
    /// instead of appending unboundedly (printf bombs terminate the run
    /// with TerminationKind::outputLimit).
    ResourceGuard *guard = nullptr;

    int
    getChar()
    {
        if (inputPos >= input.size())
            return -1; // EOF
        return static_cast<unsigned char>(input[inputPos++]);
    }

    void
    write(int fd, const char *data, size_t len)
    {
        if (guard != nullptr)
            guard->onOutput(len);
        (fd == 2 ? errOutput : output).append(data, len);
    }
};

/// Former name of the per-run limits, generalized in support/limits.h.
using RunLimits = ResourceLimits;

/**
 * A bug-finding (or plain) execution environment for IR modules.
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Short tool name ("SafeSulong", "ASan", "Memcheck", "Native"). */
    virtual std::string name() const = 0;

    /**
     * Execute @p module's main() with the given command line and stdin.
     * Never throws for guest misbehaviour: bugs, traps, and engine
     * errors are reported through the ExecutionResult.
     */
    virtual ExecutionResult run(const Module &module,
                                const std::vector<std::string> &args,
                                const std::string &stdin_data) = 0;

    ExecutionResult
    run(const Module &module, const std::vector<std::string> &args = {})
    {
        return run(module, args, "");
    }

    ResourceLimits &limits() { return limits_; }

    /**
     * Install a cancellation token polled on the interpreter step path:
     * a watchdog that cancels it terminates the next run (or the one in
     * flight) with TerminationKind::cancelled.
     */
    void setCancellationToken(CancellationToken token)
    {
        cancelToken_ = std::move(token);
    }

  protected:
    ResourceLimits limits_;
    CancellationToken cancelToken_;
};

} // namespace sulong

#endif // MS_TOOLS_ENGINE_H
