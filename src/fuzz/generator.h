/**
 * @file
 * Deterministic grammar-based mini-C program generator.
 *
 * The generative scenario engine's front half: a seeded, type-directed
 * generator that produces *well-defined* mini-C programs (array indices
 * reduced modulo the array length, divisors forced non-zero, shift
 * amounts masked, every variable initialized), structured so that the
 * bug-injection mutators (src/fuzz/mutator.h) and the auto-minimizer
 * (src/fuzz/minimizer.h) can operate on whole statements instead of raw
 * text. Every program folds its observable behaviour into a checksum
 * printed at exit, so two engines agree iff they computed the same
 * values in the same order.
 *
 * Determinism contract: generation consumes randomness only from the
 * seeded Rng, so the same (seed, options) pair renders a byte-identical
 * program on every host, worker count, and build type.
 */

#ifndef MS_FUZZ_GENERATOR_H
#define MS_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "study/classifier.h"
#include "support/error.h"
#include "support/rng.h"

namespace sulong
{

/** Which bug-injection mutator produced a program's planted bug. */
enum class MutatorKind : uint8_t
{
    none, ///< clean program, well-defined by construction
    oobIndex,
    useAfterFree,
    doubleFree,
    uninitRead,
    invalidFree,
    nullDeref,
};

/// Number of bug-injecting MutatorKinds (excludes `none`).
inline constexpr int kMutatorCount = 6;

const char *mutatorKindName(MutatorKind kind);

/** Ground truth recorded for one injected bug. */
struct InjectedBug
{
    MutatorKind mutator = MutatorKind::none;
    /// Expected ErrorKind of the planted fault (none for clean programs).
    ErrorKind kind = ErrorKind::none;
    AccessKind access = AccessKind::read;
    StorageKind storage = StorageKind::unknown;
    BoundsDirection direction = BoundsDirection::unknown;
    /// Out-of-bounds accesses only: the access lands within one element
    /// of the object, i.e. inside any adjacent redzone. "Far" overflows
    /// (false) are the ones redzone-based detectors are allowed to miss.
    bool adjacent = true;
    /// The faulting access uses a compile-time-constant address into a
    /// global, which even the O0 native pipeline constant-folds away
    /// before instrumentation (paper Fig. 13) — redzone-based detectors
    /// are allowed to miss it.
    bool foldable = false;
    /// The bug spans a call boundary: the allocation, the free, or the
    /// faulting access itself lives in a helper function instead of
    /// main(). Dynamic detectors are oblivious to function boundaries;
    /// the static analyzer needs interprocedural summaries to see these.
    bool crossFunction = false;
    /// Human-readable summary, e.g. "heap overflow write, 1 past end".
    std::string description;

    bool injected() const { return mutator != MutatorKind::none; }
    BugClass bugClass() const
    {
        return kind == ErrorKind::none ? BugClass::unrelated
                                       : bugClassOfError(kind);
    }
};

/**
 * One statement of a generated program. A leaf holds its full text; a
 * block holds a header line (`for (...) {` / `if (...) {`), a body, an
 * optional else-body, and renders its own closing braces. The minimizer
 * removes whole FuzzStmts and recurses into bodies.
 */
struct FuzzStmt
{
    std::string text;
    bool isBlock = false;
    std::vector<FuzzStmt> body;
    bool hasElse = false;
    std::vector<FuzzStmt> elseBody;
    /// Injected-bug statements are pinned: the minimizer must not remove
    /// or rewrite them, or a missed-bug disagreement would "survive"
    /// trivially in a program that no longer contains the planted bug.
    bool pinned = false;

    static FuzzStmt
    leaf(std::string text)
    {
        FuzzStmt s;
        s.text = std::move(text);
        return s;
    }
};

/**
 * A generated program in structured form: the prelude (checksum
 * helpers, globals, helper functions — one entry per declaration), the
 * statements of main(), and the planted-bug ground truth. The fixed
 * main() header declares `v0`; the fixed epilogue prints the checksum
 * and `v0` and returns `acc % 126`.
 */
struct FuzzProgram
{
    uint64_t seed = 0;
    std::vector<std::string> prelude;
    std::vector<FuzzStmt> stmts;
    InjectedBug bug;

    /** Render the complete C source. */
    std::string render() const;
    /** Statements in main(), counting nested ones. */
    unsigned statementCount() const;
};

/** Size knobs of the generator grammar. */
struct GeneratorOptions
{
    int minGlobals = 1;
    int maxGlobals = 3;
    int minFunctions = 1;
    int maxFunctions = 3;
    int minStatements = 4;
    int maxStatements = 10;
    /// Maximum statement nesting depth inside main().
    int maxDepth = 3;
    /// Maximum recursive expression depth.
    int maxExprDepth = 4;
};

/**
 * Seeded grammar + type-directed expression generator. One instance
 * generates one program (the Rng state is consumed by generate()).
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed, GeneratorOptions options = {});

    /** Generate a well-defined program for this generator's seed. */
    FuzzProgram generate();

  private:
    /// A scalar variable in scope (type int or unsigned int). Loop
    /// counters are visible to expressions but never assignment targets
    /// — a generated `i1 = -500;` inside the loop body would turn a
    /// bounded loop into a multi-million-step one.
    struct Scalar
    {
        std::string name;
        bool isUnsigned = false;
        bool assignable = true;
    };
    /// A fixed-length int array in scope.
    struct Array
    {
        std::string name;
        int length = 1;
    };

    std::string emitFunction(int index);
    FuzzStmt statement(int depth);
    std::vector<FuzzStmt> blockBody(int depth);
    std::string expr(bool want_unsigned, int depth);
    std::string intExpr(int depth) { return expr(false, depth); }
    std::string safeIndex(const Array &array, int depth);
    std::string binop();
    std::string cmpop();

    Rng rng_;
    GeneratorOptions options_;
    int functions_ = 0;
    std::vector<Scalar> scalars_;
    std::vector<Array> arrays_;
    std::vector<Array> globalArrays_;
    int nextScalar_ = 0;
    int nextArray_ = 0;
    int nextLoop_ = 0;
};

} // namespace sulong

#endif // MS_FUZZ_GENERATOR_H
