/**
 * @file
 * Campaign driver: seed ranges, parallel oracle runs, survivor triage.
 *
 * A campaign maps a seed range through generate -> (maybe) inject ->
 * differential oracle, minimizes every survivor while preserving its
 * disagreement signature, and dedups survivors on
 * (BugClass x DisagreementKind x engine x minimized shape hash) so one
 * root cause shows up once no matter how many seeds hit it.
 *
 * Determinism contract: everything a seed produces — program, oracle
 * verdicts, minimized survivor — is a pure function of (seed, options),
 * results merge in seed order, and the deterministic report excludes
 * wall-clock, so reports are byte-identical across --jobs levels, hosts,
 * and shard assignments. CI leans on this: a nightly shard is fully
 * reproducible from its seed range alone.
 */

#ifndef MS_FUZZ_CAMPAIGN_H
#define MS_FUZZ_CAMPAIGN_H

#include <array>
#include <map>

#include "fuzz/minimizer.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"

namespace sulong
{

struct CampaignOptions
{
    uint64_t seedBegin = 1;
    uint64_t seedCount = 1000;
    /// Worker threads; 1 runs inline on the caller, 0 means one per
    /// hardware thread. Never affects results, only wall-clock.
    unsigned jobs = 1;
    /// Percentage of seeds that receive a bug-injection mutator
    /// (seed-determined, so the clean/buggy split is reproducible).
    unsigned bugRatioPct = 50;
    /// Shrink survivors (statement removal + expression collapsing)
    /// while preserving the disagreement signature.
    bool minimize = true;
    GeneratorOptions generator;
    OracleOptions oracle;
};

/** One deduplicated disagreement, minimized and reproducible. */
struct Survivor
{
    uint64_t seed = 0;
    MutatorKind mutator = MutatorKind::none;
    BugClass bugClass = BugClass::unrelated;
    DisagreementKind kind = DisagreementKind::none;
    /// Engine whose verdict disagreed ("managed", "asan", "static", ...).
    std::string engine;
    std::string detail;
    /// FNV-1a 64 over the literal-canonicalized minimized source.
    uint64_t shapeHash = 0;
    /// Minimized source (original source when minimization is off).
    std::string source;
    MinimizeStats minimizeStats;
    /// Seed-distinct duplicates collapsed into this survivor.
    unsigned duplicates = 0;
};

/** Aggregated campaign outcome. */
struct CampaignReport
{
    uint64_t seedBegin = 0;
    uint64_t seedCount = 0;
    unsigned bugRatioPct = 0;
    unsigned jobsUsed = 0;

    uint64_t programs = 0;
    uint64_t cleanPrograms = 0;
    uint64_t injectedPrograms = 0;
    uint64_t compileErrors = 0;
    /// Injected bugs the managed engine reported with the exact
    /// ground-truth kind (the acceptance bar is == injectedPrograms).
    uint64_t injectedDetectedManaged = 0;
    /// Exact-kind detections per engine per BugClass (statistics — the
    /// industrialized Table 1/2).
    std::map<std::string, std::array<uint64_t, 4>> detectionsByEngine;
    uint64_t staticHits = 0;
    uint64_t staticDefinite = 0;
    uint64_t staticMaybe = 0;
    /// Capability split: injected bugs that span a call boundary
    /// (allocation, free, or access in a helper) vs those entirely in
    /// main(). Dynamic detection is boundary-blind; the static
    /// analyzer's hit rate on the cross-function slice measures its
    /// interprocedural summaries.
    uint64_t crossFunctionPrograms = 0;
    uint64_t staticHitsCrossFunction = 0;
    /// Disagreement verdicts by kind, before dedup (index:
    /// DisagreementKind).
    std::array<uint64_t, kDisagreementKindCount> disagreementsByKind{};

    std::vector<Survivor> survivors;
    uint64_t duplicatesCollapsed = 0;
    uint64_t minimizerPredicateRuns = 0;

    /// Wall-clock of the whole campaign; never part of the
    /// deterministic report.
    double wallMs = 0;

    /// Disagreement verdicts + compile failures: the number CI gates
    /// on. Every one of these is a bug in an engine, the analyzer, the
    /// front end, or the generator's well-definedness argument.
    uint64_t unexplained() const;

    /** Deterministic campaign report (FUZZ_report.json/v1): identical
     *  bytes for identical (seed range, options), any --jobs. */
    std::string toJson() const;
    /** BENCH_fuzz.json/v1 for the CI perf/quality gate (adds wall-clock
     *  and throughput, so NOT jobs-deterministic). */
    std::string toBenchJson() const;
    /** Candidate corpus entries (one per reproducing survivor) in the
     *  corpus JSON interchange format. */
    std::string corpusCandidatesJson() const;
    /** Human-readable summary table. */
    std::string formatSummary(bool verbose = false) const;
};

/**
 * The pure per-seed pipeline: generate the seed's program and apply its
 * seed-determined mutator. Exposed so the CLI can re-render any seed
 * (`fuzz_runner --print-seed N`) and tests can pin programs.
 */
FuzzProgram generateSeedProgram(uint64_t seed,
                                const CampaignOptions &options);

/** Canonical shape hash: FNV-1a 64 over @p source with every decimal
 *  literal collapsed, so seed-distinct clones of one shape collide. */
uint64_t shapeHash(const std::string &source);

/** Run the campaign over options.seedCount seeds. */
CampaignReport runCampaign(const CampaignOptions &options);

} // namespace sulong

#endif // MS_FUZZ_CAMPAIGN_H
