#include "fuzz/oracle.h"

namespace sulong
{

const char *
disagreementKindName(DisagreementKind kind)
{
    switch (kind) {
      case DisagreementKind::none:                  return "none";
      case DisagreementKind::missedBug:             return "missed-bug";
      case DisagreementKind::falsePositive:         return "false-positive";
      case DisagreementKind::outputDivergence:      return "output-divergence";
      case DisagreementKind::terminationDivergence:
        return "termination-divergence";
    }
    return "?";
}

Expectation
expectedDetection(ToolKind tool, const InjectedBug &bug)
{
    switch (tool) {
      case ToolKind::safeSulong:
        // The paper's thesis: the managed execution model detects every
        // class, including the far out-of-bounds accesses redzones miss.
        return Expectation::mustDetect;
      case ToolKind::clang:
        // Plain native execution detects nothing by contract; a
        // simulated segfault is incidental.
        return Expectation::mayDetect;
      case ToolKind::asan:
        switch (bug.kind) {
          case ErrorKind::outOfBounds:
            // Redzones on all three storage classes, but only adjacent —
            // and only when the access survives to run time: constant
            // global accesses fold away before instrumentation (Fig. 13).
            return bug.adjacent && !bug.foldable ? Expectation::mustDetect
                                                 : Expectation::mayDetect;
          case ErrorKind::useAfterFree:
          case ErrorKind::doubleFree:
          case ErrorKind::invalidFree:
            return Expectation::mustDetect;
          default: // uninit reads (no V-bits), null deref (plain fault)
            return Expectation::mayDetect;
        }
      case ToolKind::memcheck:
        switch (bug.kind) {
          case ErrorKind::outOfBounds:
            // Heap redzones only: stack/global accesses are not
            // instrumented (the classic Memcheck blind spot).
            return bug.storage == StorageKind::heap && bug.adjacent
                ? Expectation::mustDetect
                : Expectation::mayDetect;
          case ErrorKind::useAfterFree:
          case ErrorKind::doubleFree:
          case ErrorKind::invalidFree:
          case ErrorKind::uninitRead:
            return Expectation::mustDetect;
          default:
            return Expectation::mayDetect;
        }
    }
    return Expectation::mayDetect;
}

OracleOptions::OracleOptions()
{
    // Structural budgets only — no wall-clock — so an oracle verdict is
    // identical on every host and worker count. Generous for any
    // generated program (bounded loops, no recursion).
    limits.maxSteps = 20'000'000;
    limits.maxCallDepth = 256;
    limits.maxHeapBytes = 64ull << 20;
    limits.maxHeapAllocations = 100'000;
    limits.maxOutputBytes = 1u << 20;
    limits.deadlineMs = 0;
    // Ground truth includes the uninit-read mutator, so the managed
    // engine runs with its uninitialized-read detection on.
    managed.detectUninitReads = true;
}

namespace
{

struct DynamicRun
{
    const char *name;
    ToolKind tool;
    ExecutionResult result;
    bool compiled = true;
};

EngineVerdict
judgeInjected(const DynamicRun &run, const InjectedBug &bug)
{
    EngineVerdict v;
    v.engine = run.name;
    v.reported = run.result.bug.kind;
    v.termination = run.result.termination;
    v.exitCode = run.result.exitCode;
    v.detected = run.result.termination == TerminationKind::normal &&
        run.result.bug.kind == bug.kind;
    if (expectedDetection(run.tool, bug) == Expectation::mustDetect &&
        !v.detected) {
        v.disagreement = DisagreementKind::missedBug;
        v.detail = std::string(run.name) + " expected to detect " +
            errorKindName(bug.kind) + " (" + bug.description +
            "), got " +
            (run.result.termination != TerminationKind::normal
                 ? terminationKindName(run.result.termination)
                 : errorKindName(run.result.bug.kind));
    }
    return v;
}

EngineVerdict
judgeClean(const DynamicRun &run, const ExecutionResult &reference)
{
    EngineVerdict v;
    v.engine = run.name;
    v.reported = run.result.bug.kind;
    v.termination = run.result.termination;
    v.exitCode = run.result.exitCode;
    if (run.result.bug.kind != ErrorKind::none) {
        v.disagreement = DisagreementKind::falsePositive;
        v.detail = std::string(run.name) + " reported " +
            run.result.bug.toString() + " on a well-defined program";
        return v;
    }
    if (run.result.termination != TerminationKind::normal ||
        run.result.exitCode != reference.exitCode) {
        v.disagreement = DisagreementKind::terminationDivergence;
        v.detail = std::string(run.name) + " ended with " +
            terminationKindName(run.result.termination) + " exit " +
            std::to_string(run.result.exitCode) + ", reference exit " +
            std::to_string(reference.exitCode);
        return v;
    }
    if (run.result.output != reference.output) {
        v.disagreement = DisagreementKind::outputDivergence;
        v.detail = std::string(run.name) + " stdout {" +
            run.result.output + "} != reference {" + reference.output +
            "}";
    }
    return v;
}

} // namespace

const EngineVerdict *
OracleReport::firstDisagreement() const
{
    for (const EngineVerdict &v : verdicts)
        if (v.disagreement != DisagreementKind::none)
            return &v;
    return nullptr;
}

OracleReport
runOracle(const FuzzProgram &program, const OracleOptions &options,
          CompileCache *cache)
{
    OracleReport report;
    report.seed = program.seed;
    report.bug = program.bug;
    std::string source = program.render();

    // The managed reference runs first (three times: cold tier-1
    // profile, eagerly tier-2-compiled, and eagerly tier-3-threaded),
    // then the native/instrumented engines. The tier-3 arm is the
    // differential check that threaded dispatch, superblock fusion,
    // and deopt never change what a program computes or reports.
    ToolConfig managed = ToolConfig::make(ToolKind::safeSulong);
    managed.managed = options.managed;
    ToolConfig managed_tier2 = managed;
    managed_tier2.managed.enableTier2 = true;
    managed_tier2.managed.compileThreshold = 1;
    managed_tier2.managed.enableTier3 = false;
    ToolConfig managed_tier3 = managed_tier2;
    managed_tier3.managed.enableTier3 = true;
    managed_tier3.managed.tier3Threshold = 0;
    managed_tier3.managed.inlineSiteMin = 0;

    struct RunSpec
    {
        const char *name;
        ToolConfig config;
    };
    const RunSpec specs[] = {
        {"managed", managed},
        {"managed-tier2", managed_tier2},
        {"managed-tier3", managed_tier3},
        {"native", ToolConfig::make(ToolKind::clang, 0)},
        {"asan", ToolConfig::make(ToolKind::asan, 0)},
        {"memcheck", ToolConfig::make(ToolKind::memcheck, 0)},
    };

    std::vector<DynamicRun> runs;
    for (const RunSpec &spec : specs) {
        DynamicRun run;
        run.name = spec.name;
        run.tool = spec.config.kind;
        PreparedProgram prepared = prepareProgram(source, spec.config,
                                                  cache);
        if (!prepared.ok()) {
            report.compileError = true;
            report.compileErrorDetail = std::string(spec.name) + ": " +
                prepared.compileErrors;
            run.compiled = false;
            runs.push_back(std::move(run));
            continue;
        }
        prepared.engine->limits() = options.limits;
        run.result = prepared.run();
        runs.push_back(std::move(run));
    }

    const ExecutionResult &reference = runs[0].result;
    for (const DynamicRun &run : runs) {
        if (!run.compiled) {
            EngineVerdict v;
            v.engine = run.name;
            v.disagreement = DisagreementKind::terminationDivergence;
            v.detail = std::string(run.name) + " failed to compile";
            report.verdicts.push_back(std::move(v));
            continue;
        }
        report.verdicts.push_back(program.bug.injected()
                                      ? judgeInjected(run, program.bug)
                                      : judgeClean(run, reference));
    }

    if (options.runAnalysis) {
        AnalysisOptions analysis = options.analysis;
        AnalysisReport findings = analyzeSource(source, analysis);
        report.analysisRan = true;
        report.staticDefinite = findings.definiteCount();
        report.staticMaybe = findings.maybeCount();
        EngineVerdict v;
        v.engine = "static";
        for (const StaticFinding &finding : findings.findings) {
            if (finding.kind == program.bug.kind &&
                program.bug.injected()) {
                report.staticHit = true;
                if (finding.confidence == Confidence::definite)
                    v.detected = true;
            }
        }
        if (program.bug.injected()) {
            // Incomplete is fine (maybe/missed findings are statistics);
            // a *definite* finding of a kind the planted bug does not
            // have would be unsound — the base program is well-defined,
            // so the only real fault is the planted one.
            for (const StaticFinding &finding : findings.findings) {
                if (finding.confidence == Confidence::definite &&
                    finding.kind != program.bug.kind) {
                    v.disagreement = DisagreementKind::falsePositive;
                    v.detail = "definite static finding " +
                        finding.toString() +
                        " does not match the planted " +
                        std::string(errorKindName(program.bug.kind));
                    break;
                }
            }
        } else if (report.staticDefinite > 0) {
            v.disagreement = DisagreementKind::falsePositive;
            v.detail = "definite static finding on a well-defined "
                       "program: " +
                findings.byConfidence(Confidence::definite)[0].toString();
        }
        report.verdicts.push_back(std::move(v));
    }
    return report;
}

} // namespace sulong
