#include "fuzz/generator.h"

#include <sstream>

namespace sulong
{

const char *
mutatorKindName(MutatorKind kind)
{
    switch (kind) {
      case MutatorKind::none:         return "none";
      case MutatorKind::oobIndex:     return "oob-index";
      case MutatorKind::useAfterFree: return "use-after-free";
      case MutatorKind::doubleFree:   return "double-free";
      case MutatorKind::uninitRead:   return "uninit-read";
      case MutatorKind::invalidFree:  return "invalid-free";
      case MutatorKind::nullDeref:    return "null-deref";
    }
    return "?";
}

namespace
{

void
renderStmts(std::ostringstream &out, const std::vector<FuzzStmt> &stmts,
            int depth)
{
    std::string indent(static_cast<size_t>(depth) * 4, ' ');
    for (const FuzzStmt &s : stmts) {
        if (!s.isBlock) {
            out << indent << s.text << "\n";
            continue;
        }
        out << indent << s.text << "\n";
        renderStmts(out, s.body, depth + 1);
        if (s.hasElse) {
            out << indent << "} else {\n";
            renderStmts(out, s.elseBody, depth + 1);
        }
        out << indent << "}\n";
    }
}

unsigned
countStmts(const std::vector<FuzzStmt> &stmts)
{
    unsigned n = 0;
    for (const FuzzStmt &s : stmts) {
        n += 1 + countStmts(s.body);
        if (s.hasElse)
            n += countStmts(s.elseBody);
    }
    return n;
}

} // namespace

std::string
FuzzProgram::render() const
{
    std::ostringstream out;
    for (const std::string &decl : prelude)
        out << decl << "\n";
    out << "int main(void) {\n";
    out << "    int v0 = 11;\n";
    renderStmts(out, stmts, 1);
    out << "    printf(\"%u %d\\n\", acc, v0);\n";
    out << "    return (int)(acc % 126);\n";
    out << "}\n";
    return out.str();
}

unsigned
FuzzProgram::statementCount() const
{
    return countStmts(stmts);
}

ProgramGenerator::ProgramGenerator(uint64_t seed, GeneratorOptions options)
    : rng_(seed), options_(options)
{}

FuzzProgram
ProgramGenerator::generate()
{
    FuzzProgram program;
    // The checksum pair is load-bearing: the epilogue references both,
    // so the minimizer can never strip it (the program stops compiling).
    program.prelude.push_back(
        "static unsigned int acc = 1;\n"
        "static void mix(unsigned int v) { acc = acc * 31 + v; }");

    int n_globals = static_cast<int>(
        rng_.nextRange(options_.minGlobals, options_.maxGlobals));
    for (int i = 0; i < n_globals; i++) {
        int len = static_cast<int>(rng_.nextRange(2, 6));
        std::ostringstream decl;
        decl << "int g" << i << "[" << len << "] = {"
             << rng_.nextRange(-9, 9) << ", " << rng_.nextRange(-9, 9)
             << "};";
        program.prelude.push_back(decl.str());
        std::string name = "g";
        name += std::to_string(i);
        globalArrays_.push_back({std::move(name), len});
    }

    functions_ = static_cast<int>(
        rng_.nextRange(options_.minFunctions, options_.maxFunctions));
    for (int f = 0; f < functions_; f++)
        program.prelude.push_back(emitFunction(f));

    // main() body. v0 is declared by the fixed header.
    scalars_.push_back({"v0", false});
    nextScalar_ = 1;
    int n_stmts = static_cast<int>(
        rng_.nextRange(options_.minStatements, options_.maxStatements));
    for (int i = 0; i < n_stmts; i++)
        program.stmts.push_back(statement(1));
    return program;
}

std::string
ProgramGenerator::emitFunction(int index)
{
    std::ostringstream out;
    out << "static int f" << index << "(int a, int b) {\n";
    out << "    int r = a " << binop() << " (b " << binop() << " "
        << rng_.nextRange(1, 9) << ");\n";
    if (rng_.chance(0.5)) {
        out << "    if (r " << cmpop() << " " << rng_.nextRange(-5, 5)
            << ")\n        r = r " << binop() << " " << rng_.nextRange(1, 7)
            << ";\n";
    }
    if (rng_.chance(0.4)) {
        // Earlier generated functions are callable (no recursion, so
        // every call chain terminates).
        if (index > 0) {
            out << "    r = r ^ f"
                << rng_.nextBelow(static_cast<uint64_t>(index)) << "(r, "
                << rng_.nextRange(-7, 7) << ");\n";
        } else {
            out << "    r = r + " << rng_.nextRange(1, 5) << ";\n";
        }
    }
    out << "    mix((unsigned int)r);\n";
    out << "    return r;\n";
    out << "}";
    return out.str();
}

std::vector<FuzzStmt>
ProgramGenerator::blockBody(int depth)
{
    size_t outer_scalars = scalars_.size();
    size_t outer_arrays = arrays_.size();
    std::vector<FuzzStmt> body;
    int n = static_cast<int>(rng_.nextRange(1, 3));
    for (int i = 0; i < n; i++)
        body.push_back(statement(depth));
    // Names declared in the block go out of scope with it.
    scalars_.resize(outer_scalars);
    arrays_.resize(outer_arrays);
    return body;
}

FuzzStmt
ProgramGenerator::statement(int depth)
{
    switch (rng_.nextBelow(9)) {
      case 0: { // declare a scalar (any scope; tracked per block)
        bool is_unsigned = rng_.chance(0.3);
        std::string name = "v" + std::to_string(nextScalar_++);
        std::string text = std::string(is_unsigned ? "unsigned int " : "int ")
            + name + " = " + expr(is_unsigned, 0) + ";";
        scalars_.push_back({name, is_unsigned});
        return FuzzStmt::leaf(text);
      }
      case 1: { // declare a local array
        int len = static_cast<int>(rng_.nextRange(2, 6));
        std::string name = "a" + std::to_string(nextArray_++);
        std::ostringstream text;
        text << "int " << name << "[" << len << "] = {"
             << rng_.nextRange(-9, 9) << ", " << rng_.nextRange(-9, 9)
             << "};";
        arrays_.push_back({name, len});
        return FuzzStmt::leaf(text.str());
      }
      case 2: { // store through a safe array index
        const Array *target = nullptr;
        if (!arrays_.empty() && rng_.chance(0.5))
            target = &arrays_[rng_.nextBelow(arrays_.size())];
        else if (!globalArrays_.empty())
            target = &globalArrays_[rng_.nextBelow(globalArrays_.size())];
        if (target == nullptr)
            return FuzzStmt::leaf("mix(2u);");
        return FuzzStmt::leaf(target->name + "[" + safeIndex(*target, 0) +
                              "] = " + intExpr(0) + ";");
      }
      case 3: { // assign / compound-assign a scalar (never loop counters)
        std::vector<size_t> targets;
        for (size_t s = 0; s < scalars_.size(); s++)
            if (scalars_[s].assignable)
                targets.push_back(s);
        if (targets.empty())
            return FuzzStmt::leaf("mix(4u);");
        const Scalar &var = scalars_[targets[rng_.nextBelow(targets.size())]];
        static const char *compound[] = {" = ", " += ", " -= ", " ^= "};
        return FuzzStmt::leaf(var.name + compound[rng_.nextBelow(4)] +
                              expr(var.isUnsigned, 0) + ";");
      }
      case 4: { // bounded for loop
        if (depth >= options_.maxDepth)
            return FuzzStmt::leaf("mix(3u);");
        std::string i = "i";
        i += std::to_string(nextLoop_++);
        FuzzStmt loop;
        loop.isBlock = true;
        loop.text = "for (int ";
        loop.text += i;
        loop.text += " = 0; ";
        loop.text += i;
        loop.text += " < ";
        loop.text += std::to_string(rng_.nextRange(1, 6));
        loop.text += "; ";
        loop.text += i;
        loop.text += "++) {";
        scalars_.push_back({i, false, false});
        loop.body = blockBody(depth + 1);
        scalars_.pop_back();
        return loop;
      }
      case 5: { // if / if-else
        if (depth >= options_.maxDepth)
            return FuzzStmt::leaf("mix(5u);");
        FuzzStmt branch;
        branch.isBlock = true;
        branch.text = "if (" + intExpr(0) + " " + cmpop() + " " +
            intExpr(0) + ") {";
        branch.body = blockBody(depth + 1);
        if (rng_.chance(0.6)) {
            branch.hasElse = true;
            branch.elseBody = blockBody(depth + 1);
        }
        return branch;
      }
      case 6: { // while loop over a fresh bounded counter
        if (depth >= options_.maxDepth)
            return FuzzStmt::leaf("mix(9u);");
        std::string w = "w";
        w += std::to_string(nextLoop_++);
        FuzzStmt decl = FuzzStmt::leaf(
            "int " + w + " = " + std::to_string(rng_.nextRange(1, 5)) + ";");
        FuzzStmt loop;
        loop.isBlock = true;
        loop.text = "while (" + w + " > 0) {";
        scalars_.push_back({w, false, false});
        loop.body = blockBody(depth + 1);
        scalars_.pop_back();
        loop.body.push_back(FuzzStmt::leaf(w + " = " + w + " - 1;"));
        // Wrap {decl; loop} in a block so the counter name scopes with
        // its loop and removal stays atomic for the minimizer.
        FuzzStmt wrapper;
        wrapper.isBlock = true;
        wrapper.text = "{";
        wrapper.body.push_back(std::move(decl));
        wrapper.body.push_back(std::move(loop));
        return wrapper;
      }
      case 7: { // call a generated helper
        std::string f = "f" + std::to_string(
            rng_.nextBelow(static_cast<uint64_t>(functions_)));
        return FuzzStmt::leaf("v0 = v0 ^ " + f + "(" + intExpr(0) + ", " +
                              intExpr(0) + ");");
      }
      default: // fold an expression into the checksum
        return FuzzStmt::leaf("mix((unsigned int)(" + intExpr(0) + "));");
    }
}

std::string
ProgramGenerator::safeIndex(const Array &array, int depth)
{
    // Reduce an arbitrary expression modulo the array length: always in
    // bounds, and the cast keeps the reduction on non-negative values.
    return "(unsigned int)(" + intExpr(depth + 1) + ") % " +
        std::to_string(array.length) + "u";
}

std::string
ProgramGenerator::expr(bool want_unsigned, int depth)
{
    // Type-directed synthesis: every alternative yields a well-defined
    // value of the requested type (int or unsigned int).
    const char *cast = want_unsigned ? "(unsigned int)" : "(int)";
    if (depth >= options_.maxExprDepth) {
        return want_unsigned
            ? std::to_string(rng_.nextRange(0, 20)) + "u"
            : std::to_string(rng_.nextRange(-20, 20));
    }
    switch (rng_.nextBelow(8)) {
      case 0: // literal
        return want_unsigned
            ? std::to_string(rng_.nextRange(0, 20)) + "u"
            : std::to_string(rng_.nextRange(-20, 20));
      case 1: { // scalar in scope (cast when types differ)
        if (scalars_.empty())
            return want_unsigned ? "4u" : "4";
        const Scalar &var = scalars_[rng_.nextBelow(scalars_.size())];
        if (var.isUnsigned == want_unsigned)
            return var.name;
        return std::string(cast) + var.name;
      }
      case 2: { // safe array element
        const Array *source = nullptr;
        if (!arrays_.empty() && rng_.chance(0.5))
            source = &arrays_[rng_.nextBelow(arrays_.size())];
        else if (!globalArrays_.empty())
            source = &globalArrays_[rng_.nextBelow(globalArrays_.size())];
        if (source == nullptr)
            return want_unsigned ? "7u" : "7";
        std::string element =
            source->name + "[" + safeIndex(*source, depth) + "]";
        return want_unsigned ? std::string(cast) + element : element;
      }
      case 3: { // guarded division / modulo (divisor >= 1)
        std::string out = "(";
        out += expr(want_unsigned, depth + 1);
        out += rng_.chance(0.5) ? " / " : " % ";
        out += std::to_string(rng_.nextRange(1, 9));
        out += want_unsigned ? "u)" : ")";
        return out;
      }
      case 4: { // masked shift
        return "(" + expr(want_unsigned, depth + 1) +
            (rng_.chance(0.5) ? " << " : " >> ") +
            std::to_string(rng_.nextRange(0, 7)) + ")";
      }
      case 5: { // comparison (an int 0/1; cast for unsigned contexts)
        std::string cmp = "(" + intExpr(depth + 1) + " " + cmpop() + " " +
            intExpr(depth + 1) + ")";
        return want_unsigned ? std::string(cast) + cmp : cmp;
      }
      case 6: { // call a generated helper
        std::string call = "f" +
            std::to_string(rng_.nextBelow(
                static_cast<uint64_t>(functions_ > 0 ? functions_ : 1))) +
            "(" + intExpr(depth + 1) + ", " + intExpr(depth + 1) + ")";
        if (functions_ == 0)
            return want_unsigned ? "1u" : "1";
        return want_unsigned ? std::string(cast) + call : call;
      }
      default: { // binary arithmetic
        std::string out = "(";
        out += expr(want_unsigned, depth + 1);
        out += " ";
        out += binop();
        out += " ";
        out += expr(want_unsigned, depth + 1);
        out += ")";
        return out;
      }
    }
}

std::string
ProgramGenerator::binop()
{
    static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
    return ops[rng_.nextBelow(6)];
}

std::string
ProgramGenerator::cmpop()
{
    static const char *ops[] = {"<", ">", "<=", ">=", "==", "!="};
    return ops[rng_.nextBelow(6)];
}

} // namespace sulong
