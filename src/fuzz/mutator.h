/**
 * @file
 * Bug-injection mutators with recorded ground truth.
 *
 * Each mutator takes a well-defined generated program and plants exactly
 * one memory error of a known BugClass — out-of-bounds index,
 * use-after-free, double free, uninitialized read, invalid free, or NULL
 * dereference — as a self-contained statement sequence spliced into
 * main() at a seeded position. The mutator records the planted bug's
 * ErrorKind / AccessKind / StorageKind / BoundsDirection so the
 * differential oracle can judge every engine against ground truth
 * instead of against each other.
 *
 * Contract: the injected fault is (a) reached unconditionally on the
 * program's only input, (b) the *first* fault the program executes (the
 * base program is well-defined by construction), and (c) adjacent — an
 * out-of-bounds access lands within one element of the object — so
 * redzone-based detectors see it too. The campaign relies on (a)-(b) to
 * treat any engine that misses the bug as a finding about the engine.
 */

#ifndef MS_FUZZ_MUTATOR_H
#define MS_FUZZ_MUTATOR_H

#include "fuzz/generator.h"

namespace sulong
{

/**
 * Plant one bug of @p kind into @p program (a clean generated program),
 * consuming randomness from @p rng to pick the variant (storage class,
 * read vs write, overflow vs underflow) and the splice position. The
 * returned program's `bug` field holds the ground truth.
 */
FuzzProgram injectBug(FuzzProgram program, MutatorKind kind, Rng &rng);

/** The seeded mutator choice used by the campaign: seed-determined
 *  clean/buggy split at @p bug_ratio, uniform over mutators. */
MutatorKind pickMutator(Rng &rng, double bug_ratio);

} // namespace sulong

#endif // MS_FUZZ_MUTATOR_H
