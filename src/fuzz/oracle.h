/**
 * @file
 * Differential oracle: one generated program, every engine, one verdict.
 *
 * Runs a generated program through the four dynamic engines (managed,
 * native, ASan-sim, Memcheck-sim) and the static analyzer, then
 * classifies every result against the program's ground truth:
 *
 *  - Injected-bug programs: an engine *expected* to detect the planted
 *    BugClass (per the capability matrix, the paper's Table 1/2) that
 *    misses it is a `missedBug` disagreement. The managed engine is
 *    expected to detect everything — that is the paper's thesis — so a
 *    managed miss is always a finding.
 *  - Clean programs: all engines must terminate normally with output and
 *    exit code identical to the managed reference. A bug report is a
 *    `falsePositive`, differing stdout is an `outputDivergence`, and a
 *    resource/exit mismatch is a `terminationDivergence`.
 *  - Static findings: a `definite` finding on a clean program violates
 *    the analyzer's soundness contract (the refuter is the adjudicator:
 *    definite means concretely replayed) and reports as `falsePositive`;
 *    on injected programs the analyzer's hit/miss is recorded as
 *    statistics, never as an unexplained disagreement (static analysis
 *    is allowed to be incomplete, not unsound).
 *
 * Every verdict is deterministic: wall-clock never influences the
 * classification (limits are step/heap/depth based by default).
 */

#ifndef MS_FUZZ_ORACLE_H
#define MS_FUZZ_ORACLE_H

#include "fuzz/generator.h"
#include "tools/driver.h"

namespace sulong
{

/** How one engine's result disagrees with ground truth (if it does). */
enum class DisagreementKind : uint8_t
{
    none,
    /// An engine expected to find the planted bug did not (or reported a
    /// different BugClass for it).
    missedBug,
    /// A bug report (or definite static finding) on a clean program.
    falsePositive,
    /// Clean program, stdout differs from the managed reference.
    outputDivergence,
    /// Clean program, exit code or termination differs from the
    /// reference (one engine hit a limit the others did not).
    terminationDivergence,
};

inline constexpr int kDisagreementKindCount = 5;

const char *disagreementKindName(DisagreementKind kind);

/** Per-(engine, BugClass) expectation of the capability matrix. */
enum class Expectation : uint8_t
{
    /// Missing the planted bug is a disagreement (missedBug).
    mustDetect,
    /// Detection is recorded as a statistic; a miss is explained (e.g.
    /// Memcheck-sim on stack out-of-bounds, ASan-sim past the redzone).
    mayDetect,
};

/** The capability matrix: what @p tool is expected to do with @p bug.
 *  Mirrors the detection matrix of the paper's Section 4.1. */
Expectation expectedDetection(ToolKind tool, const InjectedBug &bug);

/** One engine's (or the analyzer's) judged result. */
struct EngineVerdict
{
    /// Display name ("Safe Sulong", "Native -O0", ..., "Static").
    std::string engine;
    /// The engine reported the planted bug with the ground-truth kind.
    bool detected = false;
    /// What the engine reported (kind none = ran clean).
    ErrorKind reported = ErrorKind::none;
    TerminationKind termination = TerminationKind::normal;
    int exitCode = 0;
    DisagreementKind disagreement = DisagreementKind::none;
    /// One-line explanation when disagreement != none.
    std::string detail;
};

/** Everything the oracle concluded about one program. */
struct OracleReport
{
    uint64_t seed = 0;
    InjectedBug bug;
    /// Dynamic engines first (managed, native, asan, memcheck), then
    /// the static analyzer's verdict when analysis ran.
    std::vector<EngineVerdict> verdicts;
    /// Static-analysis statistics (valid when analysisRan).
    bool analysisRan = false;
    unsigned staticDefinite = 0;
    unsigned staticMaybe = 0;
    /// Any finding (definite or maybe) matched the planted bug's kind.
    bool staticHit = false;
    /// The program failed to compile under some configuration — a
    /// front-end/pipeline divergence, counted separately.
    bool compileError = false;
    std::string compileErrorDetail;

    bool
    hasDisagreement() const
    {
        for (const EngineVerdict &v : verdicts)
            if (v.disagreement != DisagreementKind::none)
                return true;
        return false;
    }
    /// First non-none disagreement (the survivor's signature).
    const EngineVerdict *firstDisagreement() const;
};

/** Oracle configuration shared by a whole campaign. */
struct OracleOptions
{
    /// Per-program budget: structural (steps/heap/depth), no wall clock,
    /// so verdicts are host-independent.
    ResourceLimits limits;
    /// Run the static analyzer (with concrete refutation) as the fifth
    /// perspective.
    bool runAnalysis = true;
    AnalysisOptions analysis;
    /// Managed-engine tuning; detectUninitReads is forced on (the
    /// uninit-read mutator is part of ground truth).
    ManagedOptions managed;

    OracleOptions();
};

/** Run @p program under every engine and judge the results. */
OracleReport runOracle(const FuzzProgram &program,
                       const OracleOptions &options,
                       CompileCache *cache = nullptr);

} // namespace sulong

#endif // MS_FUZZ_ORACLE_H
