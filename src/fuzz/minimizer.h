/**
 * @file
 * Greedy statement/expression auto-minimizer for survivors.
 *
 * A survivor (a program some engine disagrees about) is shrunk before
 * being reported: statements are removed greedily to a fixpoint —
 * recursing into loop/branch bodies — then parenthesized subexpressions
 * are collapsed to the constant 1. A candidate is kept only when the
 * caller's predicate still holds (the campaign's predicate re-runs the
 * oracle and requires the same disagreement signature), so minimization
 * can never turn one bug into a different one. The greedy passes repeat
 * until a full sweep changes nothing, which also makes the minimizer
 * idempotent: minimizing a minimized program is a no-op.
 */

#ifndef MS_FUZZ_MINIMIZER_H
#define MS_FUZZ_MINIMIZER_H

#include <functional>

#include "fuzz/generator.h"

namespace sulong
{

/**
 * Does a candidate program still exhibit the property being preserved?
 * Called O(statements + parenthesized spans) times; it must be
 * deterministic (same candidate, same answer).
 */
using MinimizePredicate = std::function<bool(const FuzzProgram &)>;

struct MinimizeStats
{
    unsigned originalStatements = 0;
    unsigned finalStatements = 0;
    size_t originalBytes = 0;
    size_t finalBytes = 0;
    /// Predicate evaluations (each one typically re-runs the oracle).
    unsigned predicateRuns = 0;

    double
    shrinkRatio() const
    {
        return originalBytes == 0
            ? 1.0
            : static_cast<double>(finalBytes) /
                static_cast<double>(originalBytes);
    }
};

/**
 * Greedily shrink @p program while @p keep stays true. @p keep must be
 * true for @p program itself (the caller checks its survivor first).
 */
FuzzProgram minimizeProgram(const FuzzProgram &program,
                            const MinimizePredicate &keep,
                            MinimizeStats *stats = nullptr);

} // namespace sulong

#endif // MS_FUZZ_MINIMIZER_H
