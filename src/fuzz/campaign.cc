#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "obs/json.h"
#include "support/thread_pool.h"
#include "tools/compile_cache.h"

namespace sulong
{

namespace
{

/// Decorrelates the mutator stream from the generator stream: both are
/// seeded from the campaign seed, but must not replay each other.
constexpr uint64_t kMutatorSalt = 0xA5F152F7D3C91E4Bull;

size_t
classIndex(BugClass bug_class)
{
    return static_cast<size_t>(bug_class) < 4
        ? static_cast<size_t>(bug_class) : 3;
}

/** Everything one seed contributes to the merged report. */
struct SeedResult
{
    uint64_t seed = 0;
    InjectedBug bug;
    bool compileError = false;
    bool managedDetected = false;
    /// (engine, detected) for every engine verdict on an injected seed.
    std::vector<std::pair<std::string, bool>> detections;
    unsigned staticDefinite = 0;
    unsigned staticMaybe = 0;
    bool staticHit = false;
    bool analysisRan = false;
    /// Every non-none disagreement verdict (engine, kind, detail).
    struct Flag
    {
        std::string engine;
        DisagreementKind kind = DisagreementKind::none;
        std::string detail;
    };
    std::vector<Flag> flags;
    /// Minimized reproducer for the first disagreement (when any).
    bool hasSurvivor = false;
    Survivor survivor;
};

SeedResult
runSeed(uint64_t seed, const CampaignOptions &options)
{
    SeedResult out;
    out.seed = seed;
    FuzzProgram program = generateSeedProgram(seed, options);
    out.bug = program.bug;

    // One private cache per seed: the five engine runs share compiled
    // pipeline stages (managed/tier-2 share one, native/memcheck
    // another), cutting per-seed compiles roughly in half. Never shared
    // across seeds or workers, so no locking and no cross-seed state.
    CompileCache cache;
    OracleReport report = runOracle(program, options.oracle, &cache);
    out.compileError = report.compileError;
    out.staticDefinite = report.staticDefinite;
    out.staticMaybe = report.staticMaybe;
    out.staticHit = report.staticHit;
    out.analysisRan = report.analysisRan;
    for (const EngineVerdict &v : report.verdicts) {
        if (program.bug.injected())
            out.detections.emplace_back(v.engine, v.detected);
        if (v.engine == "managed")
            out.managedDetected = v.detected;
        if (v.disagreement != DisagreementKind::none)
            out.flags.push_back({v.engine, v.disagreement, v.detail});
    }

    const EngineVerdict *primary = report.firstDisagreement();
    if (primary == nullptr)
        return out;

    // Shrink the survivor while its signature — the same engine flagged
    // with the same disagreement kind — persists. Analysis only re-runs
    // when the static analyzer IS the disagreeing party.
    FuzzProgram shrunk = program;
    MinimizeStats stats;
    stats.originalStatements = program.statementCount();
    stats.originalBytes = program.render().size();
    stats.finalStatements = stats.originalStatements;
    stats.finalBytes = stats.originalBytes;
    if (options.minimize) {
        OracleOptions check_options = options.oracle;
        check_options.runAnalysis = primary->engine == "static";
        std::string sig_engine = primary->engine;
        DisagreementKind sig_kind = primary->disagreement;
        MinimizePredicate keep = [&](const FuzzProgram &candidate) {
            CompileCache candidate_cache;
            OracleReport r = runOracle(candidate, check_options,
                                       &candidate_cache);
            // A candidate that stops compiling trivially "diverges" —
            // never accept one, or every survivor shrinks to garbage.
            if (r.compileError)
                return false;
            for (const EngineVerdict &v : r.verdicts)
                if (v.engine == sig_engine && v.disagreement == sig_kind)
                    return true;
            return false;
        };
        shrunk = minimizeProgram(program, keep, &stats);
    }

    out.hasSurvivor = true;
    out.survivor.seed = seed;
    out.survivor.mutator = program.bug.mutator;
    out.survivor.bugClass = program.bug.bugClass();
    out.survivor.kind = primary->disagreement;
    out.survivor.engine = primary->engine;
    out.survivor.detail = primary->detail;
    out.survivor.source = shrunk.render();
    out.survivor.shapeHash = shapeHash(out.survivor.source);
    out.survivor.minimizeStats = stats;
    return out;
}

std::string
fixed(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return buf;
}

const char *
bugClassKey(size_t index)
{
    static const char *names[] = {"spatial", "temporal", "null-deref",
                                  "other"};
    return names[index < 4 ? index : 3];
}

} // namespace

FuzzProgram
generateSeedProgram(uint64_t seed, const CampaignOptions &options)
{
    ProgramGenerator generator(seed, options.generator);
    FuzzProgram program = generator.generate();
    program.seed = seed;
    Rng mutator_rng(seed ^ kMutatorSalt);
    MutatorKind kind = pickMutator(
        mutator_rng, static_cast<double>(options.bugRatioPct) / 100.0);
    return injectBug(std::move(program), kind, mutator_rng);
}

uint64_t
shapeHash(const std::string &source)
{
    // FNV-1a 64 with every decimal-literal run collapsed to '#': two
    // survivors that differ only in constants (or generated name
    // suffixes) share a shape.
    uint64_t hash = 0xcbf29ce484222325ull;
    bool in_number = false;
    for (char c : source) {
        bool digit = c >= '0' && c <= '9';
        if (digit && in_number)
            continue;
        in_number = digit;
        char feed = digit ? '#' : c;
        hash ^= static_cast<unsigned char>(feed);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
CampaignReport::unexplained() const
{
    uint64_t total = 0;
    for (size_t i = 1; i < disagreementsByKind.size(); i++)
        total += disagreementsByKind[i];
    return total;
}

CampaignReport
runCampaign(const CampaignOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    CampaignReport report;
    report.seedBegin = options.seedBegin;
    report.seedCount = options.seedCount;
    report.bugRatioPct = options.bugRatioPct;

    unsigned jobs = options.jobs == 0 ? ThreadPool::hardwareWorkers()
                                      : options.jobs;
    report.jobsUsed = jobs;

    std::vector<SeedResult> results(options.seedCount);
    auto run_range = [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; i++)
            results[i] = runSeed(options.seedBegin + i, options);
    };
    if (jobs <= 1 || options.seedCount <= 1) {
        run_range(0, options.seedCount);
    } else {
        // Contiguous chunks over the pool; results land in per-seed
        // slots, so the merge below is identical at any worker count.
        uint64_t chunk = std::max<uint64_t>(
            1, options.seedCount / (static_cast<uint64_t>(jobs) * 8));
        ThreadPool pool(jobs);
        std::vector<std::future<void>> pending;
        for (uint64_t lo = 0; lo < options.seedCount; lo += chunk) {
            uint64_t hi = std::min(options.seedCount, lo + chunk);
            pending.push_back(pool.submit([&, lo, hi] {
                run_range(lo, hi);
            }));
        }
        for (auto &f : pending)
            f.get();
    }

    // Deterministic merge in seed order.
    std::map<std::tuple<size_t, int, std::string, uint64_t>, size_t>
        dedup;
    for (SeedResult &r : results) {
        report.programs++;
        if (r.bug.injected()) {
            report.injectedPrograms++;
            if (r.bug.crossFunction) {
                report.crossFunctionPrograms++;
                if (r.analysisRan && r.staticHit)
                    report.staticHitsCrossFunction++;
            }
            if (r.managedDetected)
                report.injectedDetectedManaged++;
            for (auto &[engine, detected] : r.detections)
                report.detectionsByEngine[engine]
                    [classIndex(r.bug.bugClass())] += detected ? 1 : 0;
        } else {
            report.cleanPrograms++;
        }
        if (r.compileError)
            report.compileErrors++;
        if (r.analysisRan) {
            report.staticDefinite += r.staticDefinite;
            report.staticMaybe += r.staticMaybe;
            report.staticHits += r.staticHit ? 1 : 0;
        }
        for (const SeedResult::Flag &flag : r.flags)
            report.disagreementsByKind[static_cast<size_t>(flag.kind)]++;
        if (!r.hasSurvivor)
            continue;
        report.minimizerPredicateRuns +=
            r.survivor.minimizeStats.predicateRuns;
        auto key = std::make_tuple(classIndex(r.survivor.bugClass),
                                   static_cast<int>(r.survivor.kind),
                                   r.survivor.engine,
                                   r.survivor.shapeHash);
        auto [it, inserted] = dedup.emplace(key,
                                            report.survivors.size());
        if (inserted) {
            report.survivors.push_back(std::move(r.survivor));
        } else {
            report.survivors[it->second].duplicates++;
            report.duplicatesCollapsed++;
        }
    }

    report.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return report;
}

namespace
{

double
aggregateShrinkRatio(const std::vector<Survivor> &survivors)
{
    size_t original = 0;
    size_t final_bytes = 0;
    for (const Survivor &s : survivors) {
        original += s.minimizeStats.originalBytes;
        final_bytes += s.minimizeStats.finalBytes;
    }
    return original == 0
        ? 1.0
        : static_cast<double>(final_bytes) / static_cast<double>(original);
}

void
appendCounts(std::ostringstream &out, const CampaignReport &report)
{
    out << "\"programs\": " << report.programs
        << ", \"clean\": " << report.cleanPrograms
        << ", \"injected\": " << report.injectedPrograms
        << ", \"compile_errors\": " << report.compileErrors
        << ", \"injected_detected_managed\": "
        << report.injectedDetectedManaged;
    out << ", \"static\": {\"hits\": " << report.staticHits
        << ", \"definite\": " << report.staticDefinite
        << ", \"maybe\": " << report.staticMaybe << "}";
    out << ", \"cross_function\": {\"programs\": "
        << report.crossFunctionPrograms
        << ", \"static_hits\": " << report.staticHitsCrossFunction << "}";
    out << ", \"disagreements\": {";
    for (size_t i = 1; i < report.disagreementsByKind.size(); i++) {
        if (i > 1)
            out << ", ";
        out << "\"" << disagreementKindName(
                           static_cast<DisagreementKind>(i))
            << "\": " << report.disagreementsByKind[i];
    }
    out << "}, \"unexplained\": " << report.unexplained();
    out << ", \"survivors\": " << report.survivors.size()
        << ", \"duplicates_collapsed\": " << report.duplicatesCollapsed;
    out << ", \"minimizer\": {\"predicate_runs\": "
        << report.minimizerPredicateRuns << ", \"shrink_ratio\": "
        << fixed(aggregateShrinkRatio(report.survivors)) << "}";
}

void
appendSurvivors(std::ostringstream &out, const CampaignReport &report)
{
    out << "\"survivor_list\": [";
    for (size_t i = 0; i < report.survivors.size(); i++) {
        const Survivor &s = report.survivors[i];
        if (i > 0)
            out << ", ";
        out << "{\"seed\": " << s.seed
            << ", \"mutator\": \"" << mutatorKindName(s.mutator)
            << "\", \"bug_class\": \"" << bugClassName(s.bugClass)
            << "\", \"kind\": \"" << disagreementKindName(s.kind)
            << "\", \"engine\": \"" << obs::jsonEscape(s.engine)
            << "\", \"shape_hash\": \"" << std::hex << s.shapeHash
            << std::dec << "\", \"duplicates\": " << s.duplicates
            << ", \"statements\": ["
            << s.minimizeStats.originalStatements << ", "
            << s.minimizeStats.finalStatements << "]"
            << ", \"bytes\": [" << s.minimizeStats.originalBytes << ", "
            << s.minimizeStats.finalBytes << "]"
            << ", \"detail\": \"" << obs::jsonEscape(s.detail)
            << "\", \"source\": \"" << obs::jsonEscape(s.source)
            << "\"}";
    }
    out << "]";
}

} // namespace

std::string
CampaignReport::toJson() const
{
    std::ostringstream out;
    out << "{\"schema\": \"FUZZ_report.json/v1\", \"seed_begin\": "
        << seedBegin << ", \"seed_count\": " << seedCount
        << ", \"bug_ratio_pct\": " << bugRatioPct << ", ";
    appendCounts(out, *this);
    out << ", \"detections\": {";
    bool first_engine = true;
    for (const auto &[engine, counts] : detectionsByEngine) {
        if (!first_engine)
            out << ", ";
        first_engine = false;
        out << "\"" << obs::jsonEscape(engine) << "\": {";
        for (size_t c = 0; c < counts.size(); c++) {
            if (c > 0)
                out << ", ";
            out << "\"" << bugClassKey(c) << "\": " << counts[c];
        }
        out << "}";
    }
    out << "}, ";
    appendSurvivors(out, *this);
    out << "}";
    return out.str();
}

std::string
CampaignReport::toBenchJson() const
{
    double wall_s = wallMs / 1000.0;
    double per_sec = wall_s > 0
        ? static_cast<double>(programs) / wall_s : 0.0;
    std::ostringstream out;
    out << "{\"schema\": \"BENCH_fuzz.json/v1\", \"seed_begin\": "
        << seedBegin << ", \"seed_count\": " << seedCount
        << ", \"bug_ratio_pct\": " << bugRatioPct
        << ", \"jobs\": " << jobsUsed
        << ", \"wall_ms\": " << fixed(wallMs)
        << ", \"programs_per_sec\": " << fixed(per_sec) << ", ";
    appendCounts(out, *this);
    out << "}";
    return out.str();
}

std::string
CampaignReport::corpusCandidatesJson() const
{
    // Survivors in the corpus interchange shape: enough ground truth to
    // hand-promote one into src/corpus/ (see README, "fuzzing
    // campaigns") after the underlying engine bug is understood.
    std::ostringstream out;
    out << "{\"schema\": \"FUZZ_corpus_candidates.json/v1\", "
        << "\"entries\": [";
    for (size_t i = 0; i < survivors.size(); i++) {
        const Survivor &s = survivors[i];
        if (i > 0)
            out << ", ";
        out << "{\"id\": \"fuzz-" << mutatorKindName(s.mutator) << "-seed"
            << s.seed << "\", \"description\": \""
            << obs::jsonEscape(s.detail)
            << "\", \"bug_class\": \"" << bugClassName(s.bugClass)
            << "\", \"disagreement\": \"" << disagreementKindName(s.kind)
            << "\", \"engine\": \"" << obs::jsonEscape(s.engine)
            << "\", \"source\": \"" << obs::jsonEscape(s.source)
            << "\"}";
    }
    out << "]}";
    return out.str();
}

std::string
CampaignReport::formatSummary(bool verbose) const
{
    std::ostringstream out;
    out << "Fuzz campaign: seeds [" << seedBegin << ", "
        << seedBegin + seedCount << "), " << programs << " programs ("
        << cleanPrograms << " clean, " << injectedPrograms
        << " injected), " << jobsUsed << " worker(s), "
        << fixed(wallMs) << " ms";
    if (wallMs > 0) {
        out << " (" << fixed(static_cast<double>(programs) /
                             (wallMs / 1000.0))
            << " programs/s)";
    }
    out << "\n";
    out << "  managed detection: " << injectedDetectedManaged << "/"
        << injectedPrograms << " injected bugs\n";
    out << "  static analyzer:   " << staticHits << " hit(s), "
        << staticDefinite << " definite, " << staticMaybe
        << " maybe finding(s)\n";
    out << "  cross-function:    " << staticHitsCrossFunction << "/"
        << crossFunctionPrograms
        << " call-boundary bugs hit statically\n";
    for (const auto &[engine, counts] : detectionsByEngine) {
        out << "  " << engine << " exact-kind detections:";
        for (size_t c = 0; c < counts.size(); c++)
            out << " " << bugClassKey(c) << "=" << counts[c];
        out << "\n";
    }
    out << "  disagreements:";
    for (size_t i = 1; i < disagreementsByKind.size(); i++)
        out << " " << disagreementKindName(
                          static_cast<DisagreementKind>(i))
            << "=" << disagreementsByKind[i];
    out << " (unexplained " << unexplained() << ")\n";
    out << "  survivors: " << survivors.size() << " unique ("
        << duplicatesCollapsed << " duplicate(s) collapsed, "
        << minimizerPredicateRuns << " minimizer oracle runs)\n";
    if (verbose) {
        for (const Survivor &s : survivors) {
            out << "--- seed " << s.seed << " [" << s.engine << " "
                << disagreementKindName(s.kind) << ", "
                << bugClassName(s.bugClass) << ", x"
                << (s.duplicates + 1) << "] " << s.detail << "\n";
            out << s.source;
        }
    }
    return out.str();
}

} // namespace sulong
