#include "fuzz/minimizer.h"

namespace sulong
{

namespace
{

bool
check(const FuzzProgram &program, const MinimizePredicate &keep,
      MinimizeStats *stats)
{
    if (stats != nullptr)
        stats->predicateRuns++;
    return keep(program);
}

/** @return true when @p stmt or anything nested in it is pinned. */
bool
containsPinned(const FuzzStmt &stmt)
{
    if (stmt.pinned)
        return true;
    for (const FuzzStmt &s : stmt.body)
        if (containsPinned(s))
            return true;
    for (const FuzzStmt &s : stmt.elseBody)
        if (containsPinned(s))
            return true;
    return false;
}

bool
anyPinned(const std::vector<FuzzStmt> &stmts)
{
    for (const FuzzStmt &s : stmts)
        if (containsPinned(s))
            return true;
    return false;
}

/** Remove statements greedily, last to first, recursing into bodies. */
bool
removeStatements(std::vector<FuzzStmt> &stmts, FuzzProgram &program,
                 const MinimizePredicate &keep, MinimizeStats *stats)
{
    bool any = false;
    for (size_t i = stmts.size(); i-- > 0;) {
        if (!containsPinned(stmts[i])) {
            FuzzStmt saved = std::move(stmts[i]);
            stmts.erase(stmts.begin() + static_cast<ptrdiff_t>(i));
            if (check(program, keep, stats)) {
                any = true;
                continue;
            }
            stmts.insert(stmts.begin() + static_cast<ptrdiff_t>(i),
                         std::move(saved));
        }
        FuzzStmt &kept = stmts[i];
        if (!kept.isBlock)
            continue;
        if (kept.hasElse && !anyPinned(kept.elseBody)) {
            // Dropping just the else-branch keeps the then-body alive.
            std::vector<FuzzStmt> saved_else = std::move(kept.elseBody);
            kept.hasElse = false;
            kept.elseBody.clear();
            if (check(program, keep, stats)) {
                any = true;
            } else {
                kept.hasElse = true;
                kept.elseBody = std::move(saved_else);
            }
        }
        any |= removeStatements(kept.body, program, keep, stats);
        if (kept.hasElse)
            any |= removeStatements(kept.elseBody, program, keep, stats);
    }
    return any;
}

/** Drop whole prelude declarations (globals, helper functions). The
 *  checksum helpers survive because the epilogue references them: a
 *  candidate without them no longer compiles and the predicate (which
 *  re-runs the oracle) rejects it. */
bool
removePrelude(FuzzProgram &program, const MinimizePredicate &keep,
              MinimizeStats *stats)
{
    bool any = false;
    for (size_t i = program.prelude.size(); i-- > 0;) {
        std::string saved = std::move(program.prelude[i]);
        program.prelude.erase(program.prelude.begin() +
                              static_cast<ptrdiff_t>(i));
        if (check(program, keep, stats)) {
            any = true;
            continue;
        }
        program.prelude.insert(program.prelude.begin() +
                                   static_cast<ptrdiff_t>(i),
                               std::move(saved));
    }
    return any;
}

/** @return the index just past the parenthesis group opening at @p open,
 *  or std::string::npos when unbalanced. */
size_t
matchParen(const std::string &text, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < text.size(); i++) {
        if (text[i] == '(')
            depth++;
        else if (text[i] == ')' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

/** Collapse parenthesized subexpressions of one statement text to the
 *  constant 1, left to right, re-scanning after each success. */
bool
simplifyText(std::string &text, FuzzProgram &program,
             const MinimizePredicate &keep, MinimizeStats *stats)
{
    bool any = false;
    size_t from = 0;
    while (true) {
        size_t open = text.find('(', from);
        if (open == std::string::npos)
            return any;
        size_t end = matchParen(text, open);
        if (end == std::string::npos)
            return any;
        std::string inner = text.substr(open + 1, end - open - 2);
        // Skip casts ("(int)x" -> "1x" never compiles) and spans already
        // minimal.
        if (inner == "int" || inner == "unsigned int" || inner == "void" ||
            inner == "1") {
            from = open + 1;
            continue;
        }
        std::string saved = text;
        text = text.substr(0, open) + "1" + text.substr(end);
        if (check(program, keep, stats)) {
            any = true;
            from = open; // re-scan from the replacement
        } else {
            text = std::move(saved);
            from = open + 1; // descend into the group
        }
    }
}

bool
simplifyStatements(std::vector<FuzzStmt> &stmts, FuzzProgram &program,
                   const MinimizePredicate &keep, MinimizeStats *stats)
{
    bool any = false;
    for (FuzzStmt &stmt : stmts) {
        if (!stmt.pinned)
            any |= simplifyText(stmt.text, program, keep, stats);
        if (stmt.isBlock) {
            any |= simplifyStatements(stmt.body, program, keep, stats);
            if (stmt.hasElse)
                any |= simplifyStatements(stmt.elseBody, program, keep,
                                          stats);
        }
    }
    return any;
}

} // namespace

FuzzProgram
minimizeProgram(const FuzzProgram &program, const MinimizePredicate &keep,
                MinimizeStats *stats)
{
    FuzzProgram current = program;
    if (stats != nullptr) {
        stats->originalStatements = current.statementCount();
        stats->originalBytes = current.render().size();
    }
    // Every accepted change strictly shrinks the rendered program, so
    // the sweep loop terminates; a final sweep with no changes means a
    // re-run would change nothing either (idempotence).
    bool changed = true;
    while (changed) {
        changed = false;
        changed |= removeStatements(current.stmts, current, keep, stats);
        changed |= removePrelude(current, keep, stats);
        changed |= simplifyStatements(current.stmts, current, keep, stats);
    }
    if (stats != nullptr) {
        stats->finalStatements = current.statementCount();
        stats->finalBytes = current.render().size();
    }
    return current;
}

} // namespace sulong
