#include "fuzz/mutator.h"

namespace sulong
{

namespace
{

/**
 * Splice @p snippet into main() at a seeded top-level position, so the
 * fault is reached unconditionally (never under a generated branch).
 */
void
splice(FuzzProgram &program, std::vector<FuzzStmt> snippet, Rng &rng)
{
    size_t at = rng.nextBelow(program.stmts.size() + 1);
    program.stmts.insert(program.stmts.begin() +
                             static_cast<ptrdiff_t>(at),
                         std::make_move_iterator(snippet.begin()),
                         std::make_move_iterator(snippet.end()));
}

/** A pinned leaf: part of the planted bug, immune to the minimizer. */
FuzzStmt
L(std::string text)
{
    FuzzStmt s = FuzzStmt::leaf(std::move(text));
    s.pinned = true;
    return s;
}

std::string
num(int64_t v)
{
    return std::to_string(v);
}

void
injectOobIndex(FuzzProgram &program, Rng &rng)
{
    // Variant space: storage x access x direction (+ a "far" overflow
    // that skips past any adjacent redzone — the paper's ASan miss).
    int storage_pick = static_cast<int>(rng.nextBelow(3));
    bool is_write = rng.chance(0.5);
    bool underflow = rng.chance(0.3);
    bool far = !underflow && rng.chance(0.25);
    int len = static_cast<int>(rng.nextRange(2, 5));
    int64_t index = underflow ? -1 : (far ? len + 8 : len);

    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::oobIndex;
    bug.kind = ErrorKind::outOfBounds;
    bug.access = is_write ? AccessKind::write : AccessKind::read;
    bug.direction = underflow ? BoundsDirection::underflow
                              : BoundsDirection::overflow;
    bug.adjacent = !far;

    std::vector<FuzzStmt> snippet;
    std::string name;
    switch (storage_pick) {
      case 0: { // heap
        bug.storage = StorageKind::heap;
        name = "fzh";
        // Half the heap variants allocate in a helper function: the
        // bug now spans a call boundary, which dynamic detectors do
        // not notice but the static analyzer only tracks with
        // interprocedural allocation summaries.
        if (rng.chance(0.5)) {
            bug.crossFunction = true;
            program.prelude.push_back(
                "static int *fz_mk(void) { return malloc(sizeof(int) * " +
                num(len) + "); }");
            snippet.push_back(L("int *fzh = fz_mk();"));
        } else {
            snippet.push_back(L("int *fzh = malloc(sizeof(int) * " +
                                num(len) + ");"));
        }
        snippet.push_back(L("for (int fzi = 0; fzi < " + num(len) +
                            "; fzi++) fzh[fzi] = fzi + 1;"));
        break;
      }
      case 1: { // stack
        bug.storage = StorageKind::stack;
        name = "fzs";
        snippet.push_back(L("int fzs[" + num(len) + "] = {"
                            + num(rng.nextRange(1, 9)) + ", "
                            + num(rng.nextRange(1, 9)) + "};"));
        break;
      }
      default: { // global (appended last, so both neighbours are padded)
        bug.storage = StorageKind::global;
        name = "fzg";
        program.prelude.push_back("int fzg[" + num(len) + "] = {"
                                  + num(rng.nextRange(1, 9)) + ", "
                                  + num(rng.nextRange(1, 9)) + "};");
        break;
      }
    }
    // A constant index into a global folds away in the native pipeline
    // before instrumentation (Fig. 13) — half the global variants route
    // the index through a variable the O0 pipeline cannot fold, so the
    // redzone check actually fires.
    std::string index_expr = num(index);
    if (bug.storage == StorageKind::global) {
        bug.foldable = rng.chance(0.5);
        if (!bug.foldable) {
            snippet.push_back(L("int fzj = " + num(index) + ";"));
            index_expr = "fzj";
        }
    }
    // Some non-global variants move the faulting access itself into a
    // helper (the corrupting function differs from the allocating one).
    // Globals keep the access in main() so the foldable-address
    // expectation stays meaningful.
    if (bug.storage != StorageKind::global && rng.chance(0.25)) {
        bug.crossFunction = true;
        if (is_write) {
            program.prelude.push_back(
                "static void fz_poke(int *p, int i) { p[i] = 42; }");
            snippet.push_back(L("fz_poke(" + name + ", " + index_expr +
                                ");"));
        } else {
            program.prelude.push_back(
                "static int fz_peek(int *p, int i) { return p[i]; }");
            snippet.push_back(L("mix((unsigned int)fz_peek(" + name +
                                ", " + index_expr + "));"));
        }
    } else {
        std::string access = name + "[" + index_expr + "]";
        if (is_write)
            snippet.push_back(L(access + " = 42;"));
        else
            snippet.push_back(L("mix((unsigned int)" + access + ");"));
    }
    if (bug.storage == StorageKind::heap)
        snippet.push_back(L("free(fzh);"));

    bug.description = std::string(storageKindName(bug.storage)) + " " +
        (underflow ? "underflow" : (far ? "far overflow" : "overflow")) +
        " " + (is_write ? "write" : "read") + " at index " + num(index) +
        " of " + num(len) +
        (bug.foldable ? " (constant address, folds before asan)" : "") +
        (bug.crossFunction ? " (cross-function)" : "");
    splice(program, std::move(snippet), rng);
}

void
injectUseAfterFree(FuzzProgram &program, Rng &rng)
{
    bool is_write = rng.chance(0.5);
    int len = static_cast<int>(rng.nextRange(1, 4));
    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::useAfterFree;
    bug.kind = ErrorKind::useAfterFree;
    bug.access = is_write ? AccessKind::write : AccessKind::read;
    bug.storage = StorageKind::heap;

    std::vector<FuzzStmt> snippet;
    snippet.push_back(L("int *fzu = malloc(sizeof(int) * " + num(len) +
                        ");"));
    snippet.push_back(L("fzu[0] = " + num(rng.nextRange(1, 9)) + ";"));
    // Half the variants free through a helper function: the temporal
    // bug now spans a call boundary (the static analyzer needs the
    // callee's may-free effect to see the dangling use).
    if (rng.chance(0.5)) {
        bug.crossFunction = true;
        program.prelude.push_back(
            "static void fz_drop(int *p) { free(p); }");
        snippet.push_back(L("fz_drop(fzu);"));
    } else {
        snippet.push_back(L("free(fzu);"));
    }
    if (is_write)
        snippet.push_back(L("fzu[0] = 7;"));
    else
        snippet.push_back(L("mix((unsigned int)fzu[0]);"));
    bug.description = std::string("heap ") +
        (is_write ? "write" : "read") + " after free" +
        (bug.crossFunction ? " (freed in helper)" : "");
    splice(program, std::move(snippet), rng);
}

void
injectDoubleFree(FuzzProgram &program, Rng &rng)
{
    int len = static_cast<int>(rng.nextRange(1, 4));
    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::doubleFree;
    bug.kind = ErrorKind::doubleFree;
    bug.access = AccessKind::free;
    bug.storage = StorageKind::heap;
    bug.description = "free() called twice on one block";

    std::vector<FuzzStmt> snippet;
    snippet.push_back(L("int *fzd = malloc(sizeof(int) * " + num(len) +
                        ");"));
    snippet.push_back(L("fzd[0] = " + num(rng.nextRange(1, 9)) + ";"));
    snippet.push_back(L("mix((unsigned int)fzd[0]);"));
    snippet.push_back(L("free(fzd);"));
    snippet.push_back(L("free(fzd);"));
    splice(program, std::move(snippet), rng);
}

void
injectUninitRead(FuzzProgram &program, Rng &rng)
{
    // The uninitialized value flows into a branch: that is the shape the
    // Memcheck-style V-bit tracker reports ("conditional jump depends
    // on uninitialised value"), and the managed object model flags the
    // read itself.
    bool heap = rng.chance(0.5);
    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::uninitRead;
    bug.kind = ErrorKind::uninitRead;
    bug.access = AccessKind::read;
    bug.storage = heap ? StorageKind::heap : StorageKind::stack;
    bug.description = std::string(heap ? "heap" : "stack") +
        " read of an uninitialized int";

    std::vector<FuzzStmt> snippet;
    if (heap) {
        snippet.push_back(L("int *fzn = malloc(sizeof(int) * 2);"));
        snippet.push_back(L("if (fzn[0] > 0) mix(1u); else mix(2u);"));
        snippet.push_back(L("free(fzn);"));
    } else {
        snippet.push_back(L("int fzn[2];"));
        snippet.push_back(L("if (fzn[0] > 0) mix(1u); else mix(2u);"));
    }
    splice(program, std::move(snippet), rng);
}

void
injectInvalidFree(FuzzProgram &program, Rng &rng)
{
    bool interior = rng.chance(0.5);
    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::invalidFree;
    bug.kind = ErrorKind::invalidFree;
    bug.access = AccessKind::free;
    bug.storage = interior ? StorageKind::heap : StorageKind::stack;

    std::vector<FuzzStmt> snippet;
    if (interior) {
        bug.description = "free() of an interior heap pointer";
        snippet.push_back(L("int *fzp = malloc(sizeof(int) * 4);"));
        snippet.push_back(L("fzp[1] = " + num(rng.nextRange(1, 9)) + ";"));
        snippet.push_back(L("free(fzp + 1);"));
    } else {
        bug.description = "free() of a stack address";
        snippet.push_back(L("int fzx = " + num(rng.nextRange(1, 9)) + ";"));
        snippet.push_back(L("mix((unsigned int)fzx);"));
        snippet.push_back(L("free(&fzx);"));
    }
    splice(program, std::move(snippet), rng);
}

void
injectNullDeref(FuzzProgram &program, Rng &rng)
{
    bool is_write = rng.chance(0.5);
    InjectedBug &bug = program.bug;
    bug.mutator = MutatorKind::nullDeref;
    bug.kind = ErrorKind::nullDeref;
    bug.access = is_write ? AccessKind::write : AccessKind::read;
    bug.storage = StorageKind::unknown;
    bug.description = std::string("NULL pointer ") +
        (is_write ? "write" : "read");

    std::vector<FuzzStmt> snippet;
    snippet.push_back(L("int *fzz = 0;"));
    if (is_write)
        snippet.push_back(L("fzz[0] = 1;"));
    else
        snippet.push_back(L("mix((unsigned int)fzz[0]);"));
    splice(program, std::move(snippet), rng);
}

} // namespace

FuzzProgram
injectBug(FuzzProgram program, MutatorKind kind, Rng &rng)
{
    switch (kind) {
      case MutatorKind::none:
        break;
      case MutatorKind::oobIndex:
        injectOobIndex(program, rng);
        break;
      case MutatorKind::useAfterFree:
        injectUseAfterFree(program, rng);
        break;
      case MutatorKind::doubleFree:
        injectDoubleFree(program, rng);
        break;
      case MutatorKind::uninitRead:
        injectUninitRead(program, rng);
        break;
      case MutatorKind::invalidFree:
        injectInvalidFree(program, rng);
        break;
      case MutatorKind::nullDeref:
        injectNullDeref(program, rng);
        break;
    }
    return program;
}

MutatorKind
pickMutator(Rng &rng, double bug_ratio)
{
    if (!rng.chance(bug_ratio))
        return MutatorKind::none;
    switch (rng.nextBelow(kMutatorCount)) {
      case 0:  return MutatorKind::oobIndex;
      case 1:  return MutatorKind::useAfterFree;
      case 2:  return MutatorKind::doubleFree;
      case 3:  return MutatorKind::uninitRead;
      case 4:  return MutatorKind::invalidFree;
      default: return MutatorKind::nullDeref;
    }
}

} // namespace sulong
