/**
 * @file
 * Runtime values of the managed interpreter.
 */

#ifndef MS_INTERP_MVALUE_H
#define MS_INTERP_MVALUE_H

#include "managed/object.h"

namespace sulong
{

/**
 * One managed runtime value: a width-tagged integer, a float/double, or
 * an Address. Integers are kept sign-extended to 64 bits canonically;
 * the width tag preserves the C-level size for varargs boxing (so that
 * printf("%ld", int) is detectably wrong, paper Fig. 12).
 */
struct MValue
{
    enum class Kind : uint8_t
    {
        intV,
        fpV,
        addrV,
    };

    Kind kind = Kind::intV;
    /// For intV: width in bits (1, 8, 16, 32, 64). For fpV: 32 or 64.
    uint8_t bits = 32;
    int64_t i = 0;
    double f = 0;
    Address a;

    static MValue
    makeInt(int64_t value, unsigned width)
    {
        MValue v;
        v.kind = Kind::intV;
        v.bits = static_cast<uint8_t>(width);
        // Normalize to sign-extended canonical form.
        if (width < 64) {
            uint64_t mask = (1ull << width) - 1;
            uint64_t raw = static_cast<uint64_t>(value) & mask;
            if (raw & (1ull << (width - 1)))
                raw |= ~mask;
            value = static_cast<int64_t>(raw);
        }
        v.i = value;
        return v;
    }

    static MValue
    makeFP(double value, unsigned width)
    {
        MValue v;
        v.kind = Kind::fpV;
        v.bits = static_cast<uint8_t>(width);
        v.f = width == 32 ? static_cast<double>(static_cast<float>(value))
                          : value;
        return v;
    }

    static MValue
    makeAddr(Address addr)
    {
        MValue v;
        v.kind = Kind::addrV;
        v.bits = 64;
        v.a = std::move(addr);
        return v;
    }

    /** Zero-extended view of an integer value. */
    uint64_t
    zext() const
    {
        if (bits >= 64)
            return static_cast<uint64_t>(i);
        return static_cast<uint64_t>(i) & ((1ull << bits) - 1);
    }
};

} // namespace sulong

#endif // MS_INTERP_MVALUE_H
