/**
 * @file
 * Tier-3 translation and direct-threaded execution (model in tier3.h).
 *
 * The translator is a single linear pass over the tier-2 PInst stream:
 * it assigns each instruction a flat dispatch opcode (folding the
 * superinstruction flags into the opcode so the hot loop never re-tests
 * them), marks superblock heads (function entry, every branch target,
 * every block entry, and the successor of every op that ends a
 * superblock but falls through — calls and interpreter escapes), and
 * stamps each head with the batched step charge for its straight-line
 * run. Indices are shared with tier-2 verbatim, so OSR entry and deopt
 * resume need no pc mapping and no state reconstruction: the frame's
 * slot array *is* the deopt state.
 *
 * The executor mirrors tier-2's semantics case by case — same eval
 * cores, same checked loadAt/storeAt, same IC state machine, same
 * interpreter escapes — and differs only in dispatch (computed goto /
 * switch), batched step accounting (reconciled with uncharge() on
 * every early exit), and the three deopt edges described in tier3.h.
 */

#include "interp/tier3.h"

#include <algorithm>

namespace sulong
{

namespace
{

/** Does this op end a superblock? Anything that branches, returns, or
 *  hands control to another accounting domain (calls, interpreter
 *  escapes) must be the last op of its superblock, so the head's batch
 *  charge is exact at every point where steps can be observed. */
bool
endsSuperblock(TOp top)
{
    switch (top) {
      case TOp::tBr:
      case TOp::tCondBr:
      case TOp::tRet:
      case TOp::tRetVoid:
      case TOp::tICmpBr:
      case TOp::tICmpLoadBr:
      case TOp::tInlineRet:
      case TOp::tCallDirect:
      case TOp::tCallIndirect:
      case TOp::tInterp:
      case TOp::tUnreachable:
        return true;
      default:
        return false;
    }
}

/** Superblock enders that continue at the next instruction (the rest
 *  jump, so their successor is only a head if something branches to
 *  it). */
bool
fallsThrough(TOp top)
{
    return top == TOp::tCallDirect || top == TOp::tCallIndirect ||
        top == TOp::tInterp;
}

/** Checked memory effects of one op (plain + fused), for the
 *  "fused checks retired" telemetry. */
uint32_t
checkedEffects(const PInst &pi)
{
    uint32_t n = 0;
    if (pi.op == Opcode::load || pi.op == Opcode::store ||
        pi.op == Opcode::alloca_)
        n++;
    if ((pi.flags & kPFuseLoad) != 0)
        n++;
    if ((pi.flags & kPFuseStore) != 0)
        n++;
    return n;
}

/** Flat dispatch opcode for one tier-2 instruction. */
TOp
topFor(const PInst &pi, const std::vector<CallSite> &sites);

} // namespace

/** Alloca types whose objects support resetForReuse(). */
static bool
recyclableAlloca(const Type *type)
{
    if (type->isScalar())
        return true;
    if (type->isArray()) {
        const Type *elem = type->elemType();
        return elem->isInteger() || elem->isFloat() || elem->isPointer();
    }
    return false;
}

std::unique_ptr<Tier3Code>
translateTier3(const Function &fn, CompiledFunction &t2,
               ManagedEngine &engine)
{
    const std::vector<PInst> &code = t2.code_;
    const size_t n = code.size();
    if (n == 0)
        return nullptr;
    auto out = std::make_unique<Tier3Code>(&fn, &t2);
    out->code_.resize(n);
    for (size_t i = 0; i < n; i++) {
        out->code_[i].pi = code[i];
        out->code_[i].top = topFor(code[i], t2.callSites_);
        if (code[i].op == Opcode::alloca_ &&
            recyclableAlloca(code[i].src->accessType())) {
            out->code_[i].allocaSite =
                static_cast<int32_t>(out->allocaCache_.size());
            out->allocaCache_.emplace_back();
        }
    }

    // Superblock heads: entry, block entries, branch targets, and the
    // fall-through successor of every call/interpreter escape.
    std::vector<char> head(n, 0);
    head[0] = 1;
    for (const auto &entry : t2.blockStart_)
        head[static_cast<size_t>(entry.second)] = 1;
    for (size_t i = 0; i < n; i++) {
        const PInst &pi = code[i];
        switch (pi.op) {
          case Opcode::br:
            head[static_cast<size_t>(pi.t0)] = 1;
            break;
          case Opcode::condbr:
            head[static_cast<size_t>(pi.t0)] = 1;
            head[static_cast<size_t>(pi.t1)] = 1;
            break;
          case Opcode::icmp:
            if ((pi.flags & kPFuseCmpBr) != 0) {
                head[static_cast<size_t>(pi.t0)] = 1;
                head[static_cast<size_t>(pi.t1)] = 1;
            }
            break;
          case Opcode::p2Ret:
            head[static_cast<size_t>(pi.t0)] = 1;
            break;
          default:
            break;
        }
        if (fallsThrough(out->code_[i].top) && i + 1 < n)
            head[i + 1] = 1;
    }
    if (!engine.options_.enableFusion)
        std::fill(head.begin(), head.end(), 1);

    // Stamp each head with its straight-line run's charge. The walk
    // partitions the stream: it stops at superblock enders, at the next
    // head, and at the length cap (forcing a head there so no op is
    // ever executed outside a charged superblock).
    for (size_t h = 0; h < n; h++) {
        if (head[h] == 0)
            continue;
        size_t j = h;
        size_t len = 1;
        uint32_t checks = checkedEffects(code[h]);
        while (!endsSuperblock(out->code_[j].top) && j + 1 < n &&
               head[j + 1] == 0 && len < kMaxSuperblockLen) {
            j++;
            len++;
            checks += checkedEffects(code[j]);
        }
        if (!endsSuperblock(out->code_[j].top) && j + 1 < n)
            head[j + 1] = 1; // length cap hit: next run starts a head
        out->code_[h].charge = static_cast<uint16_t>(len);
        out->code_[h].checks = static_cast<uint16_t>(
            std::min<uint32_t>(checks, UINT16_MAX));
        out->superblocks_++;
    }

    out->shapeMiss_.assign(t2.accessCaches_.size(), 0);
    return out;
}

namespace
{

TOp
topFor(const PInst &pi, const std::vector<CallSite> &sites)
{
    const bool fl = (pi.flags & kPFuseLoad) != 0;
    const bool fs = (pi.flags & kPFuseStore) != 0;
    switch (pi.op) {
      case Opcode::br:
        return TOp::tBr;
      case Opcode::condbr:
        return TOp::tCondBr;
      case Opcode::ret:
        return pi.dest == -2 ? TOp::tRetVoid : TOp::tRet;
      case Opcode::icmp:
        if ((pi.flags & kPFuseCmpBr) != 0)
            return fl ? TOp::tICmpLoadBr : TOp::tICmpBr;
        return fl ? TOp::tICmpLoad : TOp::tICmp;
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr:
        return fl ? (fs ? TOp::tIArithLS : TOp::tIArithL)
                  : (fs ? TOp::tIArithS : TOp::tIArith);
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: case Opcode::frem:
        return fl ? (fs ? TOp::tFArithLS : TOp::tFArithL)
                  : (fs ? TOp::tFArithS : TOp::tFArith);
      case Opcode::fcmp:
        return TOp::tFCmp;
      case Opcode::gep:
        return TOp::tGep;
      case Opcode::load:
        return TOp::tLoad;
      case Opcode::store:
        return TOp::tStore;
      case Opcode::alloca_:
        return TOp::tAlloca;
      case Opcode::select:
        return TOp::tSelect;
      case Opcode::fneg:
        return TOp::tFneg;
      case Opcode::trunc:
      case Opcode::sext:
        return TOp::tTruncSext;
      case Opcode::zext:
        return TOp::tZext;
      case Opcode::fptosi: case Opcode::fptoui: case Opcode::sitofp:
      case Opcode::uitofp: case Opcode::fpext: case Opcode::fptrunc:
        return TOp::tCastOther;
      case Opcode::p2Move:
        return TOp::tMove;
      case Opcode::p2Ret:
        return TOp::tInlineRet;
      case Opcode::p2CallDirect:
        return TOp::tCallDirect;
      case Opcode::p2CallIndirect:
        // A site that is already megamorphic stays megamorphic forever;
        // routing it through the interpreter escape (exactly tier-2's
        // fallback) instead of the IC handler prevents a retranslation
        // from deopting on its first execution again.
        return sites[static_cast<size_t>(pi.callSite)].cachedFnId ==
                kICMegamorphic
            ? TOp::tInterp
            : TOp::tCallIndirect;
      case Opcode::unreachable_:
        return TOp::tUnreachable;
      default:
        // call, ptrtoint, inttoptr — tier-2's interpreter escape.
        return TOp::tInterp;
    }
}

} // namespace

/*
 * Batched step accounting at a superblock head. Order matters for the
 * reconciliation in the catch blocks below: sbEnd and the profiler
 * counter move *before* onSteps so that, when the guard's interrupt
 * poll throws after charging, the handlers can compute the unexecuted
 * remainder from sbEnd and return it — leaving exactly the head op
 * charged, the same state tier-1/tier-2 leave after a throwing step().
 * A refused batch (would cross the step limit) charges nothing; tier-2
 * then steps per-op so the limit trips on exactly the right
 * instruction.
 */
#define T3_CHARGE()                                                     \
    do {                                                                \
        const uint32_t charge_n = ip->charge;                           \
        if (charge_n != 0) {                                            \
            sbEnd = ip + charge_n;                                      \
            if (prof != nullptr) {                                      \
                prof->tier3Steps += charge_n;                           \
                engine.telem_.t3FusedChecks += ip->checks;              \
            }                                                           \
            if (!guard.onSteps(charge_n)) {                             \
                if (prof != nullptr)                                    \
                    prof->tier3Steps -= charge_n;                       \
                goto deopt_steps;                                       \
            }                                                           \
        }                                                               \
    } while (0)

/*
 * In threaded mode every handler ends in its own indirect jump (the
 * branch predictor learns per-handler successor patterns — the point of
 * computed goto); the switch fallback funnels through one dispatch
 * label instead.
 */
#ifdef MS_THREADED_DISPATCH
#define T3_DISPATCH()                                                   \
    do {                                                                \
        T3_CHARGE();                                                    \
        goto *kLabels[static_cast<size_t>(ip->top)];                    \
    } while (0)
#else
#define T3_DISPATCH() goto t3_dispatch
#endif

#define T3_NEXT()                                                       \
    do {                                                                \
        ++ip;                                                           \
        T3_DISPATCH();                                                  \
    } while (0)

MValue
Tier3Code::execute(ManagedEngine &engine, ManagedEngine::Frame &frame,
                   size_t start_pc)
{
    CompiledFunction &t2 = *t2_;
    auto &slots = frame.slots;
    if (slots.size() < t2.frameSize_)
        slots.resize(t2.frameSize_); // OSR entry from a leaner frame
    const MValue *constants = t2.constants_.data();
    auto fetch = [&](const POperand &op) -> const MValue & {
        return op.isSlot ? slots[static_cast<size_t>(op.index)]
                         : constants[static_cast<size_t>(op.index)];
    };
    auto doFusedLoad = [&](const PInst &pi) {
        SlotResolution *sr = (pi.flags & kPElideLoad) != 0
            ? &t2.slotRes_[static_cast<size_t>(pi.loadAddr.index)]
            : nullptr;
        slots[static_cast<size_t>(pi.destLoad)] = t2.loadAt(
            engine, fetch(pi.loadAddr).a, pi.srcLoad, pi.icLoad, sr);
    };
    auto doFusedStore = [&](const PInst &pi, const MValue &v) {
        SlotResolution *sr = (pi.flags & kPElideStore) != 0
            ? &t2.slotRes_[static_cast<size_t>(pi.c.index)] : nullptr;
        t2.storeAt(engine, fetch(pi.c).a, pi.srcStore, v, pi.icStore, sr);
    };

    if (start_pc == 0 && !allocaCache_.empty()) {
        // Fresh activation: drop the previous activation's elision-cache
        // pins. Every call bumps resolveEpoch_, so these entries are
        // already unusable — but their ObjRefs would keep dead locals
        // alive and defeat the refcount-1 test in the alloca recycler.
        for (SlotResolution &sr : t2.slotRes_) {
            if (sr.obj.get() != nullptr)
                sr = SlotResolution{};
        }
    }
    ManagedEngine::FnProfile *prof =
        engine.profiling_ ? engine.profileFor(fn_) : nullptr;
    ResourceGuard &guard = engine.guard_;
    const TInst *const base = code_.data();
    const TInst *ip = base + start_pc;
    const TInst *sbEnd = ip + 1;
    // Entries (calls, OSR) land on superblock heads by construction;
    // anything else would execute uncharged, so refuse it defensively.
    if (ip->charge == 0)
        return t2.execute(engine, frame, start_pc, /*allow_osr3=*/false);

#ifdef MS_THREADED_DISPATCH
    // Dispatch table in MS_T3_OPS order — TOp values index it directly.
    static const void *const kLabels[] = {
#define MS_T3_LABEL(name) &&H_##name,
        MS_T3_OPS(MS_T3_LABEL)
#undef MS_T3_LABEL
    };
#endif

    try {
#ifndef MS_THREADED_DISPATCH
    t3_dispatch:
        T3_CHARGE();
        switch (ip->top) {
#define MS_T3_CASE(name)                                                \
          case TOp::name:                                               \
            goto H_##name;
            MS_T3_OPS(MS_T3_CASE)
#undef MS_T3_CASE
        }
#else
        T3_DISPATCH();
#endif

    H_tBr:
        ip = base + ip->pi.t0;
        T3_DISPATCH();

    H_tCondBr:
        ip = base + (fetch(ip->pi.a).i != 0 ? ip->pi.t0 : ip->pi.t1);
        T3_DISPATCH();

    H_tRet:
        return fetch(ip->pi.a);

    H_tRetVoid:
        return MValue{};

    H_tICmp: {
        const PInst &pi = ip->pi;
        bool out = ManagedEngine::evalICmp(static_cast<IntPred>(pi.pred),
                                           fetch(pi.a), fetch(pi.b));
        if (pi.dest >= 0) {
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out ? 1 : 0, 1);
        }
        T3_NEXT();
    }

    H_tICmpBr: {
        const PInst &pi = ip->pi;
        bool out = ManagedEngine::evalICmp(static_cast<IntPred>(pi.pred),
                                           fetch(pi.a), fetch(pi.b));
        if (pi.dest >= 0) {
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out ? 1 : 0, 1);
        }
        ip = base + (out ? pi.t0 : pi.t1);
        T3_DISPATCH();
    }

    H_tICmpLoad: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        bool out = ManagedEngine::evalICmp(static_cast<IntPred>(pi.pred),
                                           fetch(pi.a), fetch(pi.b));
        if (pi.dest >= 0) {
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out ? 1 : 0, 1);
        }
        T3_NEXT();
    }

    H_tICmpLoadBr: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        bool out = ManagedEngine::evalICmp(static_cast<IntPred>(pi.pred),
                                           fetch(pi.a), fetch(pi.b));
        if (pi.dest >= 0) {
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeInt(out ? 1 : 0, 1);
        }
        ip = base + (out ? pi.t0 : pi.t1);
        T3_DISPATCH();
    }

    H_tIArith: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
            ManagedEngine::evalIntBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                        pi.bits),
            pi.bits);
        T3_NEXT();
    }

    H_tIArithL: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
            ManagedEngine::evalIntBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                        pi.bits),
            pi.bits);
        T3_NEXT();
    }

    H_tIArithS: {
        const PInst &pi = ip->pi;
        MValue res = MValue::makeInt(
            ManagedEngine::evalIntBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                        pi.bits),
            pi.bits);
        slots[static_cast<size_t>(pi.dest)] = res;
        doFusedStore(pi, res);
        T3_NEXT();
    }

    H_tIArithLS: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        MValue res = MValue::makeInt(
            ManagedEngine::evalIntBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                        pi.bits),
            pi.bits);
        slots[static_cast<size_t>(pi.dest)] = res;
        doFusedStore(pi, res);
        T3_NEXT();
    }

    H_tFArith: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] = MValue::makeFP(
            ManagedEngine::evalFloatBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                          pi.bits),
            pi.bits);
        T3_NEXT();
    }

    H_tFArithL: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        slots[static_cast<size_t>(pi.dest)] = MValue::makeFP(
            ManagedEngine::evalFloatBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                          pi.bits),
            pi.bits);
        T3_NEXT();
    }

    H_tFArithS: {
        const PInst &pi = ip->pi;
        MValue res = MValue::makeFP(
            ManagedEngine::evalFloatBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                          pi.bits),
            pi.bits);
        slots[static_cast<size_t>(pi.dest)] = res;
        doFusedStore(pi, res);
        T3_NEXT();
    }

    H_tFArithLS: {
        const PInst &pi = ip->pi;
        doFusedLoad(pi);
        MValue res = MValue::makeFP(
            ManagedEngine::evalFloatBinOp(pi.op, fetch(pi.a), fetch(pi.b),
                                          pi.bits),
            pi.bits);
        slots[static_cast<size_t>(pi.dest)] = res;
        doFusedStore(pi, res);
        T3_NEXT();
    }

    H_tFCmp: {
        const PInst &pi = ip->pi;
        bool out = ManagedEngine::evalFCmp(
            static_cast<FloatPred>(pi.pred), fetch(pi.a), fetch(pi.b));
        slots[static_cast<size_t>(pi.dest)] =
            MValue::makeInt(out ? 1 : 0, 1);
        T3_NEXT();
    }

    H_tGep: {
        const PInst &pi = ip->pi;
        const MValue &gep_base = fetch(pi.a);
        int64_t offset = pi.gepOff;
        if (pi.b.isSlot || pi.gepScale != 0) {
            offset +=
                fetch(pi.b).i * static_cast<int64_t>(pi.gepScale);
        }
        slots[static_cast<size_t>(pi.dest)] =
            MValue::makeAddr(gep_base.a.withOffset(offset));
        T3_NEXT();
    }

    H_tLoad: {
        const PInst &pi = ip->pi;
        SlotResolution *sr = (pi.flags & kPElideLoad) != 0
            ? &t2.slotRes_[static_cast<size_t>(pi.a.index)] : nullptr;
        uint16_t *miss = pi.icLoad >= 0
            ? &shapeMiss_[static_cast<size_t>(pi.icLoad)] : nullptr;
        slots[static_cast<size_t>(pi.dest)] = t2.loadAt(
            engine, fetch(pi.a).a, pi.src, pi.icLoad, sr, miss);
        if (miss != nullptr && *miss >= kShapeMissDeoptStreak)
            goto deopt_shape;
        T3_NEXT();
    }

    H_tStore: {
        const PInst &pi = ip->pi;
        SlotResolution *sr = (pi.flags & kPElideStore) != 0
            ? &t2.slotRes_[static_cast<size_t>(pi.b.index)] : nullptr;
        uint16_t *miss = pi.icStore >= 0
            ? &shapeMiss_[static_cast<size_t>(pi.icStore)] : nullptr;
        t2.storeAt(engine, fetch(pi.b).a, pi.src, fetch(pi.a),
                   pi.icStore, sr, miss);
        if (miss != nullptr && *miss >= kShapeMissDeoptStreak)
            goto deopt_shape;
        T3_NEXT();
    }

    H_tAlloca: {
        const PInst &pi = ip->pi;
        // Alloca recycling: if the object this site handed out last time
        // has died unescaped (the cache holds the sole reference), reset
        // it to its fresh state and hand it out again — no allocation,
        // and every later access runs the same checks as on a new
        // object. Escaped or live objects hold extra references and
        // force the ordinary allocation path.
        if (ip->allocaSite >= 0) {
            // The dest slot may still hold this site's previous object
            // (loops re-execute sites into the same slot); it is about
            // to be overwritten anyway, so drop it first or its stale
            // reference would defeat the refcount-1 test below.
            slots[static_cast<size_t>(pi.dest)] = MValue{};
            ObjRef &cached =
                allocaCache_[static_cast<size_t>(ip->allocaSite)];
            ManagedObject *o = cached.get();
            if (o != nullptr && o->refCount() == 1 && o->resetForReuse()) {
                slots[static_cast<size_t>(pi.dest)] =
                    MValue::makeAddr(Address{cached, 0});
                T3_NEXT();
            }
            ObjRef fresh = engine.allocaObject(*pi.src);
            cached = fresh;
            slots[static_cast<size_t>(pi.dest)] =
                MValue::makeAddr(Address{std::move(fresh), 0});
            T3_NEXT();
        }
        slots[static_cast<size_t>(pi.dest)] =
            MValue::makeAddr(Address{engine.allocaObject(*pi.src), 0});
        T3_NEXT();
    }

    H_tSelect: {
        const PInst &pi = ip->pi;
        const MValue &cond = fetch(pi.a);
        slots[static_cast<size_t>(pi.dest)] =
            fetch(cond.i != 0 ? pi.b : pi.c);
        T3_NEXT();
    }

    H_tFneg: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] =
            MValue::makeFP(-fetch(pi.a).f, pi.bits);
        T3_NEXT();
    }

    H_tTruncSext: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] =
            MValue::makeInt(fetch(pi.a).i, pi.bits);
        T3_NEXT();
    }

    H_tZext: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] = MValue::makeInt(
            static_cast<int64_t>(fetch(pi.a).zext()), pi.bits);
        T3_NEXT();
    }

    H_tCastOther: {
        const PInst &pi = ip->pi;
        MValue &dest = slots[static_cast<size_t>(pi.dest)];
        switch (pi.op) {
          case Opcode::fptosi:
            dest = MValue::makeInt(ManagedEngine::satFptosi(fetch(pi.a).f),
                                   pi.bits);
            break;
          case Opcode::fptoui:
            dest = MValue::makeInt(
                static_cast<int64_t>(
                    ManagedEngine::satFptoui(fetch(pi.a).f)),
                pi.bits);
            break;
          case Opcode::sitofp:
            dest = MValue::makeFP(static_cast<double>(fetch(pi.a).i),
                                  pi.bits);
            break;
          case Opcode::uitofp:
            dest = MValue::makeFP(static_cast<double>(fetch(pi.a).zext()),
                                  pi.bits);
            break;
          case Opcode::fpext:
            dest = MValue::makeFP(fetch(pi.a).f, 64);
            break;
          default: // fptrunc
            dest = MValue::makeFP(fetch(pi.a).f, 32);
            break;
        }
        T3_NEXT();
    }

    H_tMove: {
        const PInst &pi = ip->pi;
        slots[static_cast<size_t>(pi.dest)] = fetch(pi.a);
        T3_NEXT();
    }

    H_tInlineRet: {
        const PInst &pi = ip->pi;
        if (pi.dest >= 0)
            slots[static_cast<size_t>(pi.dest)] = fetch(pi.a);
        ip = base + pi.t0;
        T3_DISPATCH();
    }

    H_tCallDirect: {
        const PInst &pi = ip->pi;
        CallSite &site =
            t2.callSites_[static_cast<size_t>(pi.callSite)];
        if (site.code == nullptr)
            site.code = engine.tier2CodeFor(site.callee, " (IC)");
        // Call fast path: arguments go straight into a pooled callee
        // frame — no intermediate argument vector, no per-call slot
        // allocation. Frame contents are identical to a fresh one.
        ManagedEngine::Frame callee = engine.acquireFrame();
        callee.slots.resize(site.code->frameSize());
        const size_t nargs =
            site.args.size() < callee.slots.size() ? site.args.size()
                                                   : callee.slots.size();
        for (size_t i = 0; i < nargs; i++)
            callee.slots[i] = fetch(site.args[i]);
        MValue v =
            engine.callCompiledFrame(site.callee, site.code, callee);
        engine.releaseFrame(std::move(callee));
        if (pi.dest >= 0)
            slots[static_cast<size_t>(pi.dest)] = std::move(v);
        T3_NEXT();
    }

    H_tCallIndirect: {
        const PInst &pi = ip->pi;
        CallSite &site =
            t2.callSites_[static_cast<size_t>(pi.callSite)];
        const MValue &target = fetch(pi.a);
        // Same IC state machine as tier-2 (same shared CallSite, so the
        // state survives deopts either way). The only difference: where
        // tier-2 drops to its interpreter fallback — megamorphism or a
        // special target — tier-3 deopts, and a later retranslation
        // routes the now-sticky megamorphic site through tInterp.
        if (target.kind == MValue::Kind::addrV && !target.a.isNull() &&
            target.a.pointee->kind() == ObjectKind::functionObject &&
            site.cachedFnId != kICMegamorphic) {
            uint32_t id = static_cast<const FunctionObject *>(
                target.a.pointee.get())->fnId();
            uint32_t cachedBefore = site.cachedFnId;
            if (site.cachedFnId == kICEmpty) {
                const Function *callee = engine.module_->functionById(id);
                if (callee != nullptr && !callee->isDeclaration() &&
                    !callee->isVarArg() &&
                    callee->numArgs() == site.args.size()) {
                    site.callee = callee;
                    site.code = engine.tier2CodeFor(callee, " (IC)");
                    site.cachedFnId = id;
                    if (engine.profiling_)
                        engine.telem_.icToMono++;
                } else {
                    site.cachedFnId = kICMegamorphic;
                    if (engine.profiling_)
                        engine.telem_.icToMega++;
                }
            } else if (site.cachedFnId != id) {
                site.cachedFnId = kICMegamorphic; // polymorphic
                if (engine.profiling_)
                    engine.telem_.icToMega++;
            }
            if (site.cachedFnId == id) {
                if (engine.profiling_ && cachedBefore == id)
                    engine.telem_.icHits++;
                ManagedEngine::Frame callee = engine.acquireFrame();
                callee.slots.resize(site.code->frameSize());
                const size_t nargs = site.args.size() < callee.slots.size()
                    ? site.args.size() : callee.slots.size();
                for (size_t i = 0; i < nargs; i++)
                    callee.slots[i] = fetch(site.args[i]);
                MValue v = engine.callCompiledFrame(site.callee,
                                                    site.code, callee);
                engine.releaseFrame(std::move(callee));
                if (pi.dest >= 0)
                    slots[static_cast<size_t>(pi.dest)] = std::move(v);
                T3_NEXT();
            }
        }
        goto deopt_mega;
    }

    H_tInterp: {
        const PInst &pi = ip->pi;
        MValue v = engine.execInstruction(*pi.src, frame);
        if (pi.src->slot() >= 0)
            slots[static_cast<size_t>(pi.src->slot())] = std::move(v);
        T3_NEXT();
    }

    H_tUnreachable:
        throw EngineError("reached 'unreachable' in " + fn_->name());

    } catch (MemoryErrorException &error) {
        // A detected bug deopts implicitly: return the not-yet-executed
        // remainder of the charged superblock (the faulting op counts
        // as attempted, exactly like a throwing step() in tier-1/2),
        // attribute inlined code to its callee, and rethrow so the
        // report is byte-identical to the other tiers'.
        const uint64_t unret = static_cast<uint64_t>(sbEnd - ip) - 1;
        guard.uncharge(unret);
        if (prof != nullptr)
            prof->tier3Steps -= unret;
        engine.telem_.t3DeoptBug++;
        if (error.report().function.empty()) {
            const size_t pc = static_cast<size_t>(ip - base);
            for (const InlineRange &range : t2.inlineRanges_) {
                if (pc >= range.begin && pc < range.end) {
                    error.report().function = range.callee->name();
                    break;
                }
            }
        }
        throw;
    } catch (...) {
        // GuestExit / ResourceExhausted / EngineError: reconcile the
        // step batch the same way, then let the run() boundary handle
        // it. (An interrupt thrown at a head's charge poll leaves the
        // head op charged — matching tier-1/2, which charge an op
        // before polling.)
        const uint64_t unret = static_cast<uint64_t>(sbEnd - ip) - 1;
        guard.uncharge(unret);
        if (prof != nullptr)
            prof->tier3Steps -= unret;
        throw;
    }

deopt_steps:
    // The guard refused the batch (nothing was charged): resume tier-2
    // at this very instruction; its per-op accounting trips the step
    // limit on exactly the instruction tier-1 would trip it on.
    engine.telem_.t3DeoptSteps++;
    return t2.execute(engine, frame, static_cast<size_t>(ip - base),
                      /*allow_osr3=*/false);

deopt_shape: {
    // The access site went polymorphic (kShapeMissDeoptStreak straight
    // shape-cache misses). The op itself completed — return the charge
    // for the remainder and resume tier-2 *after* it. Retire the code:
    // tier-2 re-fills shape caches without deopting, and a later
    // retranslation gets a fresh streak (two strikes bar the function).
    const uint64_t unret = static_cast<uint64_t>(sbEnd - ip) - 1;
    guard.uncharge(unret);
    if (prof != nullptr)
        prof->tier3Steps -= unret;
    engine.telem_.t3DeoptShape++;
    const size_t resume = static_cast<size_t>(ip - base) + 1;
    engine.retireTier3(t2);
    return t2.execute(engine, frame, resume, /*allow_osr3=*/false);
}

deopt_mega: {
    // The indirect call site left the monomorphic fast path. The call
    // has not executed: return its charge too and resume tier-2 *at*
    // the call, whose interpreter fallback handles megamorphic and
    // special targets with interpreter-identical semantics.
    const uint64_t unret = static_cast<uint64_t>(sbEnd - ip);
    guard.uncharge(unret);
    if (prof != nullptr)
        prof->tier3Steps -= unret;
    engine.telem_.t3DeoptMega++;
    const size_t resume = static_cast<size_t>(ip - base);
    engine.retireTier3(t2);
    return t2.execute(engine, frame, resume, /*allow_osr3=*/false);
}
}

#undef T3_NEXT
#undef T3_DISPATCH
#undef T3_CHARGE

} // namespace sulong
