#include "interp/managed_engine.h"

#include <chrono>
#include <cmath>
#include <string_view>

#include "interp/tier2.h"
#include "interp/tier3.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sulong
{

namespace
{

/** Engine intrinsics, resolved once per function. */
enum class Intrinsic : uint8_t
{
    none,
    mallocFn, freeFn, callocFn, reallocFn,
    sysExit, sysWrite, sysGetchar, sysAllocSize,
    vaStart, vaArgPtr, vaEnd, vaCount,
    mSqrt, mSin, mCos, mTan, mAtan, mAtan2, mExp, mLog, mPow,
    mFloor, mCeil, mFabs, mFmod,
};

/** Transparent string hashing: lets the intrinsic table answer
 *  string_view queries without materializing a std::string per call. */
struct StringHash
{
    using is_transparent = void;
    size_t
    operator()(std::string_view s) const noexcept
    {
        return std::hash<std::string_view>{}(s);
    }
};

Intrinsic
intrinsicFor(std::string_view name)
{
    static const std::unordered_map<std::string, Intrinsic, StringHash,
                                    std::equal_to<>> table = {
        {"malloc", Intrinsic::mallocFn},
        {"free", Intrinsic::freeFn},
        {"calloc", Intrinsic::callocFn},
        {"realloc", Intrinsic::reallocFn},
        {"__sys_exit", Intrinsic::sysExit},
        {"__sys_write", Intrinsic::sysWrite},
        {"__sys_getchar", Intrinsic::sysGetchar},
        {"__sys_alloc_size", Intrinsic::sysAllocSize},
        {"__va_start", Intrinsic::vaStart},
        {"__va_arg_ptr", Intrinsic::vaArgPtr},
        {"__va_end", Intrinsic::vaEnd},
        {"__va_count", Intrinsic::vaCount},
        {"sqrt", Intrinsic::mSqrt}, {"sin", Intrinsic::mSin},
        {"cos", Intrinsic::mCos}, {"tan", Intrinsic::mTan},
        {"atan", Intrinsic::mAtan}, {"atan2", Intrinsic::mAtan2},
        {"exp", Intrinsic::mExp}, {"log", Intrinsic::mLog},
        {"pow", Intrinsic::mPow}, {"floor", Intrinsic::mFloor},
        {"ceil", Intrinsic::mCeil}, {"fabs", Intrinsic::mFabs},
        {"fmod", Intrinsic::mFmod},
    };
    auto it = table.find(name);
    return it == table.end() ? Intrinsic::none : it->second;
}

/** Box one variadic argument as its own managed object (paper Fig. 9). */
Address
boxVararg(const MValue &v)
{
    Address dummy;
    switch (v.kind) {
      case MValue::Kind::intV: {
        unsigned width = v.bits < 8 ? 8 : v.bits;
        ObjRef obj;
        switch (width) {
          case 8: obj = ObjRef(new I8Array(StorageKind::stack, 1)); break;
          case 16: obj = ObjRef(new I16Array(StorageKind::stack, 1)); break;
          case 32: obj = ObjRef(new I32Array(StorageKind::stack, 1)); break;
          default: obj = ObjRef(new I64Array(StorageKind::stack, 1)); break;
        }
        obj->write(AccessClass::integer, width / 8, 0,
                   static_cast<uint64_t>(v.i), dummy);
        return Address{std::move(obj), 0};
      }
      case MValue::Kind::fpV: {
        if (v.bits == 32) {
            ObjRef obj(new F32Array(StorageKind::stack, 1));
            float f = static_cast<float>(v.f);
            uint64_t raw = 0;
            std::memcpy(&raw, &f, 4);
            obj->write(AccessClass::floating, 4, 0, raw, dummy);
            return Address{std::move(obj), 0};
        }
        ObjRef obj(new F64Array(StorageKind::stack, 1));
        uint64_t raw = 0;
        std::memcpy(&raw, &v.f, 8);
        obj->write(AccessClass::floating, 8, 0, raw, dummy);
        return Address{std::move(obj), 0};
      }
      case MValue::Kind::addrV: {
        ObjRef obj(new AddressArray(StorageKind::stack, 1));
        obj->write(AccessClass::pointer, 8, 0, 0, v.a);
        return Address{std::move(obj), 0};
      }
    }
    return Address{};
}

} // namespace

int64_t
ManagedEngine::satFptosi(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 9223372036854775807.0)
        return INT64_MAX;
    if (v <= -9223372036854775808.0)
        return INT64_MIN;
    return static_cast<int64_t>(v);
}

uint64_t
ManagedEngine::satFptoui(double v)
{
    if (std::isnan(v) || v <= -1.0)
        return 0;
    if (v >= 18446744073709551615.0)
        return UINT64_MAX;
    return static_cast<uint64_t>(v);
}

void
ManagedEngine::raiseDivZero()
{
    throw EngineError("integer division by zero");
}

int64_t
ManagedEngine::badIntBinOp()
{
    throw InternalError("evalIntBinOp: bad opcode");
}

bool
ManagedEngine::evalPtrCmp(IntPred pred, const MValue &l, const MValue &r)
{
    // Pointer comparison: identity for eq/ne; offsets within the same
    // object, stable object identity otherwise, for relational.
    const ManagedObject *lo = l.a.pointee.get();
    const ManagedObject *ro = r.a.pointee.get();
    switch (pred) {
      case IntPred::eq:
        return lo == ro && l.a.offset == r.a.offset;
      case IntPred::ne:
        return lo != ro || l.a.offset != r.a.offset;
      default: {
        bool less, lesseq;
        if (lo == ro) {
            less = l.a.offset < r.a.offset;
            lesseq = l.a.offset <= r.a.offset;
        } else {
            less = lo < ro;
            lesseq = less;
        }
        switch (pred) {
          case IntPred::ult: case IntPred::slt: return less;
          case IntPred::ule: case IntPred::sle: return lesseq;
          case IntPred::ugt: case IntPred::sgt: return !lesseq;
          default: return !less;
        }
      }
    }
}

ManagedEngine::ManagedEngine(ManagedOptions options)
    : options_(std::move(options))
{}

ManagedEngine::~ManagedEngine() = default;

void
ManagedEngine::step()
{
    guard_.onStep();
}

void
ManagedEngine::reportLeaks(ExecutionResult &result)
{
    if (!options_.detectLeaks || !result.ok())
        return;
    ManagedHeap::LeakInfo leaks = heap_->liveLeaks();
    if (leaks.blocks == 0)
        return;
    result.bug.kind = ErrorKind::memoryLeak;
    result.bug.storage = StorageKind::heap;
    result.bug.detail = std::to_string(leaks.blocks) +
        " heap block(s), " + std::to_string(leaks.bytes) +
        " byte(s) never freed";
}

void
ManagedEngine::raiseNullDeref(bool is_write, const SourceLoc &loc)
{
    BugReport report;
    report.kind = ErrorKind::nullDeref;
    report.access = is_write ? AccessKind::write : AccessKind::read;
    report.detail = "NULL dereference at " + loc.toString();
    throw MemoryErrorException(std::move(report));
}

ExecutionResult
ManagedEngine::run(const Module &module, const std::vector<std::string> &args,
                   const std::string &stdin_data)
{
    MS_TRACE_SPAN("managed.run");
    bool resume = options_.persistState && module_ == &module &&
        globals_ != nullptr;
    // Per-run accounting, also when resuming with kept tier state.
    guard_ = ResourceGuard(limits_, cancelToken_);
    // One relaxed load per run; hot paths branch on the cached bool.
    profiling_ = obs::metricsEnabled();
    telem_ = ManagedTelemetry{};
    fnProfiles_.clear();
    if (!resume) {
        module_ = &module;
        globals_ = std::make_unique<GlobalStore>(module);
        heapTypes_ = std::make_unique<TypeContext>();
        heap_ = std::make_unique<ManagedHeap>(*heapTypes_, &guard_);
        heapAllocBytesFlushed_ = 0;
        heapFreedBytesFlushed_ = 0;
        heapAllocsFlushed_ = 0;
        heapFreesFlushed_ = 0;
        mementos_.clear();
        pinned_.clear();
        pinIds_.clear();
        nextPinId_ = 1;
        intrinsicCache_.clear();
        invocationCounts_.clear();
        compiled_.clear();
        tier3Retired_.clear();
        tier3Count_ = 0;
        callSiteCounts_.clear();
        compileEvents_.clear();
        tier2Count_ = 0;
        inlinedSites_ = 0;
        resolveEpoch_ = 1;
    }
    io_ = GuestIO{};
    io_.input = stdin_data;
    io_.guard = &guard_;

    StrictTypeRulesScope strict_scope(options_.strictTypes);
    UninitTrackingScope uninit_scope(options_.detectUninitReads);

    ExecutionResult result;
    const Function *main_fn = module.findFunction("main");
    if (main_fn == nullptr || main_fn->isDeclaration()) {
        result.bug.kind = ErrorKind::engineError;
        result.bug.detail = "no main() function";
        return result;
    }

    // Build argv/envp in the pre-main region (paper Fig. 10).
    std::vector<std::string> argv_strings;
    argv_strings.push_back("program");
    for (const auto &arg : args)
        argv_strings.push_back(arg);
    static const std::vector<std::string> env_strings = {
        "HOME=/home/user", "PATH=/usr/local/bin:/usr/bin",
        "SECRET_TOKEN=hunter2", "LANG=C",
    };

    std::vector<MValue> main_args;
    if (main_fn->numArgs() >= 1) {
        main_args.push_back(MValue::makeInt(
            static_cast<int64_t>(argv_strings.size()), 32));
    }
    if (main_fn->numArgs() >= 2) {
        main_args.push_back(
            MValue::makeAddr(globals_->makeStringArray(argv_strings)));
    }
    if (main_fn->numArgs() >= 3) {
        main_args.push_back(
            MValue::makeAddr(globals_->makeStringArray(env_strings)));
    }

    try {
        MValue ret = callFunction(main_fn, std::move(main_args), {});
        result.exitCode = ret.kind == MValue::Kind::intV
            ? static_cast<int>(ret.i) : 0;
        reportLeaks(result);
    } catch (const GuestExit &exit) {
        result.exitCode = exit.code();
        reportLeaks(result);
    } catch (MemoryErrorException &error) {
        result.bug = error.report();
    } catch (const ResourceExhausted &limit) {
        result.termination = limit.kind();
        result.terminationDetail = limit.detail();
    } catch (const EngineError &error) {
        result.bug.kind = ErrorKind::engineError;
        result.bug.detail = error.message();
    } catch (const std::exception &e) {
        // Anything else is a host-side failure; never let it escape the
        // engine boundary.
        result.termination = TerminationKind::hostFault;
        result.terminationDetail = std::string("host fault: ") + e.what();
    }
    result.output = std::move(io_.output);
    result.errOutput = std::move(io_.errOutput);
    io_.guard = nullptr;
    if (profiling_)
        flushTelemetry(result);
    return result;
}

ManagedEngine::FnProfile *
ManagedEngine::profileFor(const Function *fn)
{
    return &fnProfiles_[fn];
}

MValue
ManagedEngine::callFunction(const Function *fn, std::vector<MValue> args,
                            std::vector<MValue> varargs)
{
    guard_.enterCall();
    resolveEpoch_++;

    // Tier management: count invocations; compile hot functions.
    CompiledFunction *code = nullptr;
    if (options_.enableTier2) {
        unsigned &count = invocationCounts_[fn];
        count++;
        auto it = compiled_.find(fn);
        if (it != compiled_.end())
            code = it->second.get();
        else if (count >= options_.compileThreshold)
            code = tier2CodeFor(fn, nullptr);
    }
    Tier3Code *t3 = code != nullptr ? maybeTier3(fn, code) : nullptr;
    if (profiling_) {
        FnProfile *prof = profileFor(fn);
        (t3 != nullptr       ? prof->tier3Calls
             : code != nullptr ? prof->tier2Calls
                               : prof->tier1Calls)++;
    }

    Frame frame;
    frame.slots.resize(code != nullptr ? code->frameSize()
                                       : fn->numSlots());
    for (size_t i = 0; i < args.size() && i < frame.slots.size(); i++)
        frame.slots[i] = std::move(args[i]);
    frame.varargs = std::move(varargs);

    try {
        MValue result;
        if (t3 != nullptr)
            result = t3->execute(*this, frame);
        else if (code != nullptr)
            result = code->execute(*this, frame);
        else
            result = interpret(fn, frame);
        guard_.leaveCall();
        return result;
    } catch (MemoryErrorException &error) {
        guard_.leaveCall();
        if (error.report().function.empty())
            error.report().function = fn->name();
        throw;
    } catch (...) {
        guard_.leaveCall();
        throw;
    }
}

MValue
ManagedEngine::evalOperand(const Value *v, Frame &frame)
{
    switch (v->valueKind()) {
      case ValueKind::constantInt: {
        const auto *c = static_cast<const ConstantInt *>(v);
        return MValue::makeInt(c->value(), c->type()->intBits());
      }
      case ValueKind::constantFP: {
        const auto *c = static_cast<const ConstantFP *>(v);
        return MValue::makeFP(c->value(),
                              c->type()->kind() == TypeKind::f32 ? 32 : 64);
      }
      case ValueKind::constantNull:
        return MValue::makeAddr(Address{});
      case ValueKind::global:
        return MValue::makeAddr(
            globals_->addressOf(static_cast<const GlobalVariable *>(v)));
      case ValueKind::function:
        return MValue::makeAddr(
            globals_->addressOf(static_cast<const Function *>(v)));
      case ValueKind::argument: {
        const auto *arg = static_cast<const Argument *>(v);
        return frame.slots[arg->index()];
      }
      case ValueKind::instruction: {
        const auto *inst = static_cast<const Instruction *>(v);
        return frame.slots[static_cast<size_t>(inst->slot())];
      }
    }
    throw InternalError("bad operand kind");
}

CompiledFunction *
ManagedEngine::tier2CodeFor(const Function *fn, const char *why)
{
    auto it = compiled_.find(fn);
    if (it != compiled_.end())
        return it->second.get();
    MS_TRACE_SPAN("tier2.compile", fn->name());
    unsigned inlinedBefore = inlinedSites_;
    auto code = compileTier2(*fn, *this);
    if (options_.compileLatencyNsPerInst > 0) {
        // Model Graal's compile time (warm-up experiments).
        auto wait = std::chrono::nanoseconds(
            options_.compileLatencyNsPerInst * code->codeSize());
        auto until = std::chrono::steady_clock::now() + wait;
        while (std::chrono::steady_clock::now() < until) {
        }
    }
    compileEvents_.push_back(CompileEvent{
        why != nullptr ? fn->name() + why : fn->name(), guard_.steps()});
    tier2Count_++;
    if (profiling_) {
        telem_.tier2Compiles++;
        telem_.inlinedSites += inlinedSites_ - inlinedBefore;
        telem_.tier2CodeSizes.push_back(code->codeSize());
    }
    CompiledFunction *raw = code.get();
    compiled_[fn] = std::move(code);
    return raw;
}

Tier3Code *
ManagedEngine::tier3CodeFor(const Function *fn, CompiledFunction *code)
{
    if (code->tier3_ != nullptr)
        return code->tier3_;
    if (!options_.enableTier3 || code->tier3Fails_ >= 2)
        return nullptr;
    MS_TRACE_SPAN("tier3.translate", fn->name());
    auto t3 = translateTier3(*fn, *code, *this);
    if (t3 == nullptr) {
        code->tier3Fails_ = 2; // empty body: never retry
        return nullptr;
    }
    tier3Count_++;
    telem_.t3Compiles++;
    telem_.t3Superblocks += t3->superblocks();
    if (profiling_)
        telem_.tier3CodeSizes.push_back(t3->codeSize());
    code->tier3_ = t3.get();
    code->tier3Owner_ = std::move(t3);
    return code->tier3_;
}

Tier3Code *
ManagedEngine::maybeTier3(const Function *fn, CompiledFunction *code)
{
    if (code->tier3_ != nullptr)
        return code->tier3_;
    if (!options_.enableTier3 || code->tier3Fails_ >= 2 ||
        ++code->activations_ < options_.tier3Threshold)
        return nullptr;
    return tier3CodeFor(fn, code);
}

Tier3Code *
ManagedEngine::tier3ForOsr(const Function *fn, CompiledFunction *code)
{
    Tier3Code *t3 = tier3CodeFor(fn, code);
    if (t3 != nullptr)
        telem_.t3OsrEntries++;
    return t3;
}

void
ManagedEngine::retireTier3(CompiledFunction &code)
{
    // Recursive activations of the retired code deopt independently;
    // only the first retirement moves the owner (and counts a strike).
    if (code.tier3Owner_ == nullptr)
        return;
    tier3Retired_.push_back(std::move(code.tier3Owner_));
    code.tier3_ = nullptr;
    code.activations_ = 0;
    code.tier3Fails_++;
}

MValue
ManagedEngine::callCompiled(const Function *fn, CompiledFunction *code,
                            std::vector<MValue> args)
{
    guard_.enterCall();
    resolveEpoch_++;
    Frame frame;
    frame.slots.resize(code->frameSize());
    for (size_t i = 0; i < args.size() && i < frame.slots.size(); i++)
        frame.slots[i] = std::move(args[i]);
    try {
        // IC-dispatched calls never pass through invocationCounts_, so
        // the tier-up check lives here too (activations_ counts both).
        Tier3Code *t3 = maybeTier3(fn, code);
        if (t3 != nullptr && profiling_)
            profileFor(fn)->tier3Calls++;
        MValue result = t3 != nullptr ? t3->execute(*this, frame)
                                      : code->execute(*this, frame);
        guard_.leaveCall();
        return result;
    } catch (MemoryErrorException &error) {
        guard_.leaveCall();
        if (error.report().function.empty())
            error.report().function = fn->name();
        throw;
    } catch (...) {
        guard_.leaveCall();
        throw;
    }
}

ManagedEngine::Frame
ManagedEngine::acquireFrame()
{
    if (framePool_.empty())
        return Frame{};
    Frame frame = std::move(framePool_.back());
    framePool_.pop_back();
    return frame;
}

void
ManagedEngine::releaseFrame(Frame &&frame)
{
    // clear() keeps the slot capacity but destroys the values, so a
    // pooled frame pins no objects and resize() re-value-initializes.
    frame.slots.clear();
    frame.varargs.clear();
    framePool_.push_back(std::move(frame));
}

MValue
ManagedEngine::callCompiledFrame(const Function *fn, CompiledFunction *code,
                                 Frame &frame)
{
    guard_.enterCall();
    resolveEpoch_++;
    try {
        Tier3Code *t3 = maybeTier3(fn, code);
        if (t3 != nullptr && profiling_)
            profileFor(fn)->tier3Calls++;
        MValue result = t3 != nullptr ? t3->execute(*this, frame)
                                      : code->execute(*this, frame);
        guard_.leaveCall();
        return result;
    } catch (MemoryErrorException &error) {
        guard_.leaveCall();
        if (error.report().function.empty())
            error.report().function = fn->name();
        throw;
    } catch (...) {
        guard_.leaveCall();
        throw;
    }
}

MValue
ManagedEngine::interpret(const Function *fn, Frame &frame)
{
    const BasicBlock *bb = fn->entry();
    size_t idx = 0;
    uint64_t backedges = 0;
    bool osr = options_.enableTier2 && options_.enableOsr;
    FnProfile *prof = profiling_ ? profileFor(fn) : nullptr;
    while (true) {
        const Instruction &inst = *bb->insts()[idx];
        step();
        if (prof != nullptr)
            prof->tier1Steps++;
        switch (inst.op()) {
          case Opcode::br:
          case Opcode::condbr: {
            const BasicBlock *target;
            if (inst.op() == Opcode::br) {
                target = inst.target(0);
            } else {
                MValue cond = evalOperand(inst.operand(0), frame);
                target = cond.i != 0 ? inst.target(0) : inst.target(1);
            }
            // On-stack replacement: once this invocation's loops are hot,
            // continue in tier-2 code at the branch target, reusing the
            // live frame (paper Section 5 future work).
            if (osr && target->index() <= bb->index() &&
                ++backedges >= options_.osrThreshold) {
                CompiledFunction *code = tier2CodeFor(fn, " (OSR)");
                if (code != nullptr)
                    return code->execute(*this, frame,
                                         code->entryFor(target));
            }
            bb = target;
            idx = 0;
            continue;
          }
          case Opcode::ret:
            if (inst.numOperands() == 1)
                return evalOperand(inst.operand(0), frame);
            return MValue{};
          case Opcode::unreachable_:
            throw EngineError("reached 'unreachable' in " + fn->name());
          default: {
            MValue v = execInstruction(inst, frame);
            if (inst.slot() >= 0)
                frame.slots[static_cast<size_t>(inst.slot())] = std::move(v);
            idx++;
            continue;
          }
        }
    }
}

ObjRef
ManagedEngine::allocaObject(const Instruction &inst)
{
    ObjRef obj = createManagedObject(StorageKind::stack, inst.accessType());
    if (!inst.name().empty())
        obj->setName(inst.name());
    return obj;
}

MValue
ManagedEngine::loadFrom(const Address &addr, const Type *type,
                        const SourceLoc &loc)
{
    if (addr.isNull())
        raiseNullDeref(false, loc);
    return loadFromObject(addr.pointee.get(), addr.offset, type);
}

void
ManagedEngine::storeTo(const Address &addr, const Type *type,
                       const MValue &v, const SourceLoc &loc)
{
    if (addr.isNull())
        raiseNullDeref(true, loc);
    storeToObject(addr.pointee.get(), addr.offset, type, v);
}

MValue
ManagedEngine::badAccessClass()
{
    throw InternalError("bad access class");
}

MValue
ManagedEngine::execInstruction(const Instruction &inst, Frame &frame)
{
    switch (inst.op()) {
      case Opcode::alloca_:
        return MValue::makeAddr(Address{allocaObject(inst), 0});
      case Opcode::load: {
        MValue addr = evalOperand(inst.operand(0), frame);
        return loadFrom(addr.a, inst.accessType(), inst.loc());
      }
      case Opcode::store: {
        MValue value = evalOperand(inst.operand(0), frame);
        MValue addr = evalOperand(inst.operand(1), frame);
        storeTo(addr.a, inst.accessType(), value, inst.loc());
        return MValue{};
      }
      case Opcode::gep: {
        MValue base = evalOperand(inst.operand(0), frame);
        int64_t offset = inst.gepConstOffset();
        if (inst.numOperands() > 1) {
            MValue index = evalOperand(inst.operand(1), frame);
            offset += index.i * static_cast<int64_t>(inst.gepScale());
        }
        return MValue::makeAddr(base.a.withOffset(offset));
      }
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::sdiv: case Opcode::udiv: case Opcode::srem:
      case Opcode::urem: case Opcode::and_: case Opcode::or_:
      case Opcode::xor_: case Opcode::shl: case Opcode::lshr:
      case Opcode::ashr: {
        MValue l = evalOperand(inst.operand(0), frame);
        MValue r = evalOperand(inst.operand(1), frame);
        unsigned width = inst.type()->intBits();
        return MValue::makeInt(evalIntBinOp(inst.op(), l, r, width), width);
      }
      case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
      case Opcode::fdiv: case Opcode::frem: {
        MValue l = evalOperand(inst.operand(0), frame);
        MValue r = evalOperand(inst.operand(1), frame);
        unsigned width = inst.type()->kind() == TypeKind::f32 ? 32 : 64;
        return MValue::makeFP(evalFloatBinOp(inst.op(), l, r, width), width);
      }
      case Opcode::fneg: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeFP(-v.f,
                              inst.type()->kind() == TypeKind::f32 ? 32 : 64);
      }
      case Opcode::icmp: {
        MValue l = evalOperand(inst.operand(0), frame);
        MValue r = evalOperand(inst.operand(1), frame);
        return MValue::makeInt(evalICmp(inst.intPred(), l, r) ? 1 : 0, 1);
      }
      case Opcode::fcmp: {
        MValue l = evalOperand(inst.operand(0), frame);
        MValue r = evalOperand(inst.operand(1), frame);
        return MValue::makeInt(
            evalFCmp(inst.floatPred(), l, r) ? 1 : 0, 1);
      }
      case Opcode::trunc: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeInt(v.i, inst.type()->intBits());
      }
      case Opcode::zext: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeInt(static_cast<int64_t>(v.zext()),
                               inst.type()->intBits());
      }
      case Opcode::sext: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeInt(v.i, inst.type()->intBits());
      }
      case Opcode::fptosi: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeInt(satFptosi(v.f), inst.type()->intBits());
      }
      case Opcode::fptoui: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeInt(static_cast<int64_t>(satFptoui(v.f)),
                               inst.type()->intBits());
      }
      case Opcode::sitofp: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeFP(static_cast<double>(v.i),
                              inst.type()->kind() == TypeKind::f32 ? 32 : 64);
      }
      case Opcode::uitofp: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeFP(static_cast<double>(v.zext()),
                              inst.type()->kind() == TypeKind::f32 ? 32 : 64);
      }
      case Opcode::fpext: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeFP(v.f, 64);
      }
      case Opcode::fptrunc: {
        MValue v = evalOperand(inst.operand(0), frame);
        return MValue::makeFP(v.f, 32);
      }
      case Opcode::ptrtoint: {
        MValue v = evalOperand(inst.operand(0), frame);
        if (v.a.isNull()) {
            return MValue::makeInt(v.a.offset, inst.type()->intBits());
        }
        // Pin the object so the integer can be converted back (a limited
        // relaxation; full tagged-pointer support is future work in the
        // paper too, Section 5).
        const ManagedObject *obj = v.a.pointee.get();
        uint64_t id;
        auto it = pinIds_.find(obj);
        if (it != pinIds_.end()) {
            id = it->second;
        } else {
            id = nextPinId_++;
            pinIds_[obj] = id;
            pinned_[id] = v.a.pointee;
        }
        constexpr int64_t bias = 1ll << 23;
        int64_t off = v.a.offset;
        if (off < -bias || off >= bias)
            throw EngineError("ptrtoint offset out of range");
        int64_t encoded = static_cast<int64_t>(id << 24) + off + bias;
        return MValue::makeInt(encoded, inst.type()->intBits());
      }
      case Opcode::inttoptr: {
        MValue v = evalOperand(inst.operand(0), frame);
        constexpr int64_t bias = 1ll << 23;
        uint64_t id = static_cast<uint64_t>(v.i) >> 24;
        auto it = pinned_.find(id);
        if (it != pinned_.end()) {
            int64_t off = (v.i & 0xffffff) - bias;
            return MValue::makeAddr(Address{it->second, off});
        }
        // Unknown integer: behaves like an invalid pointer whose deref
        // reports a NULL dereference.
        Address addr;
        addr.offset = v.i;
        return MValue::makeAddr(std::move(addr));
      }
      case Opcode::select: {
        MValue cond = evalOperand(inst.operand(0), frame);
        return evalOperand(inst.operand(cond.i != 0 ? 1 : 2), frame);
      }
      case Opcode::call:
        return execCall(inst, frame);
      default:
        throw InternalError("terminator reached execInstruction");
    }
}

uint8_t
ManagedEngine::intrinsicIdFor(const Function *fn)
{
    auto it = intrinsicCache_.find(fn);
    if (it != intrinsicCache_.end())
        return it->second;
    uint8_t id = static_cast<uint8_t>(intrinsicFor(fn->name()));
    intrinsicCache_[fn] = id;
    return id;
}

MValue
ManagedEngine::execCall(const Instruction &inst, Frame &frame)
{
    resolveEpoch_++;
    // Call-site profile for tier-2 inlining decisions (warm-up only:
    // inlined sites never come back through here).
    if (options_.enableTier2 && options_.enableInlining)
        callSiteCounts_[&inst]++;

    const Function *callee = nullptr;
    const Value *callee_v = inst.operand(0);
    if (callee_v->valueKind() == ValueKind::function) {
        callee = static_cast<const Function *>(callee_v);
    } else {
        MValue target = evalOperand(callee_v, frame);
        if (target.kind != MValue::Kind::addrV || target.a.isNull())
            raiseNullDeref(false, inst.loc());
        const ManagedObject *obj = target.a.pointee.get();
        if (obj->kind() != ObjectKind::functionObject) {
            BugReport report;
            report.kind = ErrorKind::typeError;
            report.detail = "call through a pointer to " + obj->describe();
            throw MemoryErrorException(std::move(report));
        }
        callee = module_->functionById(
            static_cast<const FunctionObject *>(obj)->fnId());
    }

    std::vector<MValue> args;
    args.reserve(inst.numOperands() - 1);
    for (size_t i = 1; i < inst.numOperands(); i++)
        args.push_back(evalOperand(inst.operand(i), frame));

    if (callee->isDeclaration()) {
        if (callee->isIntrinsic()) {
            // Varargs intrinsics need the caller's frame.
            Intrinsic id = static_cast<Intrinsic>(intrinsicIdFor(callee));
            switch (id) {
              case Intrinsic::vaStart: {
                std::vector<Address> boxed;
                boxed.reserve(frame.varargs.size());
                for (const MValue &v : frame.varargs)
                    boxed.push_back(boxVararg(v));
                return MValue::makeAddr(Address{
                    ObjRef(new VarargsObject(std::move(boxed))), 0});
              }
              case Intrinsic::vaCount:
                return MValue::makeInt(
                    static_cast<int64_t>(frame.varargs.size()), 32);
              default:
                return callIntrinsic(callee, &inst, args);
            }
        }
        throw EngineError("call to undefined function '" + callee->name() +
                          "'");
    }

    size_t fixed = callee->numArgs();
    std::vector<MValue> varargs;
    if (args.size() > fixed) {
        varargs.assign(std::make_move_iterator(args.begin() +
                                               static_cast<long>(fixed)),
                       std::make_move_iterator(args.end()));
        args.resize(fixed);
    }
    return callFunction(callee, std::move(args), std::move(varargs));
}

MValue
ManagedEngine::callIntrinsic(const Function *fn, const Instruction *site,
                             std::vector<MValue> &args)
{
    switch (static_cast<Intrinsic>(intrinsicIdFor(fn))) {
      case Intrinsic::mallocFn:
      case Intrinsic::callocFn: {
        bool is_calloc =
            static_cast<Intrinsic>(intrinsicIdFor(fn)) ==
            Intrinsic::callocFn;
        int64_t size = is_calloc ? args[0].i * args[1].i : args[0].i;
        // Static hint from the allocation site, else a prior memento.
        const Type *hint = site != nullptr ? site->accessType() : nullptr;
        const Type **slot = nullptr;
        if (site != nullptr) {
            auto [it, inserted] = mementos_.try_emplace(site, nullptr);
            (void)inserted;
            if (hint == nullptr)
                hint = it->second;
            slot = &it->second;
        }
        Address addr = is_calloc
            ? heap_->allocateZeroed(size, hint, slot)
            : heap_->allocate(size, hint, slot);
        return MValue::makeAddr(std::move(addr));
      }
      case Intrinsic::reallocFn: {
        const Type **slot = nullptr;
        if (site != nullptr)
            slot = &mementos_.try_emplace(site, nullptr).first->second;
        return MValue::makeAddr(
            heap_->reallocate(args[0].a, args[1].i, slot));
      }
      case Intrinsic::freeFn:
        heap_->deallocate(args[0].a);
        return MValue{};
      case Intrinsic::sysExit:
        throw GuestExit(static_cast<int>(args[0].i));
      case Intrinsic::sysWrite: {
        int fd = static_cast<int>(args[0].i);
        const Address &buf = args[1].a;
        int64_t len = args[2].i;
        if (len > 0 && buf.isNull())
            raiseNullDeref(false, site != nullptr ? site->loc()
                                                  : SourceLoc{});
        std::string data;
        data.reserve(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; i++) {
            uint64_t byte = 0;
            Address dummy;
            buf.pointee->read(AccessClass::integer, 1, buf.offset + i,
                              byte, dummy);
            data.push_back(static_cast<char>(byte));
        }
        io_.write(fd, data.data(), data.size());
        return MValue::makeInt(len, 64);
      }
      case Intrinsic::sysGetchar:
        return MValue::makeInt(io_.getChar(), 32);
      case Intrinsic::sysAllocSize: {
        if (args[0].a.isNull())
            return MValue::makeInt(0, 64);
        return MValue::makeInt(args[0].a.pointee->byteSize(), 64);
      }
      case Intrinsic::vaArgPtr: {
        const Address &ap = args[0].a;
        if (ap.isNull())
            raiseNullDeref(false, site != nullptr ? site->loc()
                                                  : SourceLoc{});
        ManagedObject *obj = ap.pointee.get();
        if (obj->kind() != ObjectKind::varargsObject) {
            BugReport report;
            report.kind = ErrorKind::varargs;
            report.detail = "va_arg on a non-va_list value";
            throw MemoryErrorException(std::move(report));
        }
        return MValue::makeAddr(static_cast<VarargsObject *>(obj)->next());
      }
      case Intrinsic::vaEnd:
        return MValue{};
      case Intrinsic::mSqrt: return MValue::makeFP(std::sqrt(args[0].f), 64);
      case Intrinsic::mSin: return MValue::makeFP(std::sin(args[0].f), 64);
      case Intrinsic::mCos: return MValue::makeFP(std::cos(args[0].f), 64);
      case Intrinsic::mTan: return MValue::makeFP(std::tan(args[0].f), 64);
      case Intrinsic::mAtan: return MValue::makeFP(std::atan(args[0].f), 64);
      case Intrinsic::mAtan2:
        return MValue::makeFP(std::atan2(args[0].f, args[1].f), 64);
      case Intrinsic::mExp: return MValue::makeFP(std::exp(args[0].f), 64);
      case Intrinsic::mLog: return MValue::makeFP(std::log(args[0].f), 64);
      case Intrinsic::mPow:
        return MValue::makeFP(std::pow(args[0].f, args[1].f), 64);
      case Intrinsic::mFloor:
        return MValue::makeFP(std::floor(args[0].f), 64);
      case Intrinsic::mCeil: return MValue::makeFP(std::ceil(args[0].f), 64);
      case Intrinsic::mFabs: return MValue::makeFP(std::fabs(args[0].f), 64);
      case Intrinsic::mFmod:
        return MValue::makeFP(std::fmod(args[0].f, args[1].f), 64);
      case Intrinsic::vaStart:
      case Intrinsic::vaCount:
        throw InternalError("varargs intrinsic outside execCall");
      case Intrinsic::none:
        break;
    }
    throw EngineError("unknown intrinsic '" + fn->name() + "'");
}

} // namespace sulong
