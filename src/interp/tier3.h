/**
 * @file
 * Tier-3 execution: direct-threaded superblock dispatch.
 *
 * Tier-3 takes a hot tier-2 body and re-labels it, 1:1 and in the same
 * index space, as a flat TInst stream: each instruction carries a dense
 * dispatch opcode (TOp, with the tier-2 superinstruction flags folded
 * in) so the executor jumps handler-to-handler through a computed-goto
 * label table (or a portable switch — see threaded.h) instead of
 * re-decoding flags and switching on a sparse Opcode every step.
 *
 * On top of dispatch, straight-line runs of instructions are fused into
 * *superblocks*: maximal single-entry sequences that end at any branch,
 * return, call, or interpreter-escape op. The superblock head charges
 * the whole run's step count against the ResourceGuard in one batched
 * onSteps() call; every op in the run still executes individually with
 * every bounds/liveness/type/init check — fusion batches *accounting*,
 * never semantics. Exceptions and deopts mid-superblock return the
 * not-yet-executed remainder with uncharge(), so executedSteps() is
 * bit-identical to tier-1/tier-2 on every path.
 *
 * Because translation is 1:1, a tier-3 pc *is* a tier-2 pc: OSR enters
 * at any branch target, and deopt resumes tier-2 at the very next
 * instruction with the live frame — no state reconstruction beyond the
 * slot array both tiers already share. Deopt reasons: the step budget
 * edge (the guard refuses a batch that would cross the limit; tier-2
 * then steps per-op so the limit trips on exactly the right
 * instruction), an indirect call site going megamorphic, a struct-shape
 * cache missing kShapeMissDeoptStreak times in a row, and any detected
 * bug (reconciled, attributed, and rethrown so reports stay
 * byte-identical across tiers).
 */

#ifndef MS_INTERP_TIER3_H
#define MS_INTERP_TIER3_H

#include "interp/threaded.h"
#include "interp/tier2.h"

namespace sulong
{

/** One tier-3 instruction: the tier-2 PInst plus its flat dispatch
 *  opcode and, on superblock heads, the batched step charge. */
struct TInst
{
    PInst pi;
    TOp top = TOp::tInterp;
    /// Superblock length in ops, charged at once on entry; 0 on
    /// non-head instructions (already covered by their head's charge).
    uint16_t charge = 0;
    /// Checked memory effects (loads/stores/allocas, incl. fused) in
    /// the superblock — telemetry for "fused checks retired".
    uint16_t checks = 0;
    /// Index into Tier3Code::allocaCache_ for recyclable alloca sites
    /// (scalar and primitive-array locals); -1 when the site's type has
    /// no reset support and must always allocate afresh.
    int32_t allocaSite = -1;
};

/// Consecutive shape-cache misses at one access site before tier-3
/// concludes the site went polymorphic and deopts to tier-2.
constexpr uint16_t kShapeMissDeoptStreak = 64;

/// Superblock length cap (charge/checks are uint16_t; also bounds the
/// step-accounting granularity the guard sees in one batch).
constexpr size_t kMaxSuperblockLen = 1024;

/**
 * Direct-threaded code for one hot function. Shares the tier-2 body's
 * call sites, inline caches, and elision caches (the PInst operands
 * index into them), so IC/cache state stays coherent across deopts.
 */
class Tier3Code
{
  public:
    Tier3Code(const Function *fn, CompiledFunction *t2)
        : fn_(fn), t2_(t2)
    {}

    /**
     * Execute on the given frame. @p start_pc must be a superblock head
     * (function entry, any branch target, or any block entry — which
     * covers every OSR entry point).
     */
    MValue execute(ManagedEngine &engine, ManagedEngine::Frame &frame,
                   size_t start_pc = 0);

    size_t codeSize() const { return code_.size(); }
    unsigned superblocks() const { return superblocks_; }

  private:
    friend std::unique_ptr<Tier3Code>
    translateTier3(const Function &fn, CompiledFunction &t2,
                   ManagedEngine &engine);

    const Function *fn_;
    CompiledFunction *t2_;
    std::vector<TInst> code_;
    /// Per access site: consecutive shape-cache misses (tier-3's own —
    /// tier-2 re-fills shape caches without deopting, so streaks are a
    /// tier-3-only concern). Indexed like CompiledFunction's caches.
    std::vector<uint16_t> shapeMiss_;
    /// Per recyclable alloca site: the object most recently handed out.
    /// When its refcount drops back to 1 (only this cache holds it), the
    /// local provably died without escaping and the next execution of
    /// the site resets and reuses it instead of allocating.
    std::vector<ObjRef> allocaCache_;
    unsigned superblocks_ = 0;
};

/**
 * Translate a tier-2 body into tier-3 threaded code. Superblock fusion
 * honors ManagedOptions::enableFusion (off = every op is its own
 * superblock, isolating the dispatch win from batched accounting).
 * Returns null only for an empty body.
 */
std::unique_ptr<Tier3Code> translateTier3(const Function &fn,
                                          CompiledFunction &t2,
                                          ManagedEngine &engine);

} // namespace sulong

#endif // MS_INTERP_TIER3_H
