/**
 * @file
 * Dispatch vocabulary for the tier-3 direct-threaded interpreter.
 *
 * Tier-3 re-labels the tier-2 PInst stream with a flat opcode (TOp)
 * whose values are dense array indices, so the executor can dispatch
 * either through a computed-goto label table (GCC/Clang `&&label`
 * extension, probed by CMake into MS_THREADED_DISPATCH) or through a
 * portable switch that compiles on any C++20 toolchain. The X-macro
 * below is the single source of truth: the enum, the label table, the
 * switch, and topName() are all generated from it, so the two dispatch
 * modes can never drift apart.
 *
 * Each TOp already folds in the tier-2 superinstruction flags
 * (kPFuseLoad/kPFuseStore/kPFuseCmpBr): the executor never re-tests
 * PInst::flags on the hot path. Ops with no specialized handler (plain
 * `call`, ptrtoint/inttoptr, megamorphic indirect-call sites) funnel
 * into tInterp, which defers to the tier-1 instruction evaluator —
 * exactly what tier-2's default case does.
 */

#ifndef MS_INTERP_THREADED_H
#define MS_INTERP_THREADED_H

#include <cstddef>
#include <cstdint>

namespace sulong
{

/**
 * One entry per tier-3 handler. Order is the dispatch-table order;
 * keep branches/returns first (hottest) and the interpreter escape
 * hatch last.
 */
#define MS_T3_OPS(X)                                                    \
    X(tBr)          /* unconditional jump */                            \
    X(tCondBr)      /* conditional jump on an i1 slot */                \
    X(tRet)         /* return a value */                                \
    X(tRetVoid)     /* return void */                                   \
    X(tICmp)        /* integer compare */                               \
    X(tICmpBr)      /* fused compare + branch */                        \
    X(tICmpLoad)    /* fused load + compare */                          \
    X(tICmpLoadBr)  /* fused load + compare + branch */                 \
    X(tIArith)      /* integer arithmetic */                            \
    X(tIArithL)     /* fused load + arith */                            \
    X(tIArithS)     /* arith + fused store */                           \
    X(tIArithLS)    /* fused load + arith + fused store */              \
    X(tFArith)      /* float arithmetic */                              \
    X(tFArithL)     /* fused load + float arith */                      \
    X(tFArithS)     /* float arith + fused store */                     \
    X(tFArithLS)    /* fused load + float arith + fused store */        \
    X(tFCmp)        /* float compare */                                 \
    X(tGep)         /* address arithmetic */                            \
    X(tLoad)        /* checked load (bounds/liveness/type/init) */      \
    X(tStore)       /* checked store */                                 \
    X(tAlloca)      /* stack allocation */                              \
    X(tSelect)      /* ternary select */                                \
    X(tFneg)        /* float negate */                                  \
    X(tTruncSext)   /* trunc / sext (shared makeInt path) */            \
    X(tZext)        /* zext */                                          \
    X(tCastOther)   /* fp<->int and fp resize casts */                  \
    X(tMove)        /* inline-splice slot move */                       \
    X(tInlineRet)   /* inline-splice return (move + jump) */            \
    X(tCallDirect)  /* direct call through a CallSite */                \
    X(tCallIndirect)/* monomorphic-IC indirect call */                  \
    X(tInterp)      /* tier-1 evaluator escape hatch */                 \
    X(tUnreachable) /* 'unreachable' trap */

/// Flat tier-3 opcode; values are dense dispatch-table indices.
enum class TOp : uint8_t
{
#define MS_T3_ENUM(name) name,
    MS_T3_OPS(MS_T3_ENUM)
#undef MS_T3_ENUM
};

/// Number of tier-3 handlers (size of the dispatch table).
inline constexpr size_t kNumTOps = []() {
    size_t n = 0;
#define MS_T3_COUNT(name) n++;
    MS_T3_OPS(MS_T3_COUNT)
#undef MS_T3_COUNT
    return n;
}();

/// Handler name for telemetry/debugging ("tICmpBr", ...).
const char *topName(TOp op);

/// True when this build dispatches through computed-goto labels; false
/// when it uses the portable switch fallback. Purely informational —
/// both modes execute identical semantics.
bool threadedDispatchEnabled();

} // namespace sulong

#endif // MS_INTERP_THREADED_H
