/**
 * @file
 * Safe Sulong: the managed execution engine (paper Sections 3.1-3.4).
 *
 * Executes IR on the managed object model. Every memory access is
 * checked; detected bugs abort the run with a structured report. A
 * two-tier execution model stands in for the Truffle/Graal dynamic
 * compiler: functions start in the tier-1 interpreter and, once hot, are
 * "compiled" to a pre-decoded direct-threaded form with safe semantics
 * (bugs still trap; nothing is optimized away).
 */

#ifndef MS_INTERP_MANAGED_ENGINE_H
#define MS_INTERP_MANAGED_ENGINE_H

#include <memory>
#include <unordered_map>

#include "interp/mvalue.h"
#include "managed/globals.h"
#include "managed/heap.h"
#include "tools/engine.h"

namespace sulong
{

class CompiledFunction;

/** Tunables of the managed engine. */
struct ManagedOptions
{
    /// Enable the tier-2 "compiler" (off = pure interpreter).
    bool enableTier2 = true;
    /// Invocation count after which a function is tier-2 compiled.
    unsigned compileThreshold = 50;
    /// On-stack replacement: tier-up inside a running function once its
    /// loops get hot. The paper's prototype *lacks* OSR (Sections
    /// 4.2/5) — off by default to stay faithful; enabling it is the
    /// "future work" fix.
    bool enableOsr = false;
    /// Loop back-edges executed in one invocation before OSR kicks in.
    unsigned osrThreshold = 20'000;
    /// Simulated per-instruction compile latency in nanoseconds, modelling
    /// Graal's compile time for the warm-up experiments (0 = free).
    uint64_t compileLatencyNsPerInst = 0;
    /// Profile-guided inlining: splice small hot callees directly into
    /// the caller's tier-2 code (slots renamed, checks intact).
    bool enableInlining = true;
    /// Maximum pre-decoded instructions a call site may add (including
    /// nested inlined calls) before inlining is rejected.
    unsigned inlineBudget = 64;
    /// Call-site invocations observed during tier-1 warm-up before a
    /// site counts as hot. -1 = auto (half the compile threshold);
    /// 0 = inline every eligible site (tests/ablation).
    int inlineSiteMin = -1;
    /// Redundant-check elision: cache pointee resolution per address
    /// slot / per access site so straight-line re-accesses skip the
    /// aggregate walk. Bounds/type/liveness checks always run; the
    /// --no-check-elision ablation proves reports are bit-identical.
    bool enableCheckElision = true;
    /// Disable the relaxed type rules of Section 3.2 (ablation).
    bool strictTypes = false;
    /// Keep profiling counters and tier-2 code across run() calls on the
    /// same module — the in-process re-execution mode the paper's
    /// warm-up experiment (Fig. 15) uses.
    bool persistState = false;
    /// Report heap blocks never freed at normal exit as a memory-leak
    /// bug (paper Section 6 future work; the managed heap's exact
    /// allocation tracking makes this precise, no heuristics).
    bool detectLeaks = false;
    /// Exact uninitialized-read detection (the paper's footnote-3/§6
    /// future feature): reading a never-written stack or heap byte is
    /// reported at the faulting load.
    bool detectUninitReads = false;
};

/** One compile event, recorded for the warm-up experiment (Fig. 15). */
struct CompileEvent
{
    std::string function;
    uint64_t atStep = 0;
};

/**
 * Per-run execution-profiler scratch. Plain (non-atomic) fields: the
 * engine is single-threaded per run, so hot paths pay one predicted
 * branch per event and the totals go to the global obs registry in one
 * batch when run() finishes (see ManagedEngine::flushTelemetry).
 */
struct ManagedTelemetry
{
    uint64_t tier2Compiles = 0;
    uint64_t inlinedSites = 0;
    // Call inline caches (tier-2 indirect call sites).
    uint64_t icToMono = 0;
    uint64_t icToMega = 0;
    uint64_t icHits = 0;
    // Redundant-check elision: address-slot resolutions and struct-shape
    // access caches (the two complementary tiers of PR 3).
    uint64_t elideSlotHits = 0;
    uint64_t elideSlotMisses = 0;
    uint64_t elideShapeHits = 0;
    uint64_t elideShapeMisses = 0;
    /// Code size of each tier-2 compile this run; recorded here and
    /// flushed to the registry histogram at run() end, so the compile
    /// path never touches the registry from this TU.
    std::vector<uint64_t> tier2CodeSizes;
};

/**
 * The Safe Sulong engine.
 */
class ManagedEngine : public Engine
{
  public:
    explicit ManagedEngine(ManagedOptions options = {});
    ~ManagedEngine() override;

    std::string name() const override { return "SafeSulong"; }

    ExecutionResult run(const Module &module,
                        const std::vector<std::string> &args,
                        const std::string &stdin_data) override;

    /** Compile events of the last run (warm-up instrumentation). */
    const std::vector<CompileEvent> &compileEvents() const
    {
        return compileEvents_;
    }
    /** Executed IR instructions in the last run. */
    uint64_t executedSteps() const { return guard_.steps(); }
    /** Functions executed at tier 2 at least once in the last run. */
    unsigned tier2Functions() const { return tier2Count_; }
    /** Call sites spliced into their caller by tier-2 inlining. */
    unsigned inlinedSites() const { return inlinedSites_; }

  private:
    friend class CompiledFunction;
    friend class Tier2Compiler;
    friend std::unique_ptr<CompiledFunction>
    compileTier2(const Function &fn, ManagedEngine &engine);

    struct Frame
    {
        std::vector<MValue> slots;
        std::vector<MValue> varargs;
    };

    /// Shared arithmetic/comparison cores used by both tiers, so tier-2
    /// cannot drift from interpreter semantics.
    static int64_t evalIntBinOp(Opcode op, const MValue &l, const MValue &r,
                                unsigned width);
    static double evalFloatBinOp(Opcode op, const MValue &l, const MValue &r,
                                 unsigned width);
    static bool evalICmp(IntPred pred, const MValue &l, const MValue &r);
    static bool evalFCmp(FloatPred pred, const MValue &l, const MValue &r);

    // --- Interpreter core -------------------------------------------------
    MValue callFunction(const Function *fn, std::vector<MValue> args,
                        std::vector<MValue> varargs);
    MValue interpret(const Function *fn, Frame &frame);
    MValue evalOperand(const Value *v, Frame &frame);
    MValue execInstruction(const Instruction &inst, Frame &frame);
    MValue loadFrom(const Address &addr, const Type *type,
                    const SourceLoc &loc);
    void storeTo(const Address &addr, const Type *type, const MValue &v,
                 const SourceLoc &loc);
    /// Scalar access against an already-resolved (object, offset) pair —
    /// the tail of loadFrom/storeTo, shared with tier-2's resolution
    /// cache so the leaf checks are one piece of code in both paths.
    MValue loadFromObject(ManagedObject *obj, int64_t offset,
                          const Type *type);
    void storeToObject(ManagedObject *obj, int64_t offset, const Type *type,
                       const MValue &v);
    MValue execCall(const Instruction &inst, Frame &frame);
    MValue callIntrinsic(const Function *fn, const Instruction *site,
                         std::vector<MValue> &args);
    ObjRef allocaObject(const Instruction &inst);
    /** Compile (or fetch) tier-2 code outside the invocation-count path:
     *  OSR transitions and inline-cache compile-on-first-dispatch. */
    CompiledFunction *tier2CodeFor(const Function *fn, const char *why);
    /** Invoke tier-2 code directly (call inline caches), with the same
     *  depth accounting and bug attribution as callFunction. */
    MValue callCompiled(const Function *fn, CompiledFunction *code,
                        std::vector<MValue> args);
    /// Saturating float->int conversions shared by both tiers.
    static int64_t satFptosi(double v);
    static uint64_t satFptoui(double v);
    /** Cached intrinsic id (raw enum value) for a declared function. */
    uint8_t intrinsicIdFor(const Function *fn);

    [[noreturn]] void raiseNullDeref(bool is_write, const SourceLoc &loc);
    void step();
    void reportLeaks(ExecutionResult &result);

    // --- Execution profiler ------------------------------------------------
    /// Per-function retired-step and tier attribution.
    struct FnProfile
    {
        uint64_t tier1Steps = 0;
        uint64_t tier2Steps = 0;
        uint64_t tier1Calls = 0;
        uint64_t tier2Calls = 0;
    };
    FnProfile *profileFor(const Function *fn);
    /// Push this run's telemetry into the global obs registry. Defined
    /// in engine_telemetry.cc: keeping the registry-heavy code out of
    /// this TU keeps the interpreter's codegen byte-identical between
    /// MS_OBS=ON and =OFF builds (the perf-gate comparison).
    void flushTelemetry(const ExecutionResult &result);

    // --- State ---------------------------------------------------------------
    ManagedOptions options_;
    const Module *module_ = nullptr;
    std::unique_ptr<GlobalStore> globals_;
    /// Private context for heap-interned array shapes. Keeping it off the
    /// module's TypeContext leaves the module strictly read-only during
    /// execution, so batch jobs can share one cached module across
    /// threads. Declared before heap_, which holds a reference into it.
    std::unique_ptr<TypeContext> heapTypes_;
    std::unique_ptr<ManagedHeap> heap_;
    GuestIO io_;
    /// Per-run resource accounting (steps, call depth, heap, output,
    /// deadline, cancellation). Reset on every run(); the heap and the
    /// guest IO report into it by stable address.
    ResourceGuard guard_;

    /// Allocation-site mementos (Section 3.3), hashed: the malloc
    /// wrappers of the safe libc make this a hot lookup.
    std::unordered_map<const Instruction *, const Type *> mementos_;
    /// ptrtoint pinning: object id -> object.
    std::unordered_map<uint64_t, ObjRef> pinned_;
    uint64_t nextPinId_ = 1;
    std::unordered_map<const ManagedObject *, uint64_t> pinIds_;

    /// Intrinsic ids cached per Function (avoids name lookups on the
    /// hot call path).
    std::unordered_map<const Function *, uint8_t> intrinsicCache_;

    /// Tier-2 state.
    std::unordered_map<const Function *, unsigned> invocationCounts_;
    std::unordered_map<const Function *, std::unique_ptr<CompiledFunction>>
        compiled_;
    /// Per-call-site invocation counts from tier-1 warm-up; tier-2
    /// compilation consults them to pick inlining candidates.
    std::unordered_map<const Instruction *, uint32_t> callSiteCounts_;
    std::vector<CompileEvent> compileEvents_;
    unsigned tier2Count_ = 0;
    unsigned inlinedSites_ = 0;
    /// Resolution-cache epoch: bumped at call boundaries, the only
    /// place object structure can change (free/realloc are calls).
    /// Stores and branches never invalidate — aggregate layout is
    /// immutable while an object is live, and every cached resolution
    /// is re-validated structurally (object identity, offset, width,
    /// liveness) before use anyway. Starts at 1 so the epoch==0
    /// "uncacheable" sentinel in SlotResolution can never match.
    uint64_t resolveEpoch_ = 1;

    /// Execution-profiler state; profiling_ is captured once per run
    /// from obs::metricsEnabled() so the per-instruction cost of a
    /// disabled profiler is a single predicted branch.
    bool profiling_ = false;
    ManagedTelemetry telem_;
    std::unordered_map<const Function *, FnProfile> fnProfiles_;
    /// Heap totals already flushed (the heap outlives run() under
    /// persistState, so flushes must be delta-based).
    uint64_t heapAllocBytesFlushed_ = 0;
    uint64_t heapFreedBytesFlushed_ = 0;
    uint64_t heapAllocsFlushed_ = 0;
    uint64_t heapFreesFlushed_ = 0;
};

} // namespace sulong

#endif // MS_INTERP_MANAGED_ENGINE_H
