/**
 * @file
 * Safe Sulong: the managed execution engine (paper Sections 3.1-3.4).
 *
 * Executes IR on the managed object model. Every memory access is
 * checked; detected bugs abort the run with a structured report. A
 * two-tier execution model stands in for the Truffle/Graal dynamic
 * compiler: functions start in the tier-1 interpreter and, once hot, are
 * "compiled" to a pre-decoded direct-threaded form with safe semantics
 * (bugs still trap; nothing is optimized away).
 */

#ifndef MS_INTERP_MANAGED_ENGINE_H
#define MS_INTERP_MANAGED_ENGINE_H

#include <cmath>
#include <memory>
#include <unordered_map>

#include "interp/mvalue.h"
#include "ir/type.h"
#include "managed/globals.h"
#include "managed/heap.h"
#include "tools/engine.h"

namespace sulong
{

class CompiledFunction;
class Tier3Code;

/** Tunables of the managed engine. */
struct ManagedOptions
{
    /// Enable the tier-2 "compiler" (off = pure interpreter).
    bool enableTier2 = true;
    /// Invocation count after which a function is tier-2 compiled.
    unsigned compileThreshold = 50;
    /// On-stack replacement: tier-up inside a running function once its
    /// loops get hot. The paper's prototype *lacks* OSR (Sections
    /// 4.2/5) — off by default to stay faithful; enabling it is the
    /// "future work" fix.
    bool enableOsr = false;
    /// Loop back-edges executed in one invocation before OSR kicks in.
    unsigned osrThreshold = 20'000;
    /// Simulated per-instruction compile latency in nanoseconds, modelling
    /// Graal's compile time for the warm-up experiments (0 = free).
    uint64_t compileLatencyNsPerInst = 0;
    /// Profile-guided inlining: splice small hot callees directly into
    /// the caller's tier-2 code (slots renamed, checks intact).
    bool enableInlining = true;
    /// Maximum pre-decoded instructions a call site may add (including
    /// nested inlined calls) before inlining is rejected.
    unsigned inlineBudget = 64;
    /// Call-site invocations observed during tier-1 warm-up before a
    /// site counts as hot. -1 = auto (half the compile threshold);
    /// 0 = inline every eligible site (tests/ablation).
    int inlineSiteMin = -1;
    /// Redundant-check elision: cache pointee resolution per address
    /// slot / per access site so straight-line re-accesses skip the
    /// aggregate walk. Bounds/type/liveness checks always run; the
    /// --no-check-elision ablation proves reports are bit-identical.
    bool enableCheckElision = true;
    /// Tier-3: re-label hot tier-2 bodies as a direct-threaded
    /// superblock stream (computed-goto dispatch where the toolchain
    /// supports it; see threaded.h). Every check still runs; tier-3
    /// deopts back to tier-2 on IC megamorphism, shape-cache miss
    /// streaks, step-budget edges, and any detected bug.
    bool enableTier3 = true;
    /// Tier-2 activations after which a function is tier-3 translated.
    unsigned tier3Threshold = 200;
    /// Superblock fusion: batch straight-line runs into one step-charge
    /// (off = every op is its own superblock; the --no-fusion ablation
    /// isolates the dispatch win from batched accounting).
    bool enableFusion = true;
    /// OSR from tier-2 loop back-edges into tier-3 mid-activation.
    bool tier3Osr = true;
    /// Back-edges in one tier-2 activation before tier-3 OSR kicks in.
    unsigned tier3OsrThreshold = 10'000;
    /// Disable the relaxed type rules of Section 3.2 (ablation).
    bool strictTypes = false;
    /// Keep profiling counters and tier-2 code across run() calls on the
    /// same module — the in-process re-execution mode the paper's
    /// warm-up experiment (Fig. 15) uses.
    bool persistState = false;
    /// Report heap blocks never freed at normal exit as a memory-leak
    /// bug (paper Section 6 future work; the managed heap's exact
    /// allocation tracking makes this precise, no heuristics).
    bool detectLeaks = false;
    /// Exact uninitialized-read detection (the paper's footnote-3/§6
    /// future feature): reading a never-written stack or heap byte is
    /// reported at the faulting load.
    bool detectUninitReads = false;
};

/** One compile event, recorded for the warm-up experiment (Fig. 15). */
struct CompileEvent
{
    std::string function;
    uint64_t atStep = 0;
};

/**
 * Per-run execution-profiler scratch. Plain (non-atomic) fields: the
 * engine is single-threaded per run, so hot paths pay one predicted
 * branch per event and the totals go to the global obs registry in one
 * batch when run() finishes (see ManagedEngine::flushTelemetry).
 */
struct ManagedTelemetry
{
    uint64_t tier2Compiles = 0;
    uint64_t inlinedSites = 0;
    // Call inline caches (tier-2 indirect call sites).
    uint64_t icToMono = 0;
    uint64_t icToMega = 0;
    uint64_t icHits = 0;
    // Redundant-check elision: address-slot resolutions and struct-shape
    // access caches (the two complementary tiers of PR 3).
    uint64_t elideSlotHits = 0;
    uint64_t elideSlotMisses = 0;
    uint64_t elideShapeHits = 0;
    uint64_t elideShapeMisses = 0;
    /// Code size of each tier-2 compile this run; recorded here and
    /// flushed to the registry histogram at run() end, so the compile
    /// path never touches the registry from this TU.
    std::vector<uint64_t> tier2CodeSizes;
    // Tier-3 (cold-path events are counted unconditionally — they are
    // rare, and benches read them through telemetry() without needing
    // the obs registry; only the flush is profiling-gated).
    uint64_t t3Compiles = 0;
    uint64_t t3Superblocks = 0;
    uint64_t t3OsrEntries = 0;
    uint64_t t3DeoptMega = 0;
    uint64_t t3DeoptShape = 0;
    uint64_t t3DeoptSteps = 0;
    uint64_t t3DeoptBug = 0;
    /// Checked memory effects retired inside charged superblocks
    /// (profiling-gated: this one lives on the hot dispatch path).
    uint64_t t3FusedChecks = 0;
    std::vector<uint64_t> tier3CodeSizes;
};

/**
 * The Safe Sulong engine.
 */
class ManagedEngine : public Engine
{
  public:
    explicit ManagedEngine(ManagedOptions options = {});
    ~ManagedEngine() override;

    std::string name() const override { return "SafeSulong"; }

    ExecutionResult run(const Module &module,
                        const std::vector<std::string> &args,
                        const std::string &stdin_data) override;

    /** Compile events of the last run (warm-up instrumentation). */
    const std::vector<CompileEvent> &compileEvents() const
    {
        return compileEvents_;
    }
    /** Executed IR instructions in the last run. */
    uint64_t executedSteps() const { return guard_.steps(); }
    /** Functions executed at tier 2 at least once in the last run. */
    unsigned tier2Functions() const { return tier2Count_; }
    /** Functions translated to tier-3 in the last run. */
    unsigned tier3Functions() const { return tier3Count_; }
    /** Call sites spliced into their caller by tier-2 inlining. */
    unsigned inlinedSites() const { return inlinedSites_; }
    /** This run's profiler scratch (tier-3 event counters are always
     *  populated; the rest only when obs metrics are enabled). */
    const ManagedTelemetry &telemetry() const { return telem_; }

  private:
    friend class CompiledFunction;
    friend class Tier2Compiler;
    friend class Tier3Code;
    friend std::unique_ptr<CompiledFunction>
    compileTier2(const Function &fn, ManagedEngine &engine);
    friend std::unique_ptr<Tier3Code>
    translateTier3(const Function &fn, CompiledFunction &t2,
                   ManagedEngine &engine);

    struct Frame
    {
        std::vector<MValue> slots;
        std::vector<MValue> varargs;
    };

    /// Shared arithmetic/comparison cores used by both tiers, so tier-2
    /// cannot drift from interpreter semantics. Inline: these sit on the
    /// per-instruction path of every tier; the throwing edges stay
    /// out-of-line so the hot body carries no EH setup.
    static int64_t
    evalIntBinOp(Opcode op, const MValue &l, const MValue &r, unsigned width)
    {
        switch (op) {
          case Opcode::add:
            return static_cast<int64_t>(
                static_cast<uint64_t>(l.i) + static_cast<uint64_t>(r.i));
          case Opcode::sub:
            return static_cast<int64_t>(
                static_cast<uint64_t>(l.i) - static_cast<uint64_t>(r.i));
          case Opcode::mul:
            return static_cast<int64_t>(
                static_cast<uint64_t>(l.i) * static_cast<uint64_t>(r.i));
          case Opcode::sdiv:
            if (r.i == 0)
                raiseDivZero();
            if (l.i == INT64_MIN && r.i == -1)
                return INT64_MIN;
            return l.i / r.i;
          case Opcode::udiv:
            if (r.zext() == 0)
                raiseDivZero();
            return static_cast<int64_t>(l.zext() / r.zext());
          case Opcode::srem:
            if (r.i == 0)
                raiseDivZero();
            if (l.i == INT64_MIN && r.i == -1)
                return 0;
            return l.i % r.i;
          case Opcode::urem:
            if (r.zext() == 0)
                raiseDivZero();
            return static_cast<int64_t>(l.zext() % r.zext());
          case Opcode::and_: return l.i & r.i;
          case Opcode::or_: return l.i | r.i;
          case Opcode::xor_: return l.i ^ r.i;
          case Opcode::shl:
            return static_cast<int64_t>(l.zext() << (r.zext() & (width - 1)));
          case Opcode::lshr:
            return static_cast<int64_t>(l.zext() >> (r.zext() & (width - 1)));
          case Opcode::ashr:
            return l.i >> (r.zext() & (width - 1));
          default:
            return badIntBinOp();
        }
    }

    static double
    evalFloatBinOp(Opcode op, const MValue &l, const MValue &r,
                   unsigned width)
    {
        if (width == 32) {
            float lf = static_cast<float>(l.f);
            float rf = static_cast<float>(r.f);
            switch (op) {
              case Opcode::fadd: return lf + rf;
              case Opcode::fsub: return lf - rf;
              case Opcode::fmul: return lf * rf;
              case Opcode::fdiv: return lf / rf;
              default: return std::fmod(lf, rf);
            }
        }
        switch (op) {
          case Opcode::fadd: return l.f + r.f;
          case Opcode::fsub: return l.f - r.f;
          case Opcode::fmul: return l.f * r.f;
          case Opcode::fdiv: return l.f / r.f;
          default: return std::fmod(l.f, r.f);
        }
    }

    static bool
    evalICmp(IntPred pred, const MValue &l, const MValue &r)
    {
        if (l.kind == MValue::Kind::addrV || r.kind == MValue::Kind::addrV)
            return evalPtrCmp(pred, l, r);
        switch (pred) {
          case IntPred::eq: return l.i == r.i;
          case IntPred::ne: return l.i != r.i;
          case IntPred::slt: return l.i < r.i;
          case IntPred::sle: return l.i <= r.i;
          case IntPred::sgt: return l.i > r.i;
          case IntPred::sge: return l.i >= r.i;
          case IntPred::ult: return l.zext() < r.zext();
          case IntPred::ule: return l.zext() <= r.zext();
          case IntPred::ugt: return l.zext() > r.zext();
          case IntPred::uge: return l.zext() >= r.zext();
        }
        return false;
    }

    static bool
    evalFCmp(FloatPred pred, const MValue &l, const MValue &r)
    {
        if (std::isnan(l.f) || std::isnan(r.f))
            return false;
        switch (pred) {
          case FloatPred::oeq: return l.f == r.f;
          case FloatPred::one: return l.f != r.f;
          case FloatPred::olt: return l.f < r.f;
          case FloatPred::ole: return l.f <= r.f;
          case FloatPred::ogt: return l.f > r.f;
          case FloatPred::oge: return l.f >= r.f;
        }
        return false;
    }

    /// Cold edges of the inline eval cores.
    [[noreturn]] static void raiseDivZero();
    [[noreturn]] static int64_t badIntBinOp();
    static bool evalPtrCmp(IntPred pred, const MValue &l, const MValue &r);

    // --- Interpreter core -------------------------------------------------
    MValue callFunction(const Function *fn, std::vector<MValue> args,
                        std::vector<MValue> varargs);
    MValue interpret(const Function *fn, Frame &frame);
    MValue evalOperand(const Value *v, Frame &frame);
    MValue execInstruction(const Instruction &inst, Frame &frame);
    MValue loadFrom(const Address &addr, const Type *type,
                    const SourceLoc &loc);
    void storeTo(const Address &addr, const Type *type, const MValue &v,
                 const SourceLoc &loc);
    /// Scalar access against an already-resolved (object, offset) pair —
    /// the tail of loadFrom/storeTo, shared with tier-2's resolution
    /// cache so the leaf checks are one piece of code in both paths.
    /// Inline, with a devirtualizing kind dispatch: leaf reads/writes
    /// are the single hottest operation of every tier, and the leaf
    /// classes are final, so naming the concrete class lets the whole
    /// check-and-copy body inline into the caller.
    MValue
    loadFromObject(ManagedObject *obj, int64_t offset, const Type *type)
    {
        AccessClass cls = accessClassOf(type);
        unsigned size = static_cast<unsigned>(type->size());
        uint64_t bits = 0;
        Address out;
        readObject(obj, cls, size, offset, bits, out);
        switch (cls) {
          case AccessClass::pointer:
            return MValue::makeAddr(std::move(out));
          case AccessClass::floating:
            if (type->kind() == TypeKind::f32) {
                float f = 0;
                std::memcpy(&f, &bits, 4);
                return MValue::makeFP(f, 32);
            } else {
                double d = 0;
                std::memcpy(&d, &bits, 8);
                return MValue::makeFP(d, 64);
            }
          case AccessClass::integer:
            return MValue::makeInt(static_cast<int64_t>(bits),
                                   type->intBits() == 1 ? 1
                                                        : type->intBits());
        }
        return badAccessClass();
    }

    void
    storeToObject(ManagedObject *obj, int64_t offset, const Type *type,
                  const MValue &v)
    {
        AccessClass cls = accessClassOf(type);
        unsigned size = static_cast<unsigned>(type->size());
        switch (cls) {
          case AccessClass::pointer:
            writeObject(obj, cls, 8, offset, 0, v.a);
            return;
          case AccessClass::floating: {
            uint64_t bits = 0;
            if (type->kind() == TypeKind::f32) {
                float f = static_cast<float>(v.f);
                std::memcpy(&bits, &f, 4);
            } else {
                std::memcpy(&bits, &v.f, 8);
            }
            writeObject(obj, cls, size, offset, bits, Address{});
            return;
          }
          case AccessClass::integer:
            writeObject(obj, cls, size, offset,
                        static_cast<uint64_t>(v.i), Address{});
            return;
        }
    }

    static AccessClass
    accessClassOf(const Type *type)
    {
        if (type->isPointer())
            return AccessClass::pointer;
        if (type->isFloat())
            return AccessClass::floating;
        return AccessClass::integer;
    }

    /// Dispatch a leaf read by object kind so final leaf classes
    /// devirtualize; aggregates keep the virtual byte-wise walk.
    static void
    readObject(ManagedObject *obj, AccessClass cls, unsigned size,
               int64_t offset, uint64_t &bits, Address &out)
    {
        if (!obj->exactKind()) {
            obj->read(cls, size, offset, bits, out);
            return;
        }
        switch (obj->kind()) {
          case ObjectKind::i8Array:
            static_cast<I8Array *>(obj)->read(cls, size, offset, bits, out);
            return;
          case ObjectKind::i16Array:
            static_cast<I16Array *>(obj)->read(cls, size, offset, bits,
                                               out);
            return;
          case ObjectKind::i32Array:
            static_cast<I32Array *>(obj)->read(cls, size, offset, bits,
                                               out);
            return;
          case ObjectKind::i64Array:
            static_cast<I64Array *>(obj)->read(cls, size, offset, bits,
                                               out);
            return;
          case ObjectKind::f32Array:
            static_cast<F32Array *>(obj)->read(cls, size, offset, bits,
                                               out);
            return;
          case ObjectKind::f64Array:
            static_cast<F64Array *>(obj)->read(cls, size, offset, bits,
                                               out);
            return;
          default:
            obj->read(cls, size, offset, bits, out);
            return;
        }
    }

    static void
    writeObject(ManagedObject *obj, AccessClass cls, unsigned size,
                int64_t offset, uint64_t bits, const Address &addr)
    {
        if (!obj->exactKind()) {
            obj->write(cls, size, offset, bits, addr);
            return;
        }
        switch (obj->kind()) {
          case ObjectKind::i8Array:
            static_cast<I8Array *>(obj)->write(cls, size, offset, bits,
                                               addr);
            return;
          case ObjectKind::i16Array:
            static_cast<I16Array *>(obj)->write(cls, size, offset, bits,
                                                addr);
            return;
          case ObjectKind::i32Array:
            static_cast<I32Array *>(obj)->write(cls, size, offset, bits,
                                                addr);
            return;
          case ObjectKind::i64Array:
            static_cast<I64Array *>(obj)->write(cls, size, offset, bits,
                                                addr);
            return;
          case ObjectKind::f32Array:
            static_cast<F32Array *>(obj)->write(cls, size, offset, bits,
                                                addr);
            return;
          case ObjectKind::f64Array:
            static_cast<F64Array *>(obj)->write(cls, size, offset, bits,
                                                addr);
            return;
          default:
            obj->write(cls, size, offset, bits, addr);
            return;
        }
    }

    [[noreturn]] static MValue badAccessClass();
    MValue execCall(const Instruction &inst, Frame &frame);
    MValue callIntrinsic(const Function *fn, const Instruction *site,
                         std::vector<MValue> &args);
    ObjRef allocaObject(const Instruction &inst);
    /** Compile (or fetch) tier-2 code outside the invocation-count path:
     *  OSR transitions and inline-cache compile-on-first-dispatch. */
    CompiledFunction *tier2CodeFor(const Function *fn, const char *why);
    /** Invoke tier-2 code directly (call inline caches), with the same
     *  depth accounting and bug attribution as callFunction. */
    MValue callCompiled(const Function *fn, CompiledFunction *code,
                        std::vector<MValue> args);
    /** Tier-3's call fast path: invoke @p code on a frame the caller
     *  already sized and filled (via acquireFrame), skipping the
     *  intermediate argument vector callCompiled needs. Same depth
     *  accounting, tier-up check, and bug attribution. */
    MValue callCompiledFrame(const Function *fn, CompiledFunction *code,
                             Frame &frame);
    /** Pop a cleared frame off the pool (fresh value-initialized slots
     *  after resize; the backing allocation is reused across calls). */
    Frame acquireFrame();
    /** Clear @p frame and return it to the pool. Skipped on unwind —
     *  the frame just destructs and the pool refills on later calls. */
    void releaseFrame(Frame &&frame);
    /** Fetch (or translate) tier-3 code for a tier-2 body; null when
     *  tier-3 is off, the function is barred, or the body is empty. */
    Tier3Code *tier3CodeFor(const Function *fn, CompiledFunction *code);
    /** Tier-up check on the call path: counts a tier-2 activation and
     *  translates once the threshold is crossed. */
    Tier3Code *maybeTier3(const Function *fn, CompiledFunction *code);
    /** Tier-3 OSR request from a hot tier-2 back-edge. */
    Tier3Code *tier3ForOsr(const Function *fn, CompiledFunction *code);
    /** Invalidate a function's tier-3 code after a deopt (megamorphic
     *  IC / polymorphic shapes). The code object moves to a graveyard —
     *  recursive activations still executing it stay valid — and two
     *  strikes bar the function from retranslation. */
    void retireTier3(CompiledFunction &code);
    /// Saturating float->int conversions shared by both tiers.
    static int64_t satFptosi(double v);
    static uint64_t satFptoui(double v);
    /** Cached intrinsic id (raw enum value) for a declared function. */
    uint8_t intrinsicIdFor(const Function *fn);

    [[noreturn]] void raiseNullDeref(bool is_write, const SourceLoc &loc);
    void step();
    void reportLeaks(ExecutionResult &result);

    // --- Execution profiler ------------------------------------------------
    /// Per-function retired-step and tier attribution.
    struct FnProfile
    {
        uint64_t tier1Steps = 0;
        uint64_t tier2Steps = 0;
        uint64_t tier3Steps = 0;
        uint64_t tier1Calls = 0;
        uint64_t tier2Calls = 0;
        uint64_t tier3Calls = 0;
    };
    FnProfile *profileFor(const Function *fn);
    /// Push this run's telemetry into the global obs registry. Defined
    /// in engine_telemetry.cc: keeping the registry-heavy code out of
    /// this TU keeps the interpreter's codegen byte-identical between
    /// MS_OBS=ON and =OFF builds (the perf-gate comparison).
    void flushTelemetry(const ExecutionResult &result);

    // --- State ---------------------------------------------------------------
    ManagedOptions options_;
    const Module *module_ = nullptr;
    std::unique_ptr<GlobalStore> globals_;
    /// Private context for heap-interned array shapes. Keeping it off the
    /// module's TypeContext leaves the module strictly read-only during
    /// execution, so batch jobs can share one cached module across
    /// threads. Declared before heap_, which holds a reference into it.
    std::unique_ptr<TypeContext> heapTypes_;
    std::unique_ptr<ManagedHeap> heap_;
    GuestIO io_;
    /// Per-run resource accounting (steps, call depth, heap, output,
    /// deadline, cancellation). Reset on every run(); the heap and the
    /// guest IO report into it by stable address.
    ResourceGuard guard_;

    /// Allocation-site mementos (Section 3.3), hashed: the malloc
    /// wrappers of the safe libc make this a hot lookup.
    std::unordered_map<const Instruction *, const Type *> mementos_;
    /// ptrtoint pinning: object id -> object.
    std::unordered_map<uint64_t, ObjRef> pinned_;
    uint64_t nextPinId_ = 1;
    std::unordered_map<const ManagedObject *, uint64_t> pinIds_;

    /// Intrinsic ids cached per Function (avoids name lookups on the
    /// hot call path).
    std::unordered_map<const Function *, uint8_t> intrinsicCache_;

    /// Tier-2 state.
    std::unordered_map<const Function *, unsigned> invocationCounts_;
    std::unordered_map<const Function *, std::unique_ptr<CompiledFunction>>
        compiled_;
    /// Per-call-site invocation counts from tier-1 warm-up; tier-2
    /// compilation consults them to pick inlining candidates.
    std::unordered_map<const Instruction *, uint32_t> callSiteCounts_;
    std::vector<CompileEvent> compileEvents_;
    unsigned tier2Count_ = 0;
    unsigned inlinedSites_ = 0;
    /// Tier-3 state. Live code is owned by its CompiledFunction; retired
    /// code parks here until the next full reset so activations that
    /// deopted out of it can finish unwinding safely.
    unsigned tier3Count_ = 0;
    std::vector<std::unique_ptr<Tier3Code>> tier3Retired_;
    /// Recycled call frames for tier-3's call handlers: tiny-call
    /// workloads otherwise spend more time in the per-call slot-vector
    /// malloc/free than in the callee. Frames are cleared on release,
    /// so acquire + resize hands out value-initialized slots — the
    /// exact state a fresh frame would have.
    std::vector<Frame> framePool_;
    /// Resolution-cache epoch: bumped at call boundaries, the only
    /// place object structure can change (free/realloc are calls).
    /// Stores and branches never invalidate — aggregate layout is
    /// immutable while an object is live, and every cached resolution
    /// is re-validated structurally (object identity, offset, width,
    /// liveness) before use anyway. Starts at 1 so the epoch==0
    /// "uncacheable" sentinel in SlotResolution can never match.
    uint64_t resolveEpoch_ = 1;

    /// Execution-profiler state; profiling_ is captured once per run
    /// from obs::metricsEnabled() so the per-instruction cost of a
    /// disabled profiler is a single predicted branch.
    bool profiling_ = false;
    ManagedTelemetry telem_;
    std::unordered_map<const Function *, FnProfile> fnProfiles_;
    /// Heap totals already flushed (the heap outlives run() under
    /// persistState, so flushes must be delta-based).
    uint64_t heapAllocBytesFlushed_ = 0;
    uint64_t heapFreedBytesFlushed_ = 0;
    uint64_t heapAllocsFlushed_ = 0;
    uint64_t heapFreesFlushed_ = 0;
};

} // namespace sulong

#endif // MS_INTERP_MANAGED_ENGINE_H
