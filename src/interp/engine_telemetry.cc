/**
 * @file
 * The managed engine's end-of-run telemetry flush.
 *
 * This lives in its own translation unit on purpose: the flush builds
 * counter names and walks the registry — several hundred instructions
 * of cold code that, compiled into managed_engine.cc, shifts GCC's
 * unit-growth inlining budget and perturbs the codegen of the hot
 * interpreter templates in that TU. Keeping it here makes the
 * interpreter's object code byte-identical between MS_OBS=ON and =OFF
 * builds, which is exactly what the CI overhead gate compares.
 */

#include "interp/managed_engine.h"

#include "managed/heap.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace sulong
{

void
ManagedEngine::flushTelemetry(const ExecutionResult &result)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("managed.runs").inc();

    uint64_t tier1Steps = 0;
    uint64_t tier2Steps = 0;
    uint64_t tier3Steps = 0;
    for (const auto &[fn, prof] : fnProfiles_) {
        tier1Steps += prof.tier1Steps;
        tier2Steps += prof.tier2Steps;
        tier3Steps += prof.tier3Steps;
        // Per-function retired-step and tier attribution. Counter names
        // are keyed by function name, so identical functions from
        // different batch jobs aggregate — which keeps totals
        // deterministic across worker counts.
        uint64_t total =
            prof.tier1Steps + prof.tier2Steps + prof.tier3Steps;
        if (total != 0)
            reg.histogram("managed.fn.steps").record(total);
        if (prof.tier1Steps != 0)
            reg.counter("managed.fn." + fn->name() + ".steps.tier1")
                .inc(prof.tier1Steps);
        if (prof.tier2Steps != 0)
            reg.counter("managed.fn." + fn->name() + ".steps.tier2")
                .inc(prof.tier2Steps);
        if (prof.tier3Steps != 0)
            reg.counter("managed.fn." + fn->name() + ".steps.tier3")
                .inc(prof.tier3Steps);
    }
    if (tier1Steps != 0)
        reg.counter("managed.steps.tier1").inc(tier1Steps);
    if (tier2Steps != 0)
        reg.counter("managed.steps.tier2").inc(tier2Steps);
    if (tier3Steps != 0)
        reg.counter("managed.steps.tier3").inc(tier3Steps);

    if (telem_.tier2Compiles != 0)
        reg.counter("managed.tier2.compiles").inc(telem_.tier2Compiles);
    if (telem_.inlinedSites != 0)
        reg.counter("managed.tier2.inlined_sites")
            .inc(telem_.inlinedSites);
    for (uint64_t size : telem_.tier2CodeSizes)
        reg.histogram("managed.tier2.code_size").record(size);
    if (telem_.icToMono != 0)
        reg.counter("managed.ic.to_mono").inc(telem_.icToMono);
    if (telem_.icToMega != 0)
        reg.counter("managed.ic.to_mega").inc(telem_.icToMega);
    if (telem_.icHits != 0)
        reg.counter("managed.ic.hits").inc(telem_.icHits);
    if (telem_.elideSlotHits != 0)
        reg.counter("managed.elide.slot_hits").inc(telem_.elideSlotHits);
    if (telem_.elideSlotMisses != 0)
        reg.counter("managed.elide.slot_misses")
            .inc(telem_.elideSlotMisses);
    if (telem_.elideShapeHits != 0)
        reg.counter("managed.elide.shape_hits")
            .inc(telem_.elideShapeHits);
    if (telem_.elideShapeMisses != 0)
        reg.counter("managed.elide.shape_misses")
            .inc(telem_.elideShapeMisses);

    // Tier-3 threaded execution. The event counters themselves are
    // maintained unconditionally (benches read them via telemetry());
    // only this registry flush is profiling-gated, like everything else
    // here, so totals stay deterministic for the obs determinism gate.
    if (telem_.t3Compiles != 0)
        reg.counter("managed.tier3.compiles").inc(telem_.t3Compiles);
    if (telem_.t3Superblocks != 0)
        reg.counter("managed.tier3.superblocks")
            .inc(telem_.t3Superblocks);
    if (telem_.t3OsrEntries != 0)
        reg.counter("managed.tier3.osr_entries").inc(telem_.t3OsrEntries);
    if (telem_.t3DeoptMega != 0)
        reg.counter("managed.tier3.deopt.megamorphic")
            .inc(telem_.t3DeoptMega);
    if (telem_.t3DeoptShape != 0)
        reg.counter("managed.tier3.deopt.shape").inc(telem_.t3DeoptShape);
    if (telem_.t3DeoptSteps != 0)
        reg.counter("managed.tier3.deopt.step_limit")
            .inc(telem_.t3DeoptSteps);
    if (telem_.t3DeoptBug != 0)
        reg.counter("managed.tier3.deopt.bug").inc(telem_.t3DeoptBug);
    if (telem_.t3FusedChecks != 0)
        reg.counter("managed.tier3.fused_checks_retired")
            .inc(telem_.t3FusedChecks);
    for (uint64_t size : telem_.tier3CodeSizes)
        reg.histogram("managed.tier3.code_size").record(size);

    // The heap survives run() under persistState: flush deltas.
    if (heap_ != nullptr) {
        uint64_t allocBytes =
            heap_->allocBytesTotal() - heapAllocBytesFlushed_;
        uint64_t freedBytes =
            heap_->freedBytesTotal() - heapFreedBytesFlushed_;
        uint64_t allocs = heap_->allocationCount() - heapAllocsFlushed_;
        uint64_t frees = heap_->freeCount() - heapFreesFlushed_;
        heapAllocBytesFlushed_ = heap_->allocBytesTotal();
        heapFreedBytesFlushed_ = heap_->freedBytesTotal();
        heapAllocsFlushed_ = heap_->allocationCount();
        heapFreesFlushed_ = heap_->freeCount();
        if (allocBytes != 0)
            reg.counter("managed.heap.alloc_bytes").inc(allocBytes);
        if (freedBytes != 0)
            reg.counter("managed.heap.freed_bytes").inc(freedBytes);
        if (allocs != 0) {
            reg.counter("managed.heap.allocs").inc(allocs);
            reg.histogram("managed.heap.alloc_bytes_per_run")
                .record(allocBytes);
        }
        if (frees != 0)
            reg.counter("managed.heap.frees").inc(frees);
    }

    // Per-bug-class detection counters.
    if (result.bug.kind != ErrorKind::none)
        reg.counter(std::string("bugs.") + errorKindName(result.bug.kind))
            .inc();
    if (result.termination != TerminationKind::normal)
        reg.counter(std::string("terminations.") +
                    terminationKindName(result.termination))
            .inc();
    reg.histogram("managed.run.steps").record(guard_.steps());
}

} // namespace sulong
