#include "interp/threaded.h"

namespace sulong
{

const char *
topName(TOp op)
{
    switch (op) {
#define MS_T3_NAME(name)                                                \
      case TOp::name:                                                   \
        return #name;
        MS_T3_OPS(MS_T3_NAME)
#undef MS_T3_NAME
    }
    return "?";
}

bool
threadedDispatchEnabled()
{
#ifdef MS_THREADED_DISPATCH
    return true;
#else
    return false;
#endif
}

} // namespace sulong
